//! Offline stand-in for `rayon`'s parallel iterators.
//!
//! Implements the small surface this workspace uses — `into_par_iter()` /
//! `par_iter()`, `map`, `for_each`, and ordered `collect` — on top of
//! `std::thread::scope` with a shared atomic work index. Results are
//! returned in input order regardless of which worker produced them, so
//! swapping this shim for real `rayon` never changes observable output.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Returns the number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One-stop imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a [`ParallelIterator`].
pub trait IntoParallelIterator {
    /// Element type of the resulting iterator.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParVec<&'a T>;
    fn into_par_iter(self) -> ParVec<&'a T> {
        ParVec {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParVec<&'a T>;
    fn into_par_iter(self) -> ParVec<&'a T> {
        self.as_slice().into_par_iter()
    }
}

/// Parallel iterator over an owned buffer of items.
pub struct ParVec<T> {
    items: Vec<T>,
}

/// The subset of rayon's `ParallelIterator` this workspace relies on.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Drains the iterator into its items (implementation detail of the
    /// shim; rayon proper has no such method).
    fn into_items(self) -> Vec<Self::Item>;

    /// Maps every element through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParMap<Self::Item, R, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        ParMap {
            items: self.into_items(),
            f,
            _r: std::marker::PhantomData,
        }
    }

    /// Runs `f` on every element in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_ordered(self.into_items(), f);
    }

    /// Collects the results in input order.
    fn collect<C: FromOrderedParallel<Self::Item>>(self) -> C {
        C::from_ordered(self.into_items())
    }
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Lazily mapped parallel iterator (shim: the map runs at collect time).
pub struct ParMap<T, R, F> {
    items: Vec<T>,
    f: F,
    _r: std::marker::PhantomData<fn() -> R>,
}

impl<T, R, F> ParallelIterator for ParMap<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    type Item = R;

    fn into_items(self) -> Vec<R> {
        let f = self.f;
        run_ordered(self.items, f)
    }
}

/// Collection types buildable from ordered parallel output.
pub trait FromOrderedParallel<T> {
    /// Builds the collection from items already in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromOrderedParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Applies `f` to every item on a scoped worker pool, returning results in
/// input order. Work distribution is dynamic (shared atomic cursor), so
/// stragglers don't serialise the whole batch.
fn run_ordered<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync + Send) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let out = &out;
    let cursor = &cursor;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("claimed once");
                let r = f(item);
                *out[i].lock().unwrap() = Some(r);
            });
        }
    });

    out.iter()
        .map(|m| m.lock().unwrap().take().expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..997).collect();
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1u32, 2, 3, 4];
        let s: Vec<u32> = v.as_slice().into_par_iter().map(|&x| x + 1).collect();
        assert_eq!(s, vec![2, 3, 4, 5]);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (0..100u64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|x| {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let r: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(r.is_empty());
    }
}
