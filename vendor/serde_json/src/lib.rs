//! Offline stand-in for `serde_json`.
//!
//! The workspace needs to *emit* JSON (`BENCH_*.json` sweep artifacts)
//! and to *read its own artifacts back* (the CI perf-gate compares a
//! fresh `BENCH_overhead.json` against the committed baseline), so this
//! shim provides the [`Value`] tree, the [`json!`] macro, the
//! `to_string` / `to_string_pretty` writers with standard escaping, and
//! a recursive-descent [`from_str`] parser covering the full JSON
//! grammar. Object keys keep insertion order (like upstream's
//! `preserve_order` feature) so emitted artifacts are stable and
//! diffable.

#![warn(missing_docs)]

use std::fmt;

/// Ordered string-keyed map used for [`Value::Object`].
///
/// Insertion-ordered like upstream `serde_json`'s `preserve_order` map;
/// lookups are linear, which is fine at artifact-emission sizes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing any previous entry in place.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A JSON number carrying a float (integers from `From<f64>` that
    /// happen to be integral still print without a fraction).
    Number(f64),
    /// A JSON number carrying an integer exactly (i128 covers the full
    /// u64 and i64 domains, so seeds and counters never lose precision
    /// the way routing them through f64 would).
    Int(i128),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// The value as f64, when it is a number (integers convert, with the
    /// usual f64 precision above 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as u64, when it is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, when it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

macro_rules! from_float {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(v as f64) }
        }
    )*};
}
from_float!(f64, f32);

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Int(v as i128) }
        }
    )*};
}
from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; emit null like serde_json does for
        // non-finite f64 through its lossy paths.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        // Shortest round-trip representation.
        let s = format!("{n}");
        s
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Serialises `v` to compact JSON.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serialises `v` to human-readable JSON (two-space indent).
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

/// A parse failure: the byte offset and a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`].
///
/// Numbers without a fraction or exponent that fit i128 become
/// [`Value::Int`] (round-tripping the writer's integer form exactly);
/// everything else becomes [`Value::Number`].
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through; the input
                // is a &str so the sequence is valid by construction.
                _ => {
                    let start = self.pos - 1;
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let Some(hex) = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
        else {
            return Err(self.err("truncated \\u escape"));
        };
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number bytes");
        if !float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Builds a [`Value`] from JSON-ish literal syntax:
/// `json!({"k": 1, "xs": [1, 2], "flag": true, "n": null})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $item:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $( $key:literal : $val:tt ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key, $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_writer_output() {
        let v = json!({
            "suite": "overhead",
            "n": 42,
            "neg": (-7),
            "f": 1.25,
            "flag": true,
            "none": null,
            "s": "a\"b\\c\nd",
            "xs": [1, 2.5, "three", [true], {"k": "v"}]
        });
        for text in [to_string(&v), to_string_pretty(&v)] {
            let parsed = from_str(&text).expect("writer output must parse");
            assert_eq!(parsed, v, "round-trip through {text}");
        }
    }

    #[test]
    fn parse_integers_stay_exact() {
        let v = from_str("{\"seed\": 18446744073709551615}").expect("parse");
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(u64::MAX));
        assert_eq!(from_str("-3"), Ok(Value::Int(-3)));
        assert_eq!(from_str("3e2"), Ok(Value::Number(300.0)));
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            from_str(r#""\u00e9\uD83D\uDE00x""#),
            Ok(Value::String("é😀x".into()))
        );
        assert_eq!(from_str("\"caf\u{e9}\""), Ok(Value::String("café".into())));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "[] []",
            "{\"a\":}",
            "\"\\uD800\"",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn compact_output() {
        let v = json!({"a": 1, "b": [1.5, true, null], "s": "x\"y\n"});
        assert_eq!(to_string(&v), r#"{"a":1,"b":[1.5,true,null],"s":"x\"y\n"}"#);
    }

    #[test]
    fn pretty_output_is_parseable_shape() {
        let v = json!({"k": [1, 2]});
        let p = to_string_pretty(&v);
        assert!(p.contains("\"k\": ["));
        assert!(p.ends_with('}'));
    }

    #[test]
    fn insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a", 1u32);
        m.insert("b", 2u32);
        m.insert("a", 3u32);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("a").and_then(Value::as_f64), Some(3.0));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&Value::Number(3.0)), "3");
        assert_eq!(to_string(&Value::Number(3.25)), "3.25");
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
    }

    #[test]
    fn large_integers_are_exact() {
        // Routed through f64 these would round; Value::Int keeps them.
        assert_eq!(to_string(&Value::from(u64::MAX)), "18446744073709551615");
        assert_eq!(
            to_string(&Value::from(9_007_199_254_740_993u64)),
            "9007199254740993"
        );
        assert_eq!(Value::from(7u64).as_u64(), Some(7));
        assert_eq!(Value::from(3u32).as_f64(), Some(3.0));
    }
}
