//! Offline stand-in for `criterion`.
//!
//! Provides the measurement API used by the `micro` bench target —
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — backed by a
//! simple wall-clock sampler (median / mean / min over N one-shot samples)
//! instead of criterion's full statistics engine. Good enough to spot
//! order-of-magnitude regressions offline; swap in real criterion when a
//! registry is available.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Summary statistics of one completed benchmark (shim extension:
/// upstream criterion reports through its own output machinery; offline
/// targets read these to emit `BENCH_*.json` artifacts).
#[derive(Clone, Debug)]
pub struct Report {
    /// Group-qualified benchmark label (`group/function/param`).
    pub label: String,
    /// Median one-shot sample, nanoseconds.
    pub median_ns: f64,
    /// Mean one-shot sample, nanoseconds.
    pub mean_ns: f64,
    /// Fastest one-shot sample, nanoseconds.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    reports: Vec<Report>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            reports: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Measures a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(r) = run_one(&id.to_string(), self.sample_size, &mut f) {
            self.reports.push(r);
        }
        self
    }

    /// All completed measurements so far, in execution order (shim
    /// extension; see [`Report`]).
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }
}

/// A named group of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measures one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        if let Some(r) = run_one(&label, self.criterion.sample_size, &mut f) {
            self.criterion.reports.push(r);
        }
        self
    }

    /// Measures one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        if let Some(r) = run_one(
            &label,
            self.criterion.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        ) {
            self.criterion.reports.push(r);
        }
        self
    }

    /// Ends the group (upstream finalises reports here; the shim is a no-op).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A bare parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` one-shot invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass to populate caches / lazy statics.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) -> Option<Report> {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<40} (no samples)");
        return None;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "  {label:<40} median {:>12} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        b.samples.len(),
    );
    Some(Report {
        label: label.to_string(),
        median_ns: median.as_nanos() as f64,
        mean_ns: mean.as_nanos() as f64,
        min_ns: min.as_nanos() as f64,
        samples: b.samples.len(),
    })
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, optionally with a configured
/// [`Criterion`] driver.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $( $target:path ),* $(,)?) => {
        /// Benchmark group entry point (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $( $target:path ),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $( $target ),*
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($( $group:path ),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_target(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &x| b.iter(|| x + 1));
        g.finish();
        c.bench_function("free", |b| b.iter(|| 40 + 2));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        sample_target(&mut c);
        let reports = c.reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].label, "shim/add/3");
        assert_eq!(reports[1].label, "free");
        assert_eq!(reports[0].samples, 3);
        assert!(reports[0].median_ns >= reports[0].min_ns);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
