//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the poison-free `lock()`/`read()`/`write()` signatures of
//! `parking_lot` over the standard-library primitives. Poisoning is
//! neutralised by unwrapping into the inner guard: a panic while holding a
//! lock aborts the test/bench run anyway, which matches `parking_lot`'s
//! "no poisoning" semantics closely enough for this workspace.

#![warn(missing_docs)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
