//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* subset of `rand` it uses: [`RngCore`]/[`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], and uniform range sampling through
//! `Rng::random` / `Rng::random_range` / `Rng::random_bool`.
//!
//! `StdRng` here is SplitMix64 feeding xoshiro256++ — a different stream
//! than upstream `rand`'s ChaCha12, but every consumer in this workspace
//! only requires *deterministic seeded* sampling, never a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random by [`Rng::random`].
pub trait UniformValue {
    /// Samples one value from `rng`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformValue for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformValue for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformValue for bool {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformValue for u64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformValue for u32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-free via Lemire-style widening) integer draw
/// in `[0, bound)`; `bound` must be non-zero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening multiply keeps the draw unbiased for all bounds that matter
    // here (the workspace never draws bounds close to 2^64).
    let mut m = (rng.next_u64() as u128) * (bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let t = bound.wrapping_neg() % bound;
        while lo < t {
            m = (rng.next_u64() as u128) * (bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u: f64 = UniformValue::sample_uniform(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        let u: f32 = UniformValue::sample_uniform(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (full domain for ints, `[0,1)` for floats).
    fn random<T: UniformValue>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// Uniform sample within `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++ seeded via SplitMix64).
    ///
    /// Not the same stream as upstream `rand`'s `StdRng`; see the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = r.random_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&y));
            let z = r.random_range(2.0..=3.0f64);
            assert!((2.0..=3.0).contains(&z));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
