//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use — `proptest!`, `prop_assert*!`, `prop_assume!`, `prop_oneof!`,
//! range/tuple/`Just`/`any` strategies, `collection::vec`,
//! `sample::subsequence`, `prop_map` / `prop_flat_map` / `prop_recursive` —
//! with two deliberate simplifications:
//!
//! * **deterministic generation**: each test's case stream is seeded from a
//!   hash of the test name, so failures reproduce exactly on re-run;
//! * **no shrinking**: a failing case panics with the case index instead of
//!   a minimised counterexample.
//!
//! Swap in real proptest when a registry is available; the call sites need
//! no changes.

#![warn(missing_docs)]

pub mod strategy;

pub use strategy::{any, Just, Strategy};

/// Strategies for collections (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{IntoSizeRange, SizeRange, Strategy};
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_size_range(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies sampling from explicit collections (`proptest::sample`).
pub mod sample {
    use crate::strategy::{IntoSizeRange, SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing order-preserving subsequences of `values` whose
    /// length is drawn from `size` (clamped to the collection size).
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl IntoSizeRange) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into_size_range(),
        }
    }

    /// See [`subsequence`].
    #[derive(Clone, Debug)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.values.len();
            let k = self.size.sample(rng).min(n);
            // Floyd's algorithm for k distinct indices, then order-restore.
            let mut picked: Vec<usize> = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = rng.random_range(0..=j);
                if picked.contains(&t) {
                    picked.push(j);
                } else {
                    picked.push(t);
                }
            }
            picked.sort_unstable();
            picked.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

/// Test-runner configuration and error plumbing.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator driving all strategies of one test.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from a test-name hash (FNV-1a) so each test
        /// has its own reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out.
        Reject,
        /// An assertion failed with this message.
        Fail(String),
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts inside `proptest!` bodies; failure aborts the case with a message
/// instead of unwinding immediately (mirrors proptest semantics sans shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} (left: {:?}, right: {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
        let _ = r;
    }};
}

/// Filters out the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($( $strategy:expr ),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strategy:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(1000),
                    "proptest shim: too many rejected cases in {}",
                    stringify!($name)
                );
                let ( $($pat,)* ) = (
                    $( $crate::strategy::Strategy::generate(&($strategy), &mut rng), )*
                );
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => continue,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "property `{}` failed at case {} (attempt {}): {}",
                        stringify!($name), accepted, attempts, msg
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect bounds; tuples compose.
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 1.5f64..2.5), n in 1usize..=4) {
            prop_assert!(a < 10);
            prop_assert!((1.5..2.5).contains(&b));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_and_subsequence(
            xs in crate::collection::vec(any::<bool>(), 3),
            sub in crate::sample::subsequence(vec![1u32, 2, 4, 8], 1..4),
        ) {
            prop_assert_eq!(xs.len(), 3);
            prop_assert!(!sub.is_empty() && sub.len() <= 3);
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]), "order-preserving");
        }

        #[test]
        fn assume_filters(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }

        #[test]
        fn oneof_map_flat_map(v in prop_oneof![
            Just(1u32).prop_map(|x| x + 1),
            (3u32..5).prop_flat_map(|n| n..n + 1),
        ]) {
            prop_assert!(v == 2 || v == 3 || v == 4, "got {}", v);
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf,
        Node(Vec<Tree>),
    }

    fn size(t: &Tree) -> usize {
        match t {
            Tree::Leaf => 1,
            Tree::Node(c) => 1 + c.iter().map(size).sum::<usize>(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn recursive_strategies(t in Just(Tree::Leaf).prop_recursive(3, 24, 3, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        })) {
            prop_assert!(size(&t) >= 1);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0u64..1000;
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
