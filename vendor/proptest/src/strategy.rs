//! Strategy trait, primitive strategies, and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Uses each generated value to pick a follow-up strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf case and `recurse` builds
    /// one more level on top of the strategy so far. The result mixes
    /// leaves and deeper shapes at every level, bottoming out after
    /// `depth` applications. (`_desired_size` / `_expected_branch_size`
    /// are accepted for API compatibility and unused by the shim.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy always yielding a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" (`any::<bool>()` et al.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.random::<u32>() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random()
    }
}

/// See [`any`].
#[derive(Clone, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategies {
    ($( ($($name:ident),+) ),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

/// Lengths acceptable to `collection::vec` / `sample::subsequence`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            rng.random_range(self.lo..self.hi_exclusive)
        }
    }
}

/// Conversion into a [`SizeRange`].
pub trait IntoSizeRange {
    /// Performs the conversion.
    fn into_size_range(self) -> SizeRange;
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> SizeRange {
        SizeRange {
            lo: self,
            hi_exclusive: self + 1,
        }
    }
}

impl IntoSizeRange for Range<usize> {
    fn into_size_range(self) -> SizeRange {
        assert!(self.start < self.end, "empty size range");
        SizeRange {
            lo: self.start,
            hi_exclusive: self.end,
        }
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn into_size_range(self) -> SizeRange {
        SizeRange {
            lo: *self.start(),
            hi_exclusive: self.end() + 1,
        }
    }
}
