//! Sharded control-plane equivalence and determinism.
//!
//! 1. **One shard is the classic driver** — a `shards == 1` run routed
//!    through the sharded staging/commit path (`force_sharded`) must be
//!    *dispatch-trace identical* (FNV digests, the PR 4 harness) to the
//!    classic single round driver across the hetero cluster grid. The
//!    shard counters are the only allowed observable delta.
//! 2. **N shards are deterministic** — a fixed seed and shard count
//!    reproduce the same trace and canonical result run over run: the
//!    partitioning is pinned (FNV over the queue key) and staged rounds
//!    commit in shard-index order, so optimistic-conflict resolution is
//!    replayable.
//! 3. **N shards are work-conserving under churn** — every arrival
//!    either completes or is shed; a conflicted decision may retry but
//!    can never strand a queue (the retry cap parks it on the classic
//!    recheck list, whose forced-minimum path guarantees progress).
//! 4. The per-shard policy-stack clones (swapped in through
//!    `Scheduler::round_policy`) replay a classic single-stack run at
//!    one shard, including merged `PolicyStats`.

mod support;

use esg::prelude::*;
use support::Traced;

const SHAPES: [TrafficShape; 3] = [
    TrafficShape::Steady,
    TrafficShape::Bursty,
    TrafficShape::AzureReplay,
];

fn specs() -> [ClusterSpec; 3] {
    [
        ClusterSpec::paper(),
        ClusterSpec::mixed_mig(),
        ClusterSpec::skewed(),
    ]
}

/// Canonical result form with host wall-clock samples and the shard
/// counters cleared: shard rounds/commits are reported by the sharded
/// driver only, and are checked separately where a property needs them.
fn canonical_unsharded(mut r: ExperimentResult) -> String {
    r.wall_overhead_ms.clear();
    r.scheduler_stats.shards = ShardStats::default();
    format!("{r:?}")
}

fn run_one(
    spec: &ClusterSpec,
    churn: ChurnPlan,
    shape: TrafficShape,
    seed: u64,
    shards: usize,
    force_sharded: bool,
) -> (String, u64, ExperimentResult) {
    run_one_kind(
        spec,
        churn,
        shape,
        seed,
        shards,
        force_sharded,
        EventQueueKind::Heap,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_one_kind(
    spec: &ClusterSpec,
    churn: ChurnPlan,
    shape: TrafficShape,
    seed: u64,
    shards: usize,
    force_sharded: bool,
    event_queue: EventQueueKind,
) -> (String, u64, ExperimentResult) {
    let env = SimEnv::standard(SloClass::Moderate);
    let workload = shaped_workload(
        WorkloadClass::Light,
        shape,
        &esg::model::standard_app_ids(),
        seed,
        2_000.0,
    );
    let cfg = SimConfig {
        cluster: Some(spec.clone()),
        churn,
        seed,
        shards,
        force_sharded,
        event_queue,
        ..SimConfig::default()
    };
    let mut traced = Traced::new(Box::new(EsgScheduler::new()));
    let r = run_simulation(&env, cfg, &mut traced, &workload, "shard-equivalence");
    (canonical_unsharded(r.clone()), traced.trace_digest(), r)
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// A one-shard sharded run replays the classic driver bit for bit:
    /// the partition is total, and a staged round commits before
    /// anything else can move the state, so `moved_since` never fires
    /// and every decision lands exactly where the classic driver put it.
    #[test]
    fn one_shard_replays_the_classic_driver(
        seed in 0u64..1_000,
        spec_idx in 0usize..3,
        shape_idx in 0usize..3,
    ) {
        let spec = specs()[spec_idx].clone();
        let shape = SHAPES[shape_idx];
        let (res_c, trace_c, r_c) = run_one(&spec, ChurnPlan::none(), shape, seed, 1, false);
        let (res_s, trace_s, r_s) = run_one(&spec, ChurnPlan::none(), shape, seed, 1, true);
        proptest::prop_assert_eq!(trace_c, trace_s, "dispatch traces diverged");
        proptest::prop_assert_eq!(res_c, res_s);
        // The classic driver reports no shard activity; the sharded one
        // must report rounds but can never conflict with itself.
        proptest::prop_assert_eq!(r_c.scheduler_stats.shards, ShardStats::default());
        proptest::prop_assert!(r_s.scheduler_stats.shards.rounds > 0);
        proptest::prop_assert_eq!(r_s.scheduler_stats.shards.conflicts, 0);
        proptest::prop_assert_eq!(r_s.scheduler_stats.shards.retries, 0);
    }

    /// Fixed seed + shard count ⇒ identical trace and canonical result,
    /// including the shard counters (`commit_wall_us` is host time and
    /// deliberately excluded from the Debug rendering being compared).
    #[test]
    fn sharded_runs_are_seed_deterministic(
        seed in 0u64..1_000,
        spec_idx in 0usize..3,
        shape_idx in 0usize..3,
        shards in 2usize..=6,
    ) {
        let spec = specs()[spec_idx].clone();
        let shape = SHAPES[shape_idx];
        let (res_a, trace_a, r_a) = run_one(&spec, ChurnPlan::none(), shape, seed, shards, false);
        let (res_b, trace_b, r_b) = run_one(&spec, ChurnPlan::none(), shape, seed, shards, false);
        proptest::prop_assert_eq!(trace_a, trace_b, "sharded dispatch trace not replayable");
        proptest::prop_assert_eq!(res_a, res_b);
        proptest::prop_assert_eq!(
            format!("{:?}", r_a.scheduler_stats),
            format!("{:?}", r_b.scheduler_stats)
        );
    }

    /// The timer-wheel event queue feeds the sharded driver the exact
    /// same event order as the heap: traces and canonical results match
    /// for any shard count, with or without mid-run churn.
    #[test]
    fn sharded_runs_are_backend_agnostic(
        seed in 0u64..1_000,
        spec_idx in 0usize..3,
        shape_idx in 0usize..3,
        shards in 1usize..=6,
        churny in proptest::prelude::any::<bool>(),
    ) {
        let spec = specs()[spec_idx].clone();
        let shape = SHAPES[shape_idx];
        let churn = if churny {
            ChurnPlan::rolling_replace(700.0, 400.0, NodeId(0), NodeClass::t4())
        } else {
            ChurnPlan::none()
        };
        let (res_h, trace_h, _) = run_one_kind(
            &spec, churn.clone(), shape, seed, shards, true, EventQueueKind::Heap);
        let (res_w, trace_w, _) = run_one_kind(
            &spec, churn, shape, seed, shards, true, EventQueueKind::Wheel);
        proptest::prop_assert_eq!(trace_h, trace_w, "backend changed the dispatch trace");
        proptest::prop_assert_eq!(res_h, res_w);
    }
}

#[test]
fn sharded_runs_are_work_conserving_under_churn() {
    let spec = ClusterSpec::skewed();
    let churn = ChurnPlan::rolling_replace(700.0, 400.0, NodeId(0), NodeClass::t4());
    for kind in [EventQueueKind::Heap, EventQueueKind::Wheel] {
        for shards in [2usize, 4, 8] {
            let (_, _, r) = run_one_kind(
                &spec,
                churn.clone(),
                TrafficShape::Bursty,
                7,
                shards,
                false,
                kind,
            );
            assert_eq!(
                r.arrivals,
                r.total_completed() + r.shed_invocations,
                "work stranded at shards={shards} ({kind:?})"
            );
            let s = r.scheduler_stats.shards;
            assert!(s.rounds > 0, "sharded driver must have run");
            assert!(
                s.commits >= r.dispatches,
                "every dispatch commits through a shard round"
            );
        }
    }
}

/// The per-shard policy-stack clones behave like the single stack: a
/// one-shard sharded run of ESG + `SloAdmission` (no `Traced` wrapper,
/// so `round_policy` is visible and the swap path actually runs)
/// matches the classic run — including the merged policy counters,
/// which come from the shard clone rather than the scheduler's own
/// swapped-out stack.
#[test]
fn shard_stack_clones_replay_a_classic_policy_run() {
    let env = SimEnv::standard(SloClass::Strict);
    let workload = shaped_workload(
        WorkloadClass::Heavy,
        TrafficShape::Bursty,
        &esg::model::standard_app_ids(),
        11,
        2_000.0,
    );
    let run = |force_sharded: bool| {
        let mut sched =
            EsgScheduler::new().with_policy(PolicyStack::new().with(SloAdmission::default()));
        let cfg = SimConfig {
            seed: 11,
            force_sharded,
            ..SimConfig::default()
        };
        let r = run_simulation(&env, cfg, &mut sched, &workload, "stack-swap");
        (canonical_unsharded(r.clone()), r)
    };
    let (classic, _) = run(false);
    let (sharded, r_s) = run(true);
    assert_eq!(classic, sharded);
    assert!(r_s.scheduler_stats.shards.rounds > 0);
}

#[test]
fn builder_validates_and_plumbs_the_shards_knob() {
    let err = SimBuilder::new(SloClass::Moderate)
        .shards(0)
        .build()
        .expect_err("zero shards is rejected up front");
    assert!(matches!(err, SimError::InvalidKnob { knob: "shards", .. }));

    let sim = SimBuilder::new(SloClass::Moderate)
        .shards(3)
        .build()
        .expect("three shards is a valid configuration");
    let workload =
        WorkloadGen::new(WorkloadClass::Light, esg::model::standard_app_ids(), 5).generate(60);
    let mut sched = EsgScheduler::new();
    let r = sim.run(&mut sched, &workload, "builder-shards");
    assert!(
        r.scheduler_stats.shards.rounds > 0,
        "the builder knob must engage the sharded driver"
    );
    // Shard counters surface in the canonical Debug dump (and therefore
    // in golden digests) exactly when the sharded driver ran.
    let dump = format!("{r:?}");
    assert!(dump.contains("shard_rounds"), "{dump}");
    assert!(!format!("{:?}", ExperimentResult::default()).contains("shard_rounds"));
}
