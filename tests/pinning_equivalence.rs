//! Static-pinning tier equivalence: a [`HybridScheduler`] with an
//! **empty** pin plan must be dispatch-trace **bit-identical** to the
//! pure [`EsgScheduler`] — every pinned-tier code path (the plan probe
//! in `schedule`, the shape gate in `place`, the churn hook, the
//! stats merge) has to vanish without residue when nothing is pinned.
//!
//! The pin is transitive against the pre-redesign golden digest: the
//! grid test below reproduces the exact ESG cells of
//! `tests/golden/control_plane.digest` (same window, class, seed and
//! scenario as `control_plane_equivalence`) and then asserts the hybrid
//! run's trace and canonical result match ESG's bit for bit — so an
//! empty-plan hybrid is pinned to the same golden baseline without the
//! digest file ever learning the word "Hybrid". Only the scheduler
//! *name* may differ, so the result comparison canonicalises it.
//!
//! The churn half pins the tier's safety property: draining every node
//! of a pinned server mid-run must never strand the pinned functions —
//! each affected pin re-pins within its server or demotes to the
//! dynamic tier, and the run still completes every arrival.

mod support;

use esg::prelude::*;
use support::{fnv64, Traced};

/// Same test-sized window as `control_plane_equivalence` — the golden
/// ESG lines below only match at this exact grid geometry.
const RUN_MS: f64 = 2_500.0;

const SHAPES: [TrafficShape; 3] = [
    TrafficShape::Steady,
    TrafficShape::Bursty,
    TrafficShape::Diurnal,
];

/// The golden grid's cluster axis (mirrors `control_plane_equivalence`).
fn cluster_cases() -> Vec<(&'static str, ClusterSpec, ChurnPlan)> {
    vec![
        ("paper", ClusterSpec::paper(), ChurnPlan::none()),
        ("mixed-mig", ClusterSpec::mixed_mig(), ChurnPlan::none()),
        (
            "skewed+churn",
            ClusterSpec::skewed(),
            ChurnPlan::rolling_replace(RUN_MS / 3.0, 2_000.0, NodeId(0), NodeClass::t4()),
        ),
    ]
}

/// Canonical result form with host-dependent wall-clock samples
/// dropped — the same shape the golden digest hashes.
fn canonical(mut r: ExperimentResult) -> String {
    r.wall_overhead_ms.clear();
    format!("{r:?}")
}

/// [`canonical`] with the scheduler name scrubbed: "Hybrid" vs "ESG" is
/// the one field the empty-plan identity is *allowed* to differ on.
fn nameless(mut r: ExperimentResult) -> String {
    r.scheduler = String::from("<scheduler>");
    canonical(r)
}

/// One golden-grid cell: trace string plus the result, for `sched`.
fn run_cell(
    sched: &mut Traced,
    spec: &ClusterSpec,
    churn: &ChurnPlan,
    shape: TrafficShape,
) -> (String, ExperimentResult) {
    let env = SimEnv::standard(SloClass::Moderate);
    let workload = shaped_workload(
        WorkloadClass::Normal,
        shape,
        &esg::model::standard_app_ids(),
        42,
        RUN_MS,
    );
    let cfg = SimConfig {
        cluster: Some(spec.clone()),
        churn: churn.clone(),
        warmup_exclude_ms: RUN_MS * 0.25,
        seed: 42,
        ..SimConfig::default()
    };
    let r = run_simulation(&env, cfg, sched, &workload, "control-plane");
    (sched.trace(), r)
}

/// The empty-plan hybrid is bit-identical to pure ESG on every golden
/// cell, and the ESG side still matches the blessed digest file — so
/// the identity is anchored to the pre-redesign baseline, not merely to
/// whatever ESG happens to do today.
#[test]
fn empty_plan_hybrid_matches_esg_on_the_golden_grid() {
    let golden = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/golden/control_plane.digest"),
    )
    .expect("golden control-plane digest present");

    for (cluster_name, spec, churn) in &cluster_cases() {
        for &shape in &SHAPES {
            let mut esg = Traced::new(Box::new(EsgScheduler::new()));
            let (esg_trace, esg_result) = run_cell(&mut esg, spec, churn, shape);

            // The exact line `control_plane_equivalence` records for
            // this cell; containment proves this grid reproduces the
            // golden geometry (and that adding the hybrid tier did not
            // move the baseline).
            let golden_line = format!(
                "ESG|{cluster_name}|{shape}|trace={:016x}|result={:016x}|\
completed={}|dispatches={}|rechecks={}",
                fnv64(&esg_trace),
                fnv64(&canonical(esg_result.clone())),
                esg_result.total_completed(),
                esg_result.dispatches,
                esg_result.rechecks,
            );
            assert!(
                golden.lines().any(|l| l == golden_line),
                "ESG cell drifted from the golden digest:\n  {golden_line}"
            );

            let mut hybrid = Traced::new(Box::new(HybridScheduler::new(PinPlan::empty())));
            let (hyb_trace, hyb_result) = run_cell(&mut hybrid, spec, churn, shape);
            assert_eq!(
                hyb_trace, esg_trace,
                "dispatch trace diverged on {cluster_name}/{shape}"
            );
            assert_eq!(
                nameless(hyb_result),
                nameless(esg_result),
                "result diverged on {cluster_name}/{shape}"
            );
        }
    }
}

/// The planner itself is inert on uniform traffic: with the default
/// `min_share_factor > 1` no application clears the popularity bar, the
/// plan comes out empty by construction, and the *fully configured*
/// hybrid (planner, server map and all) still reproduces ESG bit for
/// bit end-to-end.
#[test]
fn planned_hybrid_on_uniform_traffic_is_inert() {
    let env = SimEnv::standard(SloClass::Moderate);
    let spec = ClusterSpec::paper().with_topology(4, 10.0);
    let workload = shaped_workload(
        WorkloadClass::Light,
        TrafficShape::Steady,
        &esg::model::standard_app_ids(),
        7,
        2_000.0,
    );
    let hybrid_inner = HybridScheduler::planned(PinningConfig::default(), &env, &spec, &workload);
    assert!(
        hybrid_inner.plan().is_empty(),
        "uniform traffic must not clear the popularity bar"
    );

    let cfg = SimConfig {
        cluster: Some(spec),
        pinning: Some(PinningConfig::default()),
        seed: 7,
        ..SimConfig::default()
    };
    let mut hybrid = Traced::new(Box::new(hybrid_inner));
    let rh = run_simulation(&env, cfg.clone(), &mut hybrid, &workload, "inert");
    let mut esg = Traced::new(Box::new(EsgScheduler::new()));
    let re = run_simulation(&env, cfg, &mut esg, &workload, "inert");

    assert_eq!(hybrid.trace(), esg.trace());
    assert_eq!(nameless(rh), nameless(re));
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// Property form across cluster specs × traffic shapes × churn
    /// plans × popularity skews × seeds: the empty pin plan leaves the
    /// hybrid's dispatch trace and canonical result bit-identical to
    /// pure ESG — skewed workloads included, since the plan (not the
    /// traffic) is what arms the static tier.
    #[test]
    fn an_empty_pin_plan_is_inert(
        seed in 0u64..1_000,
        spec_idx in 0usize..3,
        shape_idx in 0usize..3,
        churn_variant in 0usize..3,
        skew in 0usize..3,
    ) {
        let specs = [
            ClusterSpec::paper(),
            ClusterSpec::mixed_mig().with_topology(2, 25.0),
            ClusterSpec::skewed(),
        ];
        let spec = specs[spec_idx].clone();
        let shape = SHAPES[shape_idx];
        let churn = match churn_variant {
            0 => ChurnPlan::none(),
            1 => ChurnPlan::rolling_replace(600.0, 400.0, NodeId(1), NodeClass::v100()),
            _ => ChurnPlan::none()
                .drain(400.0, NodeId(0))
                .join(700.0, NodeClass::t4())
                .drain(1_100.0, NodeId(2)),
        };
        let popularity = match skew {
            0 => Popularity::Uniform,
            1 => Popularity::Zipf { s: 1.0 },
            _ => Popularity::Zipf { s: 2.0 },
        };
        let workload = shaped_workload_with(
            WorkloadClass::Light,
            shape,
            &esg::model::standard_app_ids(),
            seed,
            popularity,
            2_000.0,
        );
        let env = SimEnv::standard(SloClass::Moderate);
        let run = |sched: Box<dyn Scheduler>| {
            let mut sched = Traced::new(sched);
            let cfg = SimConfig {
                cluster: Some(spec.clone()),
                churn: churn.clone(),
                seed,
                ..SimConfig::default()
            };
            let r = run_simulation(&env, cfg, &mut sched, &workload, "inert");
            (sched.trace(), nameless(r))
        };
        let (esg_trace, esg_result) = run(Box::new(EsgScheduler::new()));
        let (hyb_trace, hyb_result) = run(Box::new(HybridScheduler::new(PinPlan::empty())));
        proptest::prop_assert_eq!(esg_trace, hyb_trace);
        proptest::prop_assert_eq!(esg_result, hyb_result);
    }
}

/// Draining every node of a pinned server mid-run never strands the
/// pinned functions: the affected pins re-pin or demote, the tier's
/// counters record the churn, no surviving pin points at a drained
/// node, and the simulation still completes every arrival.
#[test]
fn draining_a_pinned_server_never_strands_its_functions() {
    const WINDOW_MS: f64 = 2_000.0;
    let env = SimEnv::standard(SloClass::Moderate);
    let spec = ClusterSpec::paper().with_topology(4, 10.0);
    let workload = shaped_workload_with(
        WorkloadClass::Light,
        TrafficShape::Steady,
        &esg::model::standard_app_ids(),
        11,
        Popularity::Zipf { s: 2.0 },
        WINDOW_MS,
    );
    let pin_cfg = PinningConfig {
        budget_vgpus: 32,
        min_share_factor: 1.25,
        max_pinned_apps: 2,
    };
    let mut hybrid = HybridScheduler::planned(pin_cfg, &env, &spec, &workload);
    assert!(
        !hybrid.plan().is_empty(),
        "the Zipf head must be pinnable on the paper cluster"
    );

    // Drain the whole server hosting the first pin a third into the run.
    let map = ServerMap::from_spec(&spec).expect("topology configured");
    let server = hybrid.plan().pins()[0]
        .server
        .expect("pins carry their server on a topology cluster");
    let drained: Vec<NodeId> = map.nodes_of(server).collect();
    let mut churn = ChurnPlan::none();
    for (i, &node) in drained.iter().enumerate() {
        churn = churn.drain(WINDOW_MS / 3.0 + 10.0 * i as f64, node);
    }

    let cfg = SimConfig {
        cluster: Some(spec),
        churn,
        pinning: Some(pin_cfg),
        seed: 11,
        ..SimConfig::default()
    };
    let r = run_simulation(&env, cfg, &mut hybrid, &workload, "pinned-drain");

    assert!(r.arrivals > 0);
    assert_eq!(
        r.total_completed(),
        r.arrivals,
        "a drained pinned server stranded work"
    );
    assert_eq!(r.shed_invocations, 0);

    let stats = hybrid.pinned_stats();
    assert!(stats.hits > 0, "the pinned tier never fired: {stats:?}");
    assert!(
        stats.repins + stats.misses > 0,
        "the drain never touched the pinned tier: {stats:?}"
    );
    for pin in hybrid.plan().pins() {
        assert!(
            !drained.contains(&pin.node),
            "surviving pin still points at drained {:?}",
            pin.node
        );
    }
}
