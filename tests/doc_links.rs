//! Link check for the hand-written documentation set: every relative
//! link in the top-level guides must point at a file that exists, and
//! every `#anchor` must match a heading in its target document — broken
//! cross-references fail the build instead of rotting.
//!
//! External (`http…`) links are out of scope: CI must not depend on
//! network reachability.

use std::path::{Path, PathBuf};

/// The hand-maintained documents under check (generated reports like
/// `EXPERIMENTS.md` regenerate from artifacts and carry no links).
const DOCS: [&str; 4] = [
    "README.md",
    "ARCHITECTURE.md",
    "OBSERVABILITY.md",
    "ROADMAP.md",
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// Extracts every inline Markdown link target: the `(…)` part of
/// `[text](…)`, fences and images included (an image's target is a file
/// path too).
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(open) = text[i..].find("](") {
        let start = i + open + 2;
        let Some(len) = text[start..].find(')') else {
            break;
        };
        out.push(text[start..start + len].to_string());
        i = start + len;
    }
    out
}

/// GitHub-style anchor slug of a heading line (`## Foo, bar!` →
/// `foo-bar`): lowercase, spaces to dashes, everything but
/// alphanumerics and dashes dropped.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .trim_start_matches('#')
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// All heading anchors of a document.
fn anchors(text: &str) -> Vec<String> {
    let mut in_fence = false;
    text.lines()
        .filter(|l| {
            if l.trim_start().starts_with("```") {
                in_fence = !in_fence;
            }
            !in_fence && l.starts_with('#')
        })
        .map(slug)
        .collect()
}

#[test]
fn relative_links_and_anchors_resolve() {
    let root = workspace_root();
    let mut failures = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{doc} must exist for the docs sweep: {e}"));
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (file_part, anchor) = match target.split_once('#') {
                Some((f, a)) => (f, Some(a.to_string())),
                None => (target.as_str(), None),
            };
            let (target_path, target_doc) = if file_part.is_empty() {
                (path.clone(), doc.to_string())
            } else {
                (root.join(file_part), file_part.to_string())
            };
            if !target_path.exists() {
                failures.push(format!("{doc}: link target {target:?} does not exist"));
                continue;
            }
            if let Some(anchor) = anchor {
                let Ok(target_text) = std::fs::read_to_string(&target_path) else {
                    // A directory or binary target with an anchor makes
                    // no sense; flag it.
                    failures.push(format!("{doc}: anchored link {target:?} is not a document"));
                    continue;
                };
                if !anchors(&target_text).contains(&anchor) {
                    failures.push(format!("{doc}: anchor #{anchor} not found in {target_doc}"));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "broken documentation links:\n  {}",
        failures.join("\n  ")
    );
}

#[test]
fn slugs_match_github_conventions() {
    assert_eq!(slug("## Foo, bar!"), "foo-bar");
    assert_eq!(
        slug("# `SchedulerStats` field by field"),
        "schedulerstats-field-by-field"
    );
    assert_eq!(slug("### A-B c"), "a-b-c");
}
