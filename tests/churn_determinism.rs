//! Parallel sweeps over churning heterogeneous clusters must be
//! bit-identical to serial sweeps.
//!
//! `tests/sweep_determinism.rs` pins the engine's core promise on the
//! paper's static homogeneous cluster; this test pins it on the new axes:
//! cluster cases with node drains/joins mid-run, heterogeneous specs, and
//! non-steady traffic shapes. Churn goes through the event queue, so the
//! deterministic `(time, sequence)` ordering must make membership changes
//! reproducible regardless of rayon's thread schedule.

use esg_bench::{
    standard_config, ClusterCase, ExperimentSuite, ScenarioMatrix, SchedKind, SweepResult,
};
use esg_model::{ChurnPlan, ClusterSpec, NodeClass, NodeId, Scenario, TrafficShape};
use esg_sim::{EventQueueKind, SimConfig};

fn churny_matrix() -> ScenarioMatrix {
    ScenarioMatrix::new()
        .schedulers([SchedKind::Esg, SchedKind::Infless])
        .scenarios([Scenario::MODERATE_NORMAL])
        .clusters([
            ClusterCase::new(ClusterSpec::mixed_mig()).with_churn(
                ChurnPlan::none()
                    .drain(800.0, NodeId(0))
                    .drain(1_500.0, NodeId(9))
                    .join(1_200.0, NodeClass::v100())
                    .join(2_000.0, NodeClass::t4()),
            ),
            ClusterCase::new(ClusterSpec::skewed()).with_churn(ChurnPlan::rolling_replace(
                1_000.0,
                500.0,
                NodeId(1),
                NodeClass::a100(),
            )),
        ])
        .traffic([TrafficShape::Steady, TrafficShape::Bursty])
        .seeds([42, 43])
}

fn suite() -> ExperimentSuite {
    // Short windows keep 16 churning simulations test-sized; churn events
    // at 0.8–2 s land inside the 4 s arrival window.
    ExperimentSuite::new("churn_determinism", churny_matrix()).with_run_seconds(4.0)
}

#[test]
fn parallel_churn_sweep_is_bit_identical_to_serial() {
    let matrix = churny_matrix();
    assert_eq!(
        matrix.len(),
        16,
        "2 scheds × 2 clusters × 2 shapes × 2 seeds"
    );

    let parallel = suite().run();
    let serial = suite().serial().run();

    for (p, s) in parallel.results.iter().zip(&serial.results) {
        assert_eq!(p.scheduler, s.scheduler);
        assert_eq!(p.cluster, s.cluster);
        assert_eq!(p.traffic, s.traffic);
        assert_eq!(p.seed, s.seed);
        assert_eq!(
            format!("{:?}", p.canonical_result()),
            format!("{:?}", s.canonical_result()),
            "cell ({}, {}, {}, seed {}) diverged between parallel and serial",
            p.scheduler,
            p.cluster,
            p.traffic,
            p.seed
        );
    }
    assert_eq!(parallel.canonical_digest(), serial.canonical_digest());
    assert_eq!(
        serde_json::to_string(&parallel.to_json()),
        serde_json::to_string(&serial.to_json())
    );
    let rows_p: Vec<String> = parallel.results.iter().map(SweepResult::csv_row).collect();
    let rows_s: Vec<String> = serial.results.iter().map(SweepResult::csv_row).collect();
    assert_eq!(rows_p, rows_s);
}

#[test]
fn churn_actually_changes_membership_and_stays_bounded() {
    // Guards against the churn axis silently no-opping (which would make
    // the determinism assertions vacuous) and re-checks the capacity
    // invariant on every churned cell.
    let sweep = suite().run();
    for cell in &sweep.results {
        let nodes = &cell.result.nodes;
        match cell.cluster.as_str() {
            "mixed-mig+churn" => {
                assert_eq!(nodes.len(), 18, "16 + 2 joins");
                assert_eq!(nodes.iter().filter(|n| !n.online).count(), 2);
                assert_eq!(nodes[17].class, "t4");
            }
            "skewed+churn" => {
                assert_eq!(nodes.len(), 17, "16 + 1 join");
                assert_eq!(nodes.iter().filter(|n| !n.online).count(), 1);
                assert_eq!(nodes[16].class, "a100");
            }
            other => panic!("unexpected cluster label {other}"),
        }
        for n in nodes {
            assert!(
                n.total.contains(n.peak_used),
                "{}: node class {} exceeded capacity",
                cell.cluster,
                n.class
            );
        }
    }
}

#[test]
fn repeated_parallel_churn_sweeps_are_reproducible() {
    let a = suite().run();
    let b = suite().run();
    assert_eq!(a.canonical_digest(), b.canonical_digest());
}

#[test]
fn wheel_backend_replays_the_heap_churn_sweep_bit_for_bit() {
    // Churn goes through the event queue, so the timer wheel must feed
    // the platform the exact same drain/join interleaving as the heap
    // across the whole churning sweep — same canonical digest, cell for
    // cell.
    let heap = suite().run();
    let wheel = suite()
        .with_sim_config(SimConfig {
            event_queue: EventQueueKind::Wheel,
            ..standard_config()
        })
        .run();
    for (h, w) in heap.results.iter().zip(&wheel.results) {
        assert_eq!(
            format!("{:?}", h.canonical_result()),
            format!("{:?}", w.canonical_result()),
            "cell ({}, {}, {}, seed {}) diverged between heap and wheel",
            h.scheduler,
            h.cluster,
            h.traffic,
            h.seed
        );
    }
    assert_eq!(heap.canonical_digest(), wheel.canonical_digest());
}
