//! Cross-crate property tests: invariants that only hold when the layers
//! compose correctly.

use esg::core::{astar_search, brute_force, StageTable};
use esg::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ESG_1Q on arbitrary stage sequences from the real catalog matches
    /// brute force and respects the grid.
    #[test]
    fn search_matches_oracle_on_catalog_pipelines(
        stages in proptest::collection::vec(0u32..6, 1..4),
        slack in 0.9f64..3.0,
        cap in 1u32..9,
    ) {
        let grid = ConfigGrid::new(vec![1, 2, 4], vec![1, 2, 4], vec![1, 2]);
        let env = SimEnv::with_grid(SloClass::Moderate, grid);
        let fns: Vec<FnId> = stages.iter().map(|&i| FnId(i)).collect();
        let table = StageTable::build(&fns, &env.profiles, cap);
        let gslo = table.min_total_time() * slack;
        let fast = astar_search(&table, gslo, 3);
        let oracle = brute_force(&table, gslo, 3);
        prop_assert_eq!(fast.feasible, oracle.feasible);
        prop_assert!((fast.paths[0].cost_cents - oracle.paths[0].cost_cents).abs() < 1e-9);
        prop_assert!(fast.expansions <= oracle.expansions);
    }

    /// Simulated runs conserve work for random small workloads.
    #[test]
    fn simulation_conserves_invocations(n in 5usize..40, seed in 0u64..500) {
        let env = SimEnv::with_grid(
            SloClass::Relaxed,
            ConfigGrid::new(vec![1, 2], vec![1, 2], vec![1]),
        );
        let w = WorkloadGen::new(WorkloadClass::Light, esg::model::standard_app_ids(), seed)
            .generate(n);
        let mut s = MinScheduler;
        let r = run_simulation(&env, SimConfig::default(), &mut s, &w, "prop");
        prop_assert_eq!(r.arrivals as usize, n);
        prop_assert_eq!(r.total_completed() as usize, n);
        prop_assert_eq!(r.warm_starts + r.cold_starts, r.dispatches);
        // Latency is bounded below by each app's base execution time.
        for (i, a) in r.apps.iter().enumerate() {
            let base = env.base_latency_ms(AppId(i as u32));
            for &l in &a.latencies_ms {
                prop_assert!(l >= base * 0.7, "latency {l} below plausible floor {base}");
            }
        }
    }

    /// Heterogeneous placement never exceeds any node's own capacity:
    /// whatever mix of classes a cluster carries, each node's peak
    /// simultaneous attachment stays inside that node's resources, and
    /// every invocation still completes.
    #[test]
    fn heterogeneous_placement_respects_per_node_capacity(
        picks in proptest::collection::vec(0usize..3, 2..7),
        n in 8usize..25,
        seed in 0u64..200,
    ) {
        use esg::model::{ClusterSpec, NodeClass};
        let classes = [NodeClass::a100(), NodeClass::v100(), NodeClass::t4()];
        let spec = picks
            .iter()
            .fold(ClusterSpec::new("prop-hetero"), |s, &i| {
                s.with(classes[i].clone(), 1)
            });
        let env = SimEnv::with_grid(
            SloClass::Relaxed,
            ConfigGrid::new(vec![1, 2], vec![1, 2], vec![1, 2]),
        );
        let w = WorkloadGen::new(WorkloadClass::Light, esg::model::standard_app_ids(), seed)
            .generate(n);
        let mut s = esg::core::EsgScheduler::new();
        let cfg = SimConfig {
            cluster: Some(spec.clone()),
            ..SimConfig::default()
        };
        let r = run_simulation(&env, cfg, &mut s, &w, "prop-hetero");
        prop_assert_eq!(r.total_completed() as usize, n);
        prop_assert_eq!(r.nodes.len(), spec.len());
        for (node, class) in r.nodes.iter().zip(&spec.nodes) {
            prop_assert_eq!(&node.class, &class.name);
            prop_assert_eq!(node.total, class.resources());
            prop_assert!(
                node.total.contains(node.peak_used),
                "class {} peak {} exceeds total {}",
                node.class,
                node.peak_used,
                node.total
            );
        }
    }

    /// The SLO plan of every catalog app always covers all stages exactly
    /// once with positive quotas, regardless of group size.
    #[test]
    fn slo_plans_cover_catalog_apps(g in 1usize..6) {
        let env = SimEnv::standard(SloClass::Moderate);
        for app in &env.apps {
            let dag = esg::dag::Dag::from_app(app).expect("valid");
            let times = env.profiles.stage_times(app);
            let anl = esg::dag::average_normalized_length(&times);
            let plan = esg::dag::SloPlan::build(&dag, &anl, g).expect("reducible");
            let mut seen = vec![0usize; app.num_stages()];
            for grp in plan.groups() {
                prop_assert!(grp.members.len() <= g);
                prop_assert!(grp.fraction > 0.0);
                for &m in &grp.members {
                    seen[m] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }
    }
}
