//! Properties of the composable round-policy pipeline.
//!
//! 1. **Neutral stacks are invisible** — a `PolicyStack` whose admission
//!    stage admits everything and whose rank stage replays classic scan
//!    order must be *dispatch-trace-identical* (FNV digests, the PR 4
//!    harness) to the provided default driver. This pins the full
//!    pipeline path (admit → rank → dispatch through stage merging)
//!    against the classic fast path, for ESG and a baseline.
//! 2. **`SloAdmission` never sheds a feasible queue** — an oracle
//!    recomputed independently from the profile table and node classes
//!    (brute enumeration over nodes × entries) must agree that every
//!    shed queue was hopeless at shed time.
//! 3. Shedding is observable end to end: metrics, `SchedulerStats`, and
//!    `QueueShed` events (through the shared `EventLog` tap) stay
//!    consistent.

mod support;

use esg::prelude::*;
use esg::sim::{AdmissionPlan, RankedQueues};
use support::Traced;

/// An admission stage that admits everything — through the non-default
/// code path (explicit plan construction), so the stack pipeline is
/// genuinely exercised.
struct AdmitEverything;

impl RoundPolicy for AdmitEverything {
    fn name(&self) -> &'static str {
        "admit-everything"
    }
    fn admit(&mut self, ctx: &RoundCtx<'_>) -> AdmissionPlan {
        AdmissionPlan::admit_all(ctx.queues.len())
    }
    fn clone_box(&self) -> Box<dyn RoundPolicy> {
        Box::new(AdmitEverything)
    }
}

/// A rank stage that replays classic scan order explicitly.
struct ClassicOrder;

impl RoundPolicy for ClassicOrder {
    fn name(&self) -> &'static str {
        "classic-order"
    }
    fn rank(&mut self, _ctx: &RoundCtx<'_>, admitted: &[usize]) -> RankedQueues {
        RankedQueues::scan_order(admitted)
    }
    fn clone_box(&self) -> Box<dyn RoundPolicy> {
        Box::new(ClassicOrder)
    }
}

fn neutral_stack() -> PolicyStack {
    PolicyStack::new().with(AdmitEverything).with(ClassicOrder)
}

fn canonical(mut r: ExperimentResult) -> String {
    r.wall_overhead_ms.clear();
    format!("{r:?}")
}

const SHAPES: [TrafficShape; 3] = [
    TrafficShape::Steady,
    TrafficShape::Bursty,
    TrafficShape::AzureReplay,
];

fn specs() -> [ClusterSpec; 3] {
    [
        ClusterSpec::paper(),
        ClusterSpec::mixed_mig(),
        ClusterSpec::skewed(),
    ]
}

fn run_traced(
    sched: Box<dyn Scheduler>,
    spec: &ClusterSpec,
    shape: TrafficShape,
    seed: u64,
) -> (String, u64, ExperimentResult) {
    let env = SimEnv::standard(SloClass::Moderate);
    let workload = shaped_workload(
        WorkloadClass::Light,
        shape,
        &esg::model::standard_app_ids(),
        seed,
        2_000.0,
    );
    let cfg = SimConfig {
        cluster: Some(spec.clone()),
        seed,
        ..SimConfig::default()
    };
    let mut traced = Traced::new(sched);
    let r = run_simulation(&env, cfg, &mut traced, &workload, "policy-stack");
    (canonical(r.clone()), traced.trace_digest(), r)
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// Admit-everything + classic-order stacks are bit-identical to the
    /// provided default driver: same dispatch-trace FNV digest, same
    /// canonical results. Exercised for ESG (plan cache, adaptive
    /// batching) and INFless (a migrated baseline).
    #[test]
    fn neutral_stack_replays_the_default_driver(
        seed in 0u64..1_000,
        spec_idx in 0usize..3,
        shape_idx in 0usize..3,
        baseline in proptest::prelude::any::<bool>(),
    ) {
        let spec = specs()[spec_idx].clone();
        let shape = SHAPES[shape_idx];
        let default_sched: Box<dyn Scheduler> = if baseline {
            Box::new(InflessScheduler::new())
        } else {
            Box::new(EsgScheduler::new())
        };
        let stacked: Box<dyn Scheduler> = if baseline {
            Box::new(InflessScheduler::new().with_policy(neutral_stack()))
        } else {
            Box::new(EsgScheduler::new().with_policy(neutral_stack()))
        };
        let (res_a, trace_a, _) = run_traced(default_sched, &spec, shape, seed);
        let (res_b, trace_b, _) = run_traced(stacked, &spec, shape, seed);
        proptest::prop_assert_eq!(trace_a, trace_b, "dispatch traces diverged");
        proptest::prop_assert_eq!(res_a, res_b);
    }

    /// `SloAdmission` never sheds a queue the independent oracle judges
    /// feasible. The oracle brute-enumerates (online node × profile
    /// entry) pairs at shed time — fit against node totals, latency
    /// scaled by the class speed — and is checked inside the admission
    /// call itself, so every shed decision of the whole run is audited.
    #[test]
    fn slo_admission_never_sheds_feasible_queues(
        seed in 0u64..1_000,
        spec_idx in 0usize..3,
        shape_idx in 0usize..3,
    ) {
        /// Wraps SloAdmission and audits every Shed verdict in place.
        struct OracleChecked {
            inner: SloAdmission,
        }

        impl RoundPolicy for OracleChecked {
            fn name(&self) -> &'static str {
                "oracle-checked-admission"
            }
            fn admit(&mut self, ctx: &RoundCtx<'_>) -> AdmissionPlan {
                let plan = self.inner.admit(ctx);
                for (i, d) in plan.decisions().iter().enumerate() {
                    if !matches!(d, esg::sim::AdmissionDecision::Shed { .. }) {
                        continue;
                    }
                    let q = &ctx.queues[i];
                    // Independent oracle: brute enumeration over every
                    // job of the shed queue (shedding kills ALL of its
                    // invocations, so each one must be hopeless on its
                    // own slack), no shared helper with the policy
                    // under test.
                    for j in q.jobs {
                        let slack = j.slack_ms;
                        let feasible = ctx.cluster.nodes().iter().any(|n| {
                            n.online
                                && ctx.profiles.profile(q.function).entries().iter().any(|e| {
                                    n.total.contains(e.config.resources())
                                        && e.latency_ms * n.speed <= slack
                                })
                        });
                        assert!(
                            !feasible,
                            "SloAdmission shed queue {:?} holding a feasible \
invocation {:?} (slack {slack} ms)",
                            q.key, j.invocation
                        );
                    }
                }
                plan
            }
            fn stats(&self) -> esg::sim::PolicyStats {
                self.inner.stats()
            }
            fn clone_box(&self) -> Box<dyn RoundPolicy> {
                Box::new(OracleChecked {
                    inner: self.inner.clone(),
                })
            }
        }

        let spec = specs()[spec_idx].clone();
        let shape = SHAPES[shape_idx];
        let sched = EsgScheduler::new().with_policy(PolicyStack::new().with(OracleChecked {
            inner: SloAdmission::default(),
        }));
        // Tight SLO + bursty shapes manufacture hopeless queues; the
        // in-place oracle asserts on any false shed.
        let env = SimEnv::standard(SloClass::Strict);
        let workload = shaped_workload(
            WorkloadClass::Heavy,
            shape,
            &esg::model::standard_app_ids(),
            seed,
            2_000.0,
        );
        let cfg = SimConfig {
            cluster: Some(spec),
            seed,
            ..SimConfig::default()
        };
        let mut traced = Traced::new(Box::new(sched));
        let r = run_simulation(&env, cfg, &mut traced, &workload, "oracle-admission");
        // Accounting consistency: every shed invocation left the system,
        // and policy-side counters can only see the *queue-level* sheds
        // (platform-side purges of sibling jobs are extra).
        proptest::prop_assert_eq!(
            r.arrivals,
            r.total_completed() + r.shed_invocations,
            "every arrival either completed or was shed"
        );
        proptest::prop_assert!(r.shed_jobs >= r.scheduler_stats.policy.jobs_shed);
    }
}

#[test]
fn shedding_is_observable_end_to_end() {
    // A workload whose deadlines are all blown by construction: strict
    // SLO on a cluster of absurdly slow nodes. Admission must shed, and
    // every observability surface must agree.
    let env = SimEnv::standard(SloClass::Strict);
    let workload =
        WorkloadGen::new(WorkloadClass::Normal, esg::model::standard_app_ids(), 3).generate(40);
    let slow = NodeClass::a100().with_speed(500.0).named("glacial");
    let cfg = SimConfig {
        cluster: Some(ClusterSpec::new("glacial").with(slow, 4)),
        ..SimConfig::default()
    };
    let sched = EsgScheduler::new().with_policy(PolicyStack::new().with(SloAdmission::default()));
    let mut traced = Traced::new(Box::new(sched));
    let r = run_simulation(&env, cfg, &mut traced, &workload, "shed-everything");
    assert_eq!(r.arrivals, 40);
    assert_eq!(r.shed_invocations, 40, "every deadline is unattainable");
    assert_eq!(r.total_completed(), 0);
    assert_eq!(r.shed_rate(), 1.0);
    assert!(
        r.scheduler_stats.policy.queues_shed > 0,
        "policy counters surface"
    );
    // The EventLog tap saw the QueueShed events and drained backlogs.
    let shed_events: u64 = traced
        .log
        .records()
        .filter_map(|rec| match rec.kind {
            EventKind::QueueShed { jobs, .. } => Some(jobs as u64),
            _ => None,
        })
        .sum();
    assert_eq!(shed_events, r.shed_jobs);
    assert_eq!(traced.log.total_backlog(), 0);
    // Shed counters render in Debug (and therefore in canonical dumps).
    let dump = format!("{r:?}");
    assert!(dump.contains("shed_invocations: 40"), "{dump}");
    // A zero-shed run keeps the pre-policy Debug shape.
    let clean = ExperimentResult::default();
    assert!(!format!("{clean:?}").contains("shed_invocations"));
}

#[test]
fn deferring_admission_variant_makes_progress() {
    // shed = false defers hopeless queues instead; the run must still
    // terminate (forced-minimum recheck path keeps draining) and shed
    // nothing.
    let env = SimEnv::standard(SloClass::Strict);
    let workload =
        WorkloadGen::new(WorkloadClass::Light, esg::model::standard_app_ids(), 9).generate(10);
    let cfg = SimConfig {
        max_sim_ms: 600_000.0,
        ..SimConfig::default()
    };
    let sched = EsgScheduler::new().with_policy(PolicyStack::new().with(SloAdmission::new(
        SloAdmissionConfig {
            shed: false,
            ..SloAdmissionConfig::default()
        },
    )));
    let mut s = sched;
    let r = run_simulation(&env, cfg, &mut s, &workload, "defer-only");
    assert_eq!(r.shed_invocations, 0);
    assert_eq!(r.total_completed(), 10, "deferred work still completes");
}
