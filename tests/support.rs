//! Shared harness for the equivalence suites — since the trace
//! subsystem moved into `esg-sim` (`esg_sim::trace`), this is a thin
//! re-export of the public API.
//!
//! The golden control-plane digests hash the exact string
//! [`Traced::trace`] renders; `esg_sim::trace::dispatch_trace` is now
//! the single owner of that format (and of the [`fnv64`] primitive), so
//! the suites, the trace recorder, and `TraceReplay::run_digest` all
//! fingerprint a run identically — a format tweak moves every consumer
//! in lockstep instead of letting copies drift apart.
#![allow(unused_imports)] // each test crate uses a subset of this module

pub use esg::sim::{fnv64, Traced};
