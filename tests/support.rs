//! Shared harness for the equivalence suites: the FNV digest helper and
//! the [`Traced`] scheduler wrapper that taps every control-plane event
//! into the shared [`EventLog`] ring.
//!
//! The golden control-plane digests hash the exact string [`Traced::trace`]
//! renders, so this module is the single owner of that format — a tweak
//! here moves every suite in lockstep instead of letting two copies
//! drift apart.
#![allow(dead_code)] // each test crate uses a subset of this module

use esg::prelude::*;
use esg::sim::Outcome;
use std::fmt::Write as _;

/// FNV-1a over `s` (the digest primitive of the golden harness).
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Wraps a scheduler and taps every control-plane event into the shared
/// `EventLog` ring (`esg_sim::eventlog`) — the externally observable
/// trace. The golden digest hashes a string *rendered from the log's
/// records* in the exact format the pre-redesign harness logged inline,
/// so moving onto the shared tap cannot move the digests.
pub struct Traced {
    pub inner: Box<dyn Scheduler>,
    pub log: EventLog,
}

impl Traced {
    pub fn new(inner: Box<dyn Scheduler>) -> Traced {
        Traced {
            inner,
            // The whole run must stay replayable: counters are exact at
            // any capacity, but the trace digest needs every record.
            log: EventLog::with_capacity(1 << 22),
        }
    }

    /// Renders the dispatch/churn/shed trace the digests hash. Shed
    /// records are an addition over the pre-redesign notification pair;
    /// classic (non-shedding) runs render byte-identically to the
    /// golden baseline. Arrivals, completions, and recheck ticks are
    /// deliberately not rendered.
    pub fn trace(&self) -> String {
        let mut out = String::new();
        assert_eq!(self.log.dropped(), 0, "trace ring must hold every event");
        for r in self.log.records() {
            match r.kind {
                EventKind::Dispatched {
                    key,
                    config,
                    node,
                    jobs,
                } => {
                    let _ = write!(
                        out,
                        "D {}.{} {} n{} x{};",
                        key.app.0, key.stage, config, node.0, jobs
                    );
                }
                EventKind::Churn { node, joined } => {
                    let _ = write!(
                        out,
                        "C n{} {};",
                        node.0,
                        if joined { "join" } else { "drain" }
                    );
                }
                EventKind::QueueShed { key, jobs, reason } => {
                    let _ = write!(out, "S {}.{} x{} {};", key.app.0, key.stage, jobs, reason);
                }
                _ => {}
            }
        }
        out
    }

    /// FNV digest of [`trace`](Self::trace).
    pub fn trace_digest(&self) -> u64 {
        fnv64(&self.trace())
    }
}

impl Scheduler for Traced {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome {
        self.inner.schedule(ctx)
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        self.inner.place(ctx, config)
    }

    fn schedule_round(
        &mut self,
        ctx: &esg::sim::RoundCtx<'_>,
    ) -> Vec<(esg::sim::QueueKey, Outcome)> {
        // Forwarded so a wrapped scheduler's round-policy stack (if any)
        // is exercised rather than silently replaced by the default
        // one-queue replay.
        self.inner.schedule_round(ctx)
    }

    fn on_event(&mut self, event: &SchedulerEvent<'_>) {
        self.log.observe(event);
        self.inner.on_event(event);
    }

    fn stats(&self) -> SchedulerStats {
        self.inner.stats()
    }
}
