//! The plan cache must be semantically invisible: dispatch with the memo
//! enabled produces bit-identical `ExperimentResult`s to dispatch without
//! it, including across cluster churn (which invalidates the cache
//! mid-run) and bursty traffic (which exercises the batch-hold probes).
//!
//! This holds because the search budget is quantized onto the cache's
//! bucket grid whether or not the cache is consulted, and a cache hit
//! replays the memoised search result verbatim — expansions included, so
//! even the simulated-overhead accounting cannot diverge.

use esg::prelude::*;
use proptest::prelude::*;

/// The comparison form: wall-clock samples are non-deterministic by
/// nature, and the scheduler's self-reported counters legitimately differ
/// between a cached and an uncached run (that difference is the point).
/// Everything else must match bit-for-bit.
fn canonical(mut r: ExperimentResult) -> String {
    r.wall_overhead_ms.clear();
    r.scheduler_stats = SchedulerStats::default();
    format!("{r:?}")
}

fn churny_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        cluster: Some(ClusterSpec::skewed()),
        churn: ChurnPlan::none()
            .drain(600.0, NodeId(0))
            .join(1_000.0, NodeClass::t4())
            .drain(1_800.0, NodeId(2))
            .join(2_400.0, NodeClass::v100()),
        ..SimConfig::default()
    }
}

fn run_pair(
    slo: SloClass,
    workload: &Workload,
    cfg: &SimConfig,
) -> (ExperimentResult, ExperimentResult) {
    let env = SimEnv::standard(slo);
    let mut cached = EsgScheduler::new();
    let mut uncached = EsgScheduler::new().without_plan_cache();
    let a = run_simulation(&env, cfg.clone(), &mut cached, workload, "cache-eq");
    let b = run_simulation(&env, cfg.clone(), &mut uncached, workload, "cache-eq");
    (a, b)
}

#[test]
fn cached_dispatch_is_bit_identical_under_heavy_churn() {
    let workload = shaped_workload(
        WorkloadClass::Normal,
        TrafficShape::Bursty,
        &esg::model::standard_app_ids(),
        42,
        4_000.0,
    );
    let (cached, uncached) = run_pair(SloClass::Moderate, &workload, &churny_config(42));
    assert!(cached.arrivals > 0);
    assert!(
        cached.scheduler_stats.plan_cache_hits > 0,
        "the memo never fired — the equivalence below would be vacuous"
    );
    assert!(
        cached.scheduler_stats.plan_cache_invalidations >= 4,
        "every churn event must invalidate, got {:?}",
        cached.scheduler_stats
    );
    assert_eq!(
        uncached.scheduler_stats.plan_cache_hits + uncached.scheduler_stats.plan_cache_misses,
        0,
        "the uncached scheduler must not consult a cache"
    );
    assert_eq!(canonical(cached), canonical(uncached));
}

#[test]
fn tiny_cache_thrashes_but_stays_equivalent() {
    // A capacity-2 cache evicts constantly; eviction must be as invisible
    // as hits are.
    let workload = shaped_workload(
        WorkloadClass::Normal,
        TrafficShape::Steady,
        &esg::model::standard_app_ids(),
        7,
        3_000.0,
    );
    let env = SimEnv::standard(SloClass::Strict);
    let mut tiny = EsgScheduler::new().with_plan_cache_capacity(2);
    let mut off = EsgScheduler::new().without_plan_cache();
    let cfg = churny_config(7);
    let a = run_simulation(&env, cfg.clone(), &mut tiny, &workload, "cache-eq");
    let b = run_simulation(&env, cfg, &mut off, &workload, "cache-eq");
    assert!(
        a.scheduler_stats.plan_cache_evictions > 0,
        "capacity 2 must evict, got {:?}",
        a.scheduler_stats
    );
    assert_eq!(canonical(a), canonical(b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the equivalence: random seeds, SLO classes, and
    /// traffic shapes over the churning skewed cluster.
    #[test]
    fn cached_equals_uncached_across_random_churny_sweeps(
        seed in 0u64..1_000,
        slo_idx in 0usize..3,
        shape_idx in 0usize..3,
    ) {
        let slo = [SloClass::Strict, SloClass::Moderate, SloClass::Relaxed][slo_idx];
        let shape = [TrafficShape::Steady, TrafficShape::Bursty, TrafficShape::Diurnal][shape_idx];
        let workload = shaped_workload(
            WorkloadClass::Light,
            shape,
            &esg::model::standard_app_ids(),
            seed,
            2_500.0,
        );
        let (cached, uncached) = run_pair(slo, &workload, &churny_config(seed));
        prop_assert_eq!(canonical(cached), canonical(uncached));
    }
}
