//! Bit-reproducibility: identical seeds give identical runs; different
//! seeds differ.

use esg::prelude::*;

fn run(seed: u64, sched_seed: u64) -> ExperimentResult {
    let env = SimEnv::with_grid(
        SloClass::Moderate,
        ConfigGrid::new(vec![1, 2, 4], vec![1, 2, 4], vec![1, 2]),
    );
    let w =
        WorkloadGen::new(WorkloadClass::Light, esg::model::standard_app_ids(), seed).generate(80);
    let mut s = esg::core::EsgScheduler::new();
    let cfg = SimConfig {
        seed: sched_seed,
        ..SimConfig::default()
    };
    run_simulation(&env, cfg, &mut s, &w, "det")
}

#[test]
fn identical_seeds_reproduce_exactly() {
    let a = run(3, 42);
    let b = run(3, 42);
    assert_eq!(a.total_completed(), b.total_completed());
    assert_eq!(a.dispatches, b.dispatches);
    assert_eq!(a.cold_starts, b.cold_starts);
    assert_eq!(a.overhead_ms, b.overhead_ms);
    for (x, y) in a.apps.iter().zip(&b.apps) {
        assert_eq!(x.latencies_ms, y.latencies_ms);
        assert!((x.cost_cents - y.cost_cents).abs() < 1e-12);
    }
}

#[test]
fn noise_seed_changes_latencies() {
    let a = run(3, 42);
    let b = run(3, 43);
    let same = a
        .apps
        .iter()
        .zip(&b.apps)
        .all(|(x, y)| x.latencies_ms == y.latencies_ms);
    assert!(!same, "different noise seeds must perturb latencies");
}

#[test]
fn workload_seed_changes_arrivals() {
    let a = run(3, 42);
    let b = run(4, 42);
    assert!(a.makespan_ms != b.makespan_ms || a.dispatches != b.dispatches);
}
