//! Old-vs-new control-plane equivalence: the redesigned event-driven API
//! (incremental `ClusterState`, `schedule_round` with the default
//! one-queue replay, `on_event` notifications) must reproduce the
//! pre-redesign snapshot-rebuild platform *bit for bit*.
//!
//! The pin is a golden digest recorded from the pre-redesign platform on
//! the hetero sweep grid (3 cluster specs × 3 traffic shapes × 5
//! schedulers, churn on the skewed case — the same grid as `cargo bench
//! --bench hetero`, at a test-sized arrival window): for every cell, an
//! FNV fingerprint of the *dispatch trace* (every dispatch and churn
//! notification the scheduler observed, in order) and of the canonical
//! `ExperimentResult` debug dump.
//!
//! Provenance: `tests/golden/control_plane.digest` was blessed on the
//! snapshot-rebuild platform *before* the API migration, using an
//! earlier revision of this harness whose `Traced` wrapper logged
//! through the then-extant `notify_dispatch`/`notify_churn` hooks (the
//! pair `SchedulerEvent::Dispatched`/`Churn` subsume) — so the file
//! really does freeze pre-redesign behaviour, which the migrated
//! wrapper below must reproduce. Regenerate with `ESG_BLESS=1 cargo
//! test --test control_plane_equivalence` — only ever from a commit
//! whose platform behaviour is the agreed baseline, noting the new
//! baseline's provenance here.

mod support;

use esg::baselines::bo::BoOptimizer;
use esg::prelude::*;
use support::{fnv64, Traced};

/// Simulated arrival window per cell, ms (test-sized stand-in for the
/// hetero bench's 120 s window; the grid shape is what matters).
const RUN_MS: f64 = 2_500.0;

/// The five compared schedulers. Orion runs a reduced cut-off and
/// Aquatope a reduced BO budget so the debug-mode grid stays test-sized;
/// both still exercise their full notification/plan machinery.
fn build_sched(name: &str) -> Box<dyn Scheduler> {
    match name {
        "ESG" => Box::new(EsgScheduler::new()),
        "INFless" => Box::new(InflessScheduler::new()),
        "FaST-GShare" => Box::new(FastGShareScheduler::new()),
        "Orion" => Box::new(OrionScheduler::new(20.0)),
        "Aquatope" => Box::new(AquatopeScheduler::new(BoOptimizer::tiny(42))),
        other => panic!("unknown scheduler {other}"),
    }
}

const SCHEDULERS: [&str; 5] = ["ESG", "INFless", "FaST-GShare", "Orion", "Aquatope"];
const SHAPES: [TrafficShape; 3] = [
    TrafficShape::Steady,
    TrafficShape::Bursty,
    TrafficShape::Diurnal,
];

/// The hetero bench's cluster axis: paper testbed, mixed MIG, and the
/// skewed case whose fastest node is churned out a third into the run.
fn cluster_cases() -> Vec<(&'static str, ClusterSpec, ChurnPlan)> {
    vec![
        ("paper", ClusterSpec::paper(), ChurnPlan::none()),
        ("mixed-mig", ClusterSpec::mixed_mig(), ChurnPlan::none()),
        (
            "skewed+churn",
            ClusterSpec::skewed(),
            ChurnPlan::rolling_replace(RUN_MS / 3.0, 2_000.0, NodeId(0), NodeClass::t4()),
        ),
    ]
}

/// Canonical result form: wall-clock samples are host-dependent by
/// nature; everything else must reproduce bit-for-bit (f64 Debug
/// formatting round-trips exactly).
fn canonical(mut r: ExperimentResult) -> String {
    r.wall_overhead_ms.clear();
    format!("{r:?}")
}

fn run_cell(
    sched_name: &str,
    cluster_name: &str,
    spec: &ClusterSpec,
    churn: &ChurnPlan,
    shape: TrafficShape,
) -> String {
    let env = SimEnv::standard(SloClass::Moderate);
    let workload = shaped_workload(
        WorkloadClass::Normal,
        shape,
        &esg::model::standard_app_ids(),
        42,
        RUN_MS,
    );
    let cfg = SimConfig {
        cluster: Some(spec.clone()),
        churn: churn.clone(),
        warmup_exclude_ms: RUN_MS * 0.25,
        seed: 42,
        ..SimConfig::default()
    };
    let mut sched = Traced::new(build_sched(sched_name));
    let r = run_simulation(&env, cfg, &mut sched, &workload, "control-plane");
    let trace = sched.trace();
    format!(
        "{sched_name}|{cluster_name}|{shape}|trace={:016x}|result={:016x}|\
completed={}|dispatches={}|rechecks={}",
        fnv64(&trace),
        fnv64(&canonical(r.clone())),
        r.total_completed(),
        r.dispatches,
        r.rechecks,
    )
}

fn grid_digest() -> String {
    let mut out = String::new();
    for (cluster_name, spec, churn) in &cluster_cases() {
        for &shape in &SHAPES {
            for sched in SCHEDULERS {
                let line = run_cell(sched, cluster_name, spec, churn, shape);
                out.push_str(&line);
                out.push('\n');
            }
        }
    }
    out
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/control_plane.digest")
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// Property form across cluster specs × traffic shapes × churn
    /// plans × seeds: every run executes with the
    /// `validate_cluster_state` oracle, which rebuilds the pre-redesign
    /// from-scratch snapshot at every refresh point and asserts it
    /// equals the incrementally maintained `ClusterState` — and the
    /// oracle itself must be inert (bit-identical results and dispatch
    /// traces with it on or off).
    #[test]
    fn incremental_state_is_equivalent_to_snapshot_rebuild(
        seed in 0u64..1_000,
        spec_idx in 0usize..3,
        shape_idx in 0usize..3,
        churn_variant in 0usize..3,
    ) {
        let specs = [
            ClusterSpec::paper(),
            ClusterSpec::mixed_mig(),
            ClusterSpec::skewed(),
        ];
        let spec = specs[spec_idx].clone();
        let shape = SHAPES[shape_idx];
        let churn = match churn_variant {
            0 => ChurnPlan::none(),
            1 => ChurnPlan::rolling_replace(600.0, 400.0, NodeId(1), NodeClass::v100()),
            _ => ChurnPlan::none()
                .drain(400.0, NodeId(0))
                .join(700.0, NodeClass::t4())
                .drain(1_100.0, NodeId(2)),
        };
        let workload = shaped_workload(
            WorkloadClass::Light,
            shape,
            &esg::model::standard_app_ids(),
            seed,
            2_000.0,
        );
        let env = SimEnv::standard(SloClass::Moderate);
        let run = |validate: bool| {
            let mut sched = Traced::new(Box::new(EsgScheduler::new()));
            let cfg = SimConfig {
                cluster: Some(spec.clone()),
                churn: churn.clone(),
                seed,
                validate_cluster_state: validate,
                ..SimConfig::default()
            };
            let r = run_simulation(&env, cfg, &mut sched, &workload, "oracle");
            (canonical(r), sched.trace())
        };
        // The validated run's per-refresh assertions are the equivalence
        // proof; comparing against the unvalidated run proves the oracle
        // observes without perturbing.
        let (validated, trace_v) = run(true);
        let (plain, trace_p) = run(false);
        proptest::prop_assert_eq!(validated, plain);
        proptest::prop_assert_eq!(trace_v, trace_p);
    }
}

#[test]
fn hetero_grid_matches_pre_redesign_golden_digest() {
    let digest = grid_digest();
    let path = golden_path();
    if std::env::var("ESG_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::write(&path, &digest).expect("write golden digest");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden digest missing — run ESG_BLESS=1 cargo test --test control_plane_equivalence from the agreed baseline commit");
    // Line-by-line comparison so a divergence names its cell.
    for (got, want) in digest.lines().zip(golden.lines()) {
        assert_eq!(got, want, "control-plane behaviour diverged on this cell");
    }
    assert_eq!(
        digest.lines().count(),
        golden.lines().count(),
        "cell count changed"
    );
}
