//! The headline result on a reduced setting: ESG meets or beats the
//! baselines on SLO hit rate at equal-or-lower cost, and the Table-4 miss
//! pattern holds (only pre-planned schedulers miss).

use esg::baselines::bo::BoOptimizer;
use esg::prelude::*;

fn env() -> SimEnv {
    SimEnv::with_grid(
        SloClass::Moderate,
        ConfigGrid::new(vec![1, 2, 4], vec![1, 2, 4, 8], vec![1, 2]),
    )
}

fn workload() -> Workload {
    WorkloadGen::new(WorkloadClass::Normal, esg::model::standard_app_ids(), 21)
        .generate_for(40_000.0)
}

fn cfg() -> SimConfig {
    SimConfig {
        warmup_exclude_ms: 10_000.0,
        ..SimConfig::default()
    }
}

#[test]
fn esg_beats_relation_blind_baselines_on_hit_rate() {
    let env = env();
    let w = workload();
    let mut esg = esg::core::EsgScheduler::new();
    let r_esg = run_simulation(&env, cfg(), &mut esg, &w, "esg");
    let mut infless = esg::baselines::InflessScheduler::new();
    let r_inf = run_simulation(&env, cfg(), &mut infless, &w, "infless");
    let mut fgs = esg::baselines::FastGShareScheduler::new();
    let r_fgs = run_simulation(&env, cfg(), &mut fgs, &w, "fgs");
    assert!(
        r_esg.avg_hit_rate() >= r_inf.avg_hit_rate(),
        "ESG {:.3} vs INFless {:.3}",
        r_esg.avg_hit_rate(),
        r_inf.avg_hit_rate()
    );
    assert!(
        r_esg.avg_hit_rate() >= r_fgs.avg_hit_rate(),
        "ESG {:.3} vs FaST-GShare {:.3}",
        r_esg.avg_hit_rate(),
        r_fgs.avg_hit_rate()
    );
    // Cost: ESG spends no more per invocation than either baseline.
    assert!(r_esg.cost_per_invocation_cents() <= r_inf.cost_per_invocation_cents() * 1.02);
    assert!(r_esg.cost_per_invocation_cents() <= r_fgs.cost_per_invocation_cents() * 1.02);
}

#[test]
fn only_preplanned_schedulers_miss_configurations() {
    let env = env();
    let w = workload();
    let mut esg = esg::core::EsgScheduler::new();
    let r_esg = run_simulation(&env, cfg(), &mut esg, &w, "esg");
    assert_eq!(r_esg.config_misses, 0, "ESG adapts and never misses");

    let mut aq = esg::baselines::AquatopeScheduler::new(BoOptimizer::tiny(5));
    let r_aq = run_simulation(&env, cfg(), &mut aq, &w, "aq");
    // The BO plan regularly wants a bigger batch than the live queue holds.
    assert!(
        r_aq.config_misses > 0,
        "Aquatope's static plans should miss sometimes"
    );
}

#[test]
fn orion_overhead_costs_hit_rate() {
    // Fig. 9's premise: the same Orion with its search time charged does
    // no better than with the search free.
    let env = env();
    let w = workload();
    let charged = {
        let mut s = esg::baselines::OrionScheduler::new(100.0);
        run_simulation(&env, cfg(), &mut s, &w, "orion")
    };
    let free = {
        let mut s = esg::baselines::OrionScheduler::new(100.0);
        let c = SimConfig {
            charge_overhead: false,
            ..cfg()
        };
        run_simulation(&env, c, &mut s, &w, "orion-free")
    };
    assert!(charged.avg_hit_rate() <= free.avg_hit_rate() + 0.02);
}

#[test]
fn esg_locality_beats_fragmentation_placement() {
    let env = env();
    let w = workload();
    let mut esg = esg::core::EsgScheduler::new();
    let r_esg = run_simulation(&env, cfg(), &mut esg, &w, "esg");
    let mut infless = esg::baselines::InflessScheduler::new();
    let r_inf = run_simulation(&env, cfg(), &mut infless, &w, "infless");
    assert!(
        r_esg.locality_rate() > r_inf.locality_rate(),
        "ESG local {:.2} vs INFless {:.2}",
        r_esg.locality_rate(),
        r_inf.locality_rate()
    );
}
