//! Parallel sweeps must be bit-identical to serial sweeps.
//!
//! The `ExperimentSuite` engine promises that a sweep's records are a pure
//! function of the matrix cells (deterministic per-run seeding, shared
//! workload materialisation, wall-clock excluded from canonical records).
//! This test runs the acceptance-grade 24-cell matrix — 2 schedulers × 2
//! SLO classes × 2 workload classes × 3 seeds — both ways and compares
//! everything: the canonical digests (full `ExperimentResult` dumps, f64
//! Debug formatting round-trips exactly, so string equality here is bit
//! equality), the JSON artifact, and the CSV rows.

use esg_bench::{ExperimentSuite, ScenarioMatrix, SchedKind, SweepResult};
use esg_model::{SloClass, WorkloadClass};

fn acceptance_matrix() -> ScenarioMatrix {
    ScenarioMatrix::new()
        .schedulers([SchedKind::Esg, SchedKind::Infless])
        .cross(
            [SloClass::Strict, SloClass::Relaxed],
            [WorkloadClass::Light, WorkloadClass::Heavy],
        )
        .seeds([42, 43, 44])
}

fn suite() -> ExperimentSuite {
    // A short arrival window keeps 48 simulations test-sized; determinism
    // does not depend on the window length.
    ExperimentSuite::new("determinism", acceptance_matrix()).with_run_seconds(4.0)
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let matrix = acceptance_matrix();
    assert!(matrix.len() >= 24, "acceptance grid is at least 24 cells");

    let parallel = suite().run();
    let serial = suite().serial().run();

    assert_eq!(parallel.results.len(), matrix.len());
    assert_eq!(serial.results.len(), matrix.len());

    // Cell-by-cell coordinates line up (same expansion order)…
    for (p, s) in parallel.results.iter().zip(&serial.results) {
        assert_eq!(p.scheduler, s.scheduler);
        assert_eq!(p.scenario, s.scenario);
        assert_eq!(p.seed, s.seed);
        // …and the full simulation output is identical, wall clock aside.
        assert_eq!(
            format!("{:?}", p.canonical_result()),
            format!("{:?}", s.canonical_result()),
            "cell ({}, {}, seed {}) diverged between parallel and serial",
            p.scheduler,
            p.scenario,
            p.seed
        );
    }

    // Whole-sweep digests and artifacts agree byte-for-byte.
    assert_eq!(parallel.canonical_digest(), serial.canonical_digest());
    assert_eq!(
        serde_json::to_string(&parallel.to_json()),
        serde_json::to_string(&serial.to_json())
    );
    let rows_p: Vec<String> = parallel.results.iter().map(SweepResult::csv_row).collect();
    let rows_s: Vec<String> = serial.results.iter().map(SweepResult::csv_row).collect();
    assert_eq!(rows_p, rows_s);
}

#[test]
fn repeated_parallel_sweeps_are_reproducible() {
    // Thread scheduling must not leak into results: two parallel runs of
    // the same suite agree with each other too.
    let a = suite().run();
    let b = suite().run();
    assert_eq!(a.canonical_digest(), b.canonical_digest());
}

#[test]
fn distinct_seeds_produce_distinct_runs() {
    // Guards against a seeding bug collapsing the seed axis (which would
    // make the determinism assertions above vacuous).
    let sweep = suite().run();
    let mut per_seed: Vec<String> = sweep
        .results
        .iter()
        .filter(|c| c.scheduler == "ESG")
        .map(|c| format!("{:?}", c.canonical_result()))
        .collect();
    let total = per_seed.len();
    per_seed.sort();
    per_seed.dedup();
    assert_eq!(per_seed.len(), total, "every (scenario, seed) cell differs");
}
