//! End-to-end platform runs for every scheduler: everything completes,
//! resources balance, metrics are internally consistent.

use esg::baselines::bo::BoOptimizer;
use esg::prelude::*;

fn small_env(slo: SloClass) -> SimEnv {
    // Reduced grid keeps debug-mode search time low without changing the
    // platform semantics under test.
    SimEnv::with_grid(
        slo,
        ConfigGrid::new(vec![1, 2, 4], vec![1, 2, 4, 8], vec![1, 2]),
    )
}

fn workload(n: usize) -> Workload {
    WorkloadGen::new(WorkloadClass::Normal, esg::model::standard_app_ids(), 9).generate(n)
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(esg::core::EsgScheduler::new()),
        Box::new(esg::baselines::InflessScheduler::new()),
        Box::new(esg::baselines::FastGShareScheduler::new()),
        Box::new(esg::baselines::OrionScheduler::new(5.0)),
        Box::new(esg::baselines::AquatopeScheduler::new(BoOptimizer::tiny(4))),
        Box::new(MinScheduler),
    ]
}

#[test]
fn every_scheduler_completes_every_invocation() {
    let env = small_env(SloClass::Relaxed);
    let w = workload(120);
    for mut s in schedulers() {
        let r = run_simulation(&env, SimConfig::default(), s.as_mut(), &w, "e2e");
        assert_eq!(r.arrivals, 120, "{}", r.scheduler);
        assert_eq!(r.total_completed(), 120, "{} left work behind", r.scheduler);
        assert_eq!(
            r.warm_starts + r.cold_starts,
            r.dispatches,
            "{} start accounting",
            r.scheduler
        );
        assert!(r.total_cost_cents() > 0.0);
        assert!(r.vgpu_utilisation > 0.0 && r.vgpu_utilisation <= 1.0);
        assert!(r.vcpu_utilisation > 0.0 && r.vcpu_utilisation <= 1.0);
        // Every dispatched job is accounted: batch sizes sum to the exact
        // number of stage-jobs the workload generates.
        let jobs_dispatched = r.batch_size.sum();
        let total_jobs: f64 = w
            .arrivals
            .iter()
            .map(|a| env.apps[a.app.index()].num_stages() as f64)
            .sum();
        assert!(
            (jobs_dispatched - total_jobs).abs() < 0.5,
            "{}: dispatched {jobs_dispatched} vs expected {total_jobs}",
            r.scheduler
        );
    }
}

#[test]
fn latency_series_lengths_match_completions() {
    let env = small_env(SloClass::Moderate);
    let w = workload(100);
    let mut s = esg::core::EsgScheduler::new();
    let r = run_simulation(&env, SimConfig::default(), &mut s, &w, "series");
    for a in &r.apps {
        assert_eq!(a.latencies_ms.len() as u64, a.completed);
        assert!(a.slo_hits <= a.completed);
        assert!(a.latencies_ms.iter().all(|&l| l > 0.0));
    }
}

#[test]
fn warmup_window_excludes_early_invocations() {
    let env = small_env(SloClass::Moderate);
    let w = workload(150);
    let mut a = esg::core::EsgScheduler::new();
    let full = run_simulation(&env, SimConfig::default(), &mut a, &w, "full");
    let mut b = esg::core::EsgScheduler::new();
    let cfg = SimConfig {
        warmup_exclude_ms: w.span_ms() / 2.0,
        ..SimConfig::default()
    };
    let trimmed = run_simulation(&env, cfg, &mut b, &w, "trim");
    assert!(trimmed.total_completed() < full.total_completed());
    assert!(trimmed.total_completed() > 0);
}

#[test]
fn relaxing_the_slo_only_helps_a_fixed_policy() {
    // With a policy that ignores the SLO (MinScheduler), the execution is
    // identical across SLO classes, so a looser deadline can only raise
    // the hit rate. (Adaptive schedulers legitimately change behaviour
    // with the SLO, so this monotonicity is only a fixed-policy property.)
    let w = workload(150);
    let hit = |slo| {
        let env = small_env(slo);
        let mut s = MinScheduler;
        run_simulation(&env, SimConfig::default(), &mut s, &w, "ord").avg_hit_rate()
    };
    assert!(hit(SloClass::Relaxed) + 1e-9 >= hit(SloClass::Strict));
}
