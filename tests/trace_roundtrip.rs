//! Round-trip fidelity of the event-sourced trace format: a run
//! recorded through [`SimBuilder::record_trace`] and replayed through
//! [`TraceReplay`] under the same scheduler and seed must reproduce the
//! recorded dispatch-trace digest bit for bit — and a damaged trace
//! file must surface a typed [`TraceError`], never a panic.
//!
//! This is the integration-level pin of the PR's acceptance criterion;
//! the bench target (`cargo bench --bench replay`) asserts the same
//! identity over the full-length evaluation runs.

use esg::prelude::*;
use proptest::prelude::*;

/// A scratch path unique to this process and `tag` (tests in one binary
/// run concurrently; traces must not collide).
fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("esg-roundtrip-{tag}-{}.json", std::process::id()))
}

/// Records `invocations` of `class` arrivals under the given scheduler
/// and churn, returning the recorded metrics and the loaded replay.
fn record(
    sched: &mut dyn Scheduler,
    slo: SloClass,
    class: WorkloadClass,
    seed: u64,
    invocations: usize,
    churn: ChurnPlan,
    tag: &str,
) -> (ExperimentResult, TraceReplay, std::path::PathBuf) {
    let path = scratch(tag);
    let sim = SimBuilder::new(slo)
        .seed(seed)
        .churn(churn)
        .record_trace(&path)
        .build()
        .expect("valid configuration");
    let w = WorkloadGen::new(class, esg::model::standard_app_ids(), seed).generate(invocations);
    let recorded = sim.run(sched, &w, "record");
    let replay = TraceReplay::load(&path).expect("recorded trace loads");
    (recorded, replay, path)
}

#[test]
fn recorded_and_replayed_esg_runs_share_one_digest() {
    let (recorded, replay, path) = record(
        &mut EsgScheduler::new(),
        SloClass::Strict,
        WorkloadClass::Light,
        42,
        120,
        ChurnPlan::none(),
        "esg",
    );
    let trace = replay.trace();
    assert_eq!(trace.scheduler, "ESG");
    assert_eq!(trace.arrivals.len() as u64, recorded.arrivals);

    let (replayed, digest) = replay.run_digest(Box::new(EsgScheduler::new()), "replay");
    assert_eq!(
        digest,
        trace.dispatch_digest(),
        "replaying the recorded scheduler must reproduce the recorded dispatch trace"
    );
    assert_eq!(replayed.arrivals, recorded.arrivals);
    assert_eq!(replayed.dispatches, recorded.dispatches);
    assert_eq!(replayed.cold_starts, recorded.cold_starts);
    std::fs::remove_file(&path).ok();
}

#[test]
fn churned_runs_round_trip_with_their_cluster_events() {
    // Churn lands in both the config (the replay re-applies it) and the
    // digest (`C n… drain;` records): a drain mid-run must survive the
    // trip exactly.
    let churn = ChurnPlan::none().drain(4_000.0, NodeId(3));
    let (recorded, replay, path) = record(
        &mut EsgScheduler::new(),
        SloClass::Moderate,
        WorkloadClass::Normal,
        7,
        90,
        churn,
        "churn",
    );
    let trace = replay.trace();
    assert!(
        trace.dispatch_trace().contains("C n3 drain;"),
        "the recorded trace must carry the churn record"
    );
    let (replayed, digest) = replay.run_digest(Box::new(EsgScheduler::new()), "replay");
    assert_eq!(digest, trace.dispatch_digest());
    assert_eq!(replayed.arrivals, recorded.arrivals);
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_different_scheduler_replays_the_same_offered_load() {
    let (recorded, replay, path) = record(
        &mut EsgScheduler::new(),
        SloClass::Relaxed,
        WorkloadClass::Light,
        11,
        80,
        ChurnPlan::none(),
        "cross",
    );
    let (other, digest) = replay.run_digest(Box::new(OrionScheduler::default()), "replay-orion");
    assert_eq!(
        other.arrivals, recorded.arrivals,
        "the recorded arrival stream is scheduler-independent"
    );
    // Orion makes different decisions, so (at test scale) its dispatch
    // trace differs from ESG's recording — the digest is a fingerprint
    // of decisions, not of the offered load.
    assert_ne!(digest, replay.trace().dispatch_digest());
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_and_corrupt_traces_error_instead_of_panicking() {
    let (_, replay, path) = record(
        &mut MinScheduler,
        SloClass::Moderate,
        WorkloadClass::Light,
        3,
        40,
        ChurnPlan::none(),
        "corrupt",
    );
    drop(replay);
    let text = std::fs::read_to_string(&path).expect("trace written");
    std::fs::remove_file(&path).ok();

    // Truncation at any prefix must be a typed error, never a panic.
    // The document is pure ASCII, so every byte offset is a char
    // boundary.
    assert!(text.is_ascii(), "trace documents are ASCII");
    for cut in [0, 1, 10, text.len() / 2, text.len() - 1] {
        let err = TraceFile::from_json(&text[..cut]).expect_err("truncated trace must not load");
        assert!(
            matches!(err, TraceError::Parse { .. } | TraceError::Schema { .. }),
            "byte {cut}: unexpected error {err:?}"
        );
    }

    // A future schema version is refused with the version pair.
    let future = text.replacen("\"version\":1", "\"version\":99", 1);
    assert_ne!(future, text, "version field located");
    assert!(matches!(
        TraceFile::from_json(&future),
        Err(TraceError::Version {
            found: 99,
            supported: 1
        })
    ));

    // A field of the wrong shape is schema drift, reported as such.
    let drifted = text.replacen("\"slo\":\"moderate\"", "\"slo\":3", 1);
    assert_ne!(drifted, text, "slo field located");
    assert!(matches!(
        TraceFile::from_json(&drifted),
        Err(TraceError::Schema { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Digest identity is not a property of one lucky seed: across
    /// seeds, SLO classes, and workload sizes, a recorded run replayed
    /// under the same (deterministic) scheduler reproduces its digest.
    #[test]
    fn replay_digest_matches_recording_for_any_seed(
        seed in 0u64..1_000,
        slo_pick in 0usize..3,
        invocations in 20usize..60,
    ) {
        let slo = [SloClass::Strict, SloClass::Moderate, SloClass::Relaxed][slo_pick];
        let (recorded, replay, path) = record(
            &mut MinScheduler,
            slo,
            WorkloadClass::Light,
            seed,
            invocations,
            ChurnPlan::none(),
            &format!("prop-{seed}-{slo_pick}-{invocations}"),
        );
        let (replayed, digest) = replay.run_digest(Box::new(MinScheduler), "replay");
        prop_assert_eq!(digest, replay.trace().dispatch_digest());
        prop_assert_eq!(replayed.arrivals, recorded.arrivals);
        prop_assert_eq!(replayed.dispatches, recorded.dispatches);
        std::fs::remove_file(&path).ok();
    }
}
