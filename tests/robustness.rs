//! Robustness: recheck/forced-minimum progress under a starved cluster,
//! heterogeneous nodes, ablated grids, and pathological workloads.

use esg::prelude::*;

#[test]
fn tiny_cluster_still_makes_progress() {
    // Two nodes only: placements fail often, the recheck list and the
    // forced-minimum path must keep the system live.
    let env = SimEnv::with_grid(
        SloClass::Relaxed,
        ConfigGrid::new(vec![1, 2], vec![1, 2, 4], vec![1, 2]),
    );
    let w = WorkloadGen::new(WorkloadClass::Light, esg::model::standard_app_ids(), 13).generate(60);
    let mut s = esg::core::EsgScheduler::new();
    let cfg = SimConfig {
        nodes: 2,
        ..SimConfig::default()
    };
    let r = run_simulation(&env, cfg, &mut s, &w, "tiny");
    assert_eq!(
        r.total_completed(),
        60,
        "forced-min must guarantee progress"
    );
}

#[test]
fn heterogeneous_capacity_configs() {
    // Appendix A: the algorithms tolerate heterogeneous hardware. Model a
    // smaller node class via node_resources and confirm completion.
    let env = SimEnv::with_grid(
        SloClass::Relaxed,
        ConfigGrid::new(vec![1, 2], vec![1, 2, 4], vec![1, 2]),
    );
    let w = WorkloadGen::new(WorkloadClass::Light, esg::model::standard_app_ids(), 5).generate(50);
    let mut s = esg::core::EsgScheduler::new();
    let cfg = SimConfig {
        nodes: 8,
        node_resources: Resources::new(8, 4),
        ..SimConfig::default()
    };
    let r = run_simulation(&env, cfg, &mut s, &w, "hetero");
    assert_eq!(r.total_completed(), 50);
}

#[test]
fn no_batching_grid_still_completes() {
    let env = SimEnv::with_grid(
        SloClass::Relaxed,
        ConfigGrid::new(vec![1, 2, 4], vec![1, 2, 4], vec![1, 2]).without_batching(),
    );
    let w = WorkloadGen::new(WorkloadClass::Light, esg::model::standard_app_ids(), 2).generate(60);
    let mut s = esg::core::EsgScheduler::new();
    let r = run_simulation(&env, SimConfig::default(), &mut s, &w, "nobatch");
    assert_eq!(r.total_completed(), 60);
    // Batch can never exceed 1.
    assert!(r.batch_size.max().unwrap_or(1.0) <= 1.0 + 1e-9);
}

#[test]
fn no_gpu_sharing_grid_still_completes() {
    let env = SimEnv::with_grid(
        SloClass::Relaxed,
        ConfigGrid::default().without_gpu_sharing(7),
    );
    let w = WorkloadGen::new(WorkloadClass::Light, esg::model::standard_app_ids(), 2).generate(40);
    let mut s = esg::core::EsgScheduler::new();
    let r = run_simulation(&env, SimConfig::default(), &mut s, &w, "nogpushare");
    assert_eq!(r.total_completed(), 40);
}

#[test]
fn burst_arrival_pattern_drains() {
    // All invocations arrive in one burst: queues must drain through
    // batching without deadlock.
    let arrivals: Vec<esg::workload::Arrival> = (0..80)
        .map(|i| esg::workload::Arrival {
            at_ms: 1.0 + (i % 7) as f64,
            app: AppId(i % 4),
        })
        .collect();
    let w = Workload::from_arrivals(arrivals);
    // vCPUs up to 8: the CPU side of a batched task scales with the batch,
    // so large batches only fit time budgets with enough CPU parallelism.
    let env = SimEnv::with_grid(
        SloClass::Relaxed,
        ConfigGrid::new(vec![1, 2, 4, 8], vec![1, 2, 4, 8], vec![1, 2]),
    );
    let mut s = esg::core::EsgScheduler::new();
    let r = run_simulation(&env, SimConfig::default(), &mut s, &w, "burst");
    assert_eq!(r.total_completed(), 80);
    // The burst is admitted immediately (container init does not hold
    // compute resources), so queues stay short; the contention shows up
    // as exec-phase waiting on node capacity instead.
    assert!(r.phase_queue_wait_ms.max().unwrap_or(0.0) < 1000.0);
    assert!(r.phase_exec_queue_ms.max().unwrap_or(0.0) > 0.0);
}

#[test]
fn single_invocation_runs_alone() {
    let env = SimEnv::standard(SloClass::Relaxed);
    let w = Workload::from_arrivals(vec![esg::workload::Arrival {
        at_ms: 5.0,
        app: AppId(3),
    }]);
    let mut s = esg::core::EsgScheduler::new();
    let r = run_simulation(&env, SimConfig::default(), &mut s, &w, "single");
    assert_eq!(r.total_completed(), 1);
    let m = &r.apps[3];
    // Alone on a warm cluster, the 5-stage pipeline meets a relaxed SLO.
    assert_eq!(
        m.slo_hits, 1,
        "latency {:?} vs slo {}",
        m.latencies_ms, m.slo_ms
    );
}

#[test]
fn truly_heterogeneous_cluster_completes_and_respects_capacities() {
    // Mixed node classes (Appendix A): two big, two medium, two small.
    use esg::model::{ClusterSpec, NodeClass};
    let spec = ClusterSpec::new("robustness-mixed")
        .with(NodeClass::custom(Resources::new(16, 7)), 2)
        .with(NodeClass::custom(Resources::new(8, 4)), 2)
        .with(NodeClass::custom(Resources::new(4, 2)), 2);
    let env = SimEnv::with_grid(
        SloClass::Relaxed,
        ConfigGrid::new(vec![1, 2], vec![1, 2, 4], vec![1, 2]),
    );
    let w = WorkloadGen::new(WorkloadClass::Light, esg::model::standard_app_ids(), 17).generate(60);
    let mut s = esg::core::EsgScheduler::new();
    let cfg = SimConfig {
        cluster: Some(spec),
        ..SimConfig::default()
    };
    let r = run_simulation(&env, cfg, &mut s, &w, "hetero-mixed");
    assert_eq!(r.total_completed(), 60);
    assert!(r.vgpu_utilisation > 0.0 && r.vgpu_utilisation <= 1.0);
    // No node's peak attachment may exceed its own capacity.
    assert_eq!(r.nodes.len(), 6);
    for n in &r.nodes {
        assert!(
            n.total.contains(n.peak_used),
            "node class {} exceeded capacity: peak {} total {}",
            n.class,
            n.peak_used,
            n.total
        );
    }
}

#[test]
fn mixed_speed_cluster_under_every_traffic_shape() {
    // The full hetero surface at once: classed nodes (speed, link, price
    // scale), each traffic shape, and a mid-run drain+join — everything
    // must complete and respect capacity.
    use esg::model::{ChurnPlan, ClusterSpec, NodeClass, TrafficShape};
    let env = SimEnv::with_grid(
        SloClass::Relaxed,
        ConfigGrid::new(vec![1, 2], vec![1, 2, 4], vec![1, 2]),
    );
    for shape in TrafficShape::all() {
        let w = esg::workload::shaped_workload(
            WorkloadClass::Light,
            shape,
            &esg::model::standard_app_ids(),
            23,
            8_000.0,
        );
        let mut s = esg::core::EsgScheduler::new();
        let cfg = SimConfig {
            cluster: Some(ClusterSpec::mixed_mig()),
            churn: ChurnPlan::rolling_replace(500.0, 400.0, esg::model::NodeId(1), NodeClass::t4()),
            max_sim_ms: 120_000.0,
            ..SimConfig::default()
        };
        let r = run_simulation(&env, cfg, &mut s, &w, "hetero-shape");
        assert_eq!(
            r.total_completed(),
            w.len() as u64,
            "{shape}: {} of {} completed",
            r.total_completed(),
            w.len()
        );
        for n in &r.nodes {
            assert!(n.total.contains(n.peak_used), "{shape}: capacity exceeded");
        }
    }
}
