//! Data-plane vs scalar-transfer equivalence: with the contended GPU
//! data plane enabled at effectively infinite bandwidth
//! (`bandwidth_scale = 1e12`), every flow's fair share exceeds its
//! demand, so progress is never throttled, nothing queues for staging,
//! and no finish is ever re-planned — the run must be dispatch-trace
//! **bit-identical** to the classic scalar transfer model across the
//! hetero grid (cluster specs × traffic shapes × heap/wheel event
//! queues × seeds).
//!
//! Only the dispatch trace and the completion/SLO counters are
//! compared, not the full `ExperimentResult` debug dump: the data
//! plane books transfer elapsed through the µs-quantized event clock,
//! so `phase_init_ms` accounting can differ in the last few ulps while
//! every scheduling decision (the thing the plane must not perturb at
//! infinite bandwidth) stays identical.
//!
//! The companion integration tests pin the *contended* regime: finite
//! bandwidth moves real bytes, queued transfers are delayed but never
//! dropped, both event-queue backends agree bit-for-bit under
//! contention, and a starved plane genuinely changes the outcome
//! (proving the equivalence above is not vacuous).

mod support;

use esg::prelude::*;
use support::{fnv64, Traced};

/// Simulated arrival window per cell, ms (test-sized).
const RUN_MS: f64 = 2_000.0;

/// Contention-free data plane: the equivalence configuration.
fn infinite_plane() -> DataPlaneConfig {
    DataPlaneConfig {
        bandwidth_scale: 1e12,
        staging_scale: 1e12,
        ..DataPlaneConfig::default()
    }
}

/// One run: ESG on the given cluster/shape/backend, with or without
/// the data plane. Returns the dispatch trace plus the counters the
/// equivalence compares.
fn run_cell(
    seed: u64,
    spec: &ClusterSpec,
    churn: &ChurnPlan,
    shape: TrafficShape,
    queue: EventQueueKind,
    plane: Option<DataPlaneConfig>,
) -> (String, u64, u64, TransferSummary) {
    let env = SimEnv::standard(SloClass::Moderate);
    let workload = shaped_workload(
        WorkloadClass::Light,
        shape,
        &esg::model::standard_app_ids(),
        seed,
        RUN_MS,
    );
    let cfg = SimConfig {
        cluster: Some(spec.clone()),
        churn: churn.clone(),
        warmup_exclude_ms: RUN_MS * 0.25,
        seed,
        event_queue: queue,
        data_plane: plane,
        ..SimConfig::default()
    };
    let mut sched = Traced::new(Box::new(EsgScheduler::new()));
    let r = run_simulation(&env, cfg, &mut sched, &workload, "dataplane-eq");
    let slo_hits: u64 = r.apps.iter().map(|a| a.slo_hits).sum();
    (sched.trace(), r.total_completed(), slo_hits, r.transfers)
}

const SHAPES: [TrafficShape; 3] = [
    TrafficShape::Steady,
    TrafficShape::Bursty,
    TrafficShape::Diurnal,
];

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    /// Infinite-bandwidth data plane ≡ scalar model, across the hetero
    /// grid: identical dispatch traces (every dispatch and churn
    /// notification the scheduler saw, in order), identical completion
    /// and SLO-hit counts, zero replans and zero staging queueing on
    /// the plane side.
    #[test]
    fn infinite_bandwidth_plane_matches_scalar(
        seed in 0u64..1_000,
        spec_idx in 0usize..3,
        shape_idx in 0usize..3,
        queue_idx in 0usize..2,
    ) {
        let specs = [
            ClusterSpec::paper(),
            ClusterSpec::mixed_mig(),
            ClusterSpec::skewed(),
        ];
        let spec = specs[spec_idx].clone();
        let shape = SHAPES[shape_idx];
        let churn = if spec_idx == 2 {
            ChurnPlan::rolling_replace(RUN_MS / 3.0, 2_000.0, NodeId(0), NodeClass::t4())
        } else {
            ChurnPlan::none()
        };
        let queue = if queue_idx == 1 { EventQueueKind::Wheel } else { EventQueueKind::Heap };

        let (scalar_trace, scalar_done, scalar_hits, _) =
            run_cell(seed, &spec, &churn, shape, queue, None);
        let (plane_trace, plane_done, plane_hits, transfers) =
            run_cell(seed, &spec, &churn, shape, queue, Some(infinite_plane()));

        proptest::prop_assert_eq!(
            fnv64(&scalar_trace),
            fnv64(&plane_trace),
            "dispatch trace diverged (spec={}, shape={:?}, queue={:?}, seed={})",
            spec_idx, shape, queue, seed
        );
        proptest::prop_assert_eq!(scalar_done, plane_done);
        proptest::prop_assert_eq!(scalar_hits, plane_hits);
        // Infinite fair share: nothing contends, nothing waits.
        proptest::prop_assert_eq!(transfers.replans, 0);
        proptest::prop_assert_eq!(transfers.queued, 0);
        proptest::prop_assert_eq!(transfers.started, transfers.completed);
    }
}

/// A cluster whose pools are narrow enough that the standard workload
/// contends: a few MB/ms of PCIe against multi-MB tensor hand-offs.
fn slow_cluster() -> ClusterSpec {
    ClusterSpec::new("slow-fabric").with(
        NodeClass::t4()
            .with_bandwidth(0.05, 0.05, 0.5)
            .with_staging_mb(64.0),
        6,
    )
}

fn contended_run(
    queue: EventQueueKind,
    plane: Option<DataPlaneConfig>,
) -> (String, u64, TransferSummary) {
    let (trace, done, _, transfers) = run_cell(
        7,
        &slow_cluster(),
        &ChurnPlan::none(),
        TrafficShape::Bursty,
        queue,
        plane,
    );
    (trace, done, transfers)
}

#[test]
fn contended_plane_moves_bytes_and_never_drops() {
    let (_, done, t) = contended_run(EventQueueKind::Heap, Some(DataPlaneConfig::default()));
    assert!(done > 0, "workload must complete under contention");
    assert!(t.started > 0, "transfer-bound cluster must start flows");
    assert!(t.total_mb > 0.0);
    assert_eq!(
        t.started, t.completed,
        "every started flow drains by end of run — delayed, never dropped"
    );
}

#[test]
fn queued_transfers_are_delayed_never_dropped() {
    // Starve the staging buffers so admissions queue.
    let plane = DataPlaneConfig {
        staging_scale: 1e-3,
        ..DataPlaneConfig::default()
    };
    let (_, done, t) = contended_run(EventQueueKind::Heap, Some(plane));
    assert!(done > 0);
    assert!(t.queued > 0, "tiny staging buffers must force queueing");
    assert_eq!(
        t.started, t.completed,
        "queued flows activate FIFO and still complete"
    );
}

#[test]
fn heap_and_wheel_agree_under_contention() {
    let plane = DataPlaneConfig::default();
    let (heap_trace, heap_done, heap_t) = contended_run(EventQueueKind::Heap, Some(plane));
    let (wheel_trace, wheel_done, wheel_t) = contended_run(EventQueueKind::Wheel, Some(plane));
    assert_eq!(fnv64(&heap_trace), fnv64(&wheel_trace));
    assert_eq!(heap_done, wheel_done);
    assert_eq!(heap_t, wheel_t);
}

#[test]
fn starved_bandwidth_changes_the_outcome() {
    // The equivalence above must not be vacuous: squeeze the pools and
    // the plane genuinely perturbs scheduling.
    let plane = DataPlaneConfig {
        bandwidth_scale: 1e-3,
        ..DataPlaneConfig::default()
    };
    let (scalar_trace, _, _) = contended_run(EventQueueKind::Heap, None);
    let (plane_trace, _, t) = contended_run(EventQueueKind::Heap, Some(plane));
    assert!(
        t.replans > 0 || t.queued > 0,
        "a starved plane must contend"
    );
    assert_ne!(
        fnv64(&scalar_trace),
        fnv64(&plane_trace),
        "a starved data plane must change dispatch behaviour"
    );
}
