//! The streaming replay engine's equivalence battery.
//!
//! The million-invocation replay path (PR 7) rests on three pinned
//! invariants, each checked here at test scale:
//!
//! 1. **Heap == wheel** — the hierarchical timer wheel behind
//!    [`EventQueueKind::Wheel`] must be *dispatch-trace identical* (FNV
//!    digests over the shared `EventLog` tap) and canonical-result
//!    identical to the default binary heap, across the heterogeneous
//!    cluster grid and every traffic shape.
//! 2. **Streamed == materialised** — pulling arrivals lazily from an
//!    [`ArrivalStream`] as simulated time advances must replay a
//!    pre-materialised `Workload` bit for bit, for every
//!    `WorkloadClass` and every `TrafficShape` (including the
//!    Azure-like replay). The trick that makes the comparison exact:
//!    cap both runs at the same `max_sim_ms` horizon and materialise
//!    *past* the horizon, so both paths always hold a pending arrival
//!    and stop at the first event beyond the cap.
//! 3. **Constant-memory generation** — the streamed run's arena and
//!    event-queue high-water marks ([`MemoryFootprint`]) scale with
//!    *live* work, not with the number of arrivals replayed.

mod support;

use esg::prelude::*;
use support::Traced;

const SHAPES: [TrafficShape; 4] = [
    TrafficShape::Steady,
    TrafficShape::Bursty,
    TrafficShape::Diurnal,
    TrafficShape::AzureReplay,
];

const CLASSES: [WorkloadClass; 3] = [
    WorkloadClass::Heavy,
    WorkloadClass::Normal,
    WorkloadClass::Light,
];

fn specs() -> [ClusterSpec; 3] {
    [
        ClusterSpec::paper(),
        ClusterSpec::mixed_mig(),
        ClusterSpec::skewed(),
    ]
}

fn canonical(mut r: ExperimentResult) -> String {
    r.wall_overhead_ms.clear();
    format!("{r:?}")
}

/// Runs ESG over a materialised shaped workload on `spec` with the given
/// event-queue backend, returning the canonical result and trace digest.
fn run_kind(
    spec: &ClusterSpec,
    shape: TrafficShape,
    seed: u64,
    kind: EventQueueKind,
) -> (String, u64) {
    let env = SimEnv::standard(SloClass::Moderate);
    let workload = shaped_workload(
        WorkloadClass::Light,
        shape,
        &esg::model::standard_app_ids(),
        seed,
        2_000.0,
    );
    let cfg = SimConfig {
        cluster: Some(spec.clone()),
        seed,
        event_queue: kind,
        ..SimConfig::default()
    };
    let mut traced = Traced::new(Box::new(EsgScheduler::new()));
    let r = run_simulation(&env, cfg, &mut traced, &workload, "replay-equivalence");
    (canonical(r), traced.trace_digest())
}

/// Runs ESG capped at `horizon_ms`, either streaming `class`/`shape`
/// arrivals lazily or over the same stream materialised past the
/// horizon, returning the canonical result and trace digest.
fn run_horizon(
    class: WorkloadClass,
    shape: TrafficShape,
    seed: u64,
    kind: EventQueueKind,
    horizon_ms: f64,
    streamed: bool,
) -> (String, u64) {
    let env = SimEnv::standard(SloClass::Moderate);
    let apps = esg::model::standard_app_ids();
    let cfg = SimConfig {
        seed,
        event_queue: kind,
        max_sim_ms: horizon_ms,
        ..SimConfig::default()
    };
    let mut traced = Traced::new(Box::new(EsgScheduler::new()));
    let r = if streamed {
        run_streamed(
            &env,
            cfg,
            &mut traced,
            shaped_stream(class, shape, &apps, seed),
            "replay",
        )
    } else {
        // Materialise one minute past the horizon so the materialised
        // run, like the streamed one, never drains its arrival source.
        let workload = shaped_stream(class, shape, &apps, seed).until_ms(horizon_ms + 60_000.0);
        run_simulation(&env, cfg, &mut traced, &workload, "replay")
    };
    (canonical(r), traced.trace_digest())
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// Invariant 1: the timer wheel replays the binary heap bit for bit
    /// across the hetero grid and every traffic shape.
    #[test]
    fn wheel_replays_the_heap_across_the_hetero_grid(
        seed in 0u64..1_000,
        spec_idx in 0usize..3,
        shape_idx in 0usize..4,
    ) {
        let spec = specs()[spec_idx].clone();
        let shape = SHAPES[shape_idx];
        let (res_h, trace_h) = run_kind(&spec, shape, seed, EventQueueKind::Heap);
        let (res_w, trace_w) = run_kind(&spec, shape, seed, EventQueueKind::Wheel);
        proptest::prop_assert_eq!(trace_h, trace_w, "dispatch traces diverged");
        proptest::prop_assert_eq!(res_h, res_w);
    }

    /// Invariant 2: a streamed run is bit-identical to the same stream
    /// materialised, for every workload class and traffic shape, on
    /// both event-queue backends.
    #[test]
    fn streamed_replay_matches_materialised(
        seed in 0u64..1_000,
        class_idx in 0usize..3,
        shape_idx in 0usize..4,
        wheel in proptest::prelude::any::<bool>(),
    ) {
        let class = CLASSES[class_idx];
        let shape = SHAPES[shape_idx];
        let kind = if wheel { EventQueueKind::Wheel } else { EventQueueKind::Heap };
        let (res_m, trace_m) = run_horizon(class, shape, seed, kind, 2_000.0, false);
        let (res_s, trace_s) = run_horizon(class, shape, seed, kind, 2_000.0, true);
        proptest::prop_assert_eq!(trace_m, trace_s, "dispatch traces diverged");
        proptest::prop_assert_eq!(res_m, res_s);
    }
}

/// All four backend × source combinations agree on one fixed scenario
/// (a cheap smoke check that fails with a readable diff before the
/// proptests shrink anything).
#[test]
fn four_way_backend_source_agreement() {
    let combos = [
        (EventQueueKind::Heap, false),
        (EventQueueKind::Heap, true),
        (EventQueueKind::Wheel, false),
        (EventQueueKind::Wheel, true),
    ];
    let runs: Vec<(String, u64)> = combos
        .iter()
        .map(|&(kind, streamed)| {
            run_horizon(
                WorkloadClass::Normal,
                TrafficShape::AzureReplay,
                42,
                kind,
                2_500.0,
                streamed,
            )
        })
        .collect();
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(runs[0].1, run.1, "trace diverged for combo {combos:?}[{i}]");
        assert_eq!(
            runs[0].0, run.0,
            "result diverged for combo {combos:?}[{i}]"
        );
    }
}

/// Invariant 3: the streamed replay's memory proxy plateaus at the
/// steady-state backlog — doubling the replay length must not grow the
/// arena or event-queue high-water marks, and they stay far below the
/// number of arrivals replayed.
#[test]
fn streamed_replay_memory_scales_with_live_work_not_replay_length() {
    let footprint = |max_sim_ms: f64| {
        let env = SimEnv::standard(SloClass::Moderate);
        let cfg = SimConfig {
            seed: 7,
            event_queue: EventQueueKind::Wheel,
            max_sim_ms,
            ..SimConfig::default()
        };
        let stream =
            ArrivalStream::of_class(WorkloadClass::Heavy, esg::model::standard_app_ids(), 7);
        let mut sched = MinScheduler;
        Simulation::from_stream(&env, cfg, &mut sched, stream).run_with_footprint()
    };
    let (r_short, fp_short) = footprint(60_000.0);
    let (r_long, fp_long) = footprint(120_000.0);
    assert!(r_short.arrivals > 3_000, "expected a few thousand arrivals");
    assert!(
        r_long.arrivals > r_short.arrivals * 3 / 2,
        "the long replay must actually process more arrivals"
    );
    // Twice the replay, same high-water marks: memory tracks live work.
    // (A sliver of slack tolerates a late burst peaking past the short
    // window; today the peaks are bit-equal.)
    let slack = |n: usize| n + n / 10;
    assert!(
        fp_long.invocation_slots <= slack(fp_short.invocation_slots),
        "invocation arena grew with replay length: {} -> {}",
        fp_short.invocation_slots,
        fp_long.invocation_slots
    );
    assert!(
        fp_long.task_slots <= slack(fp_short.task_slots),
        "task arena grew with replay length: {} -> {}",
        fp_short.task_slots,
        fp_long.task_slots
    );
    assert!(
        fp_long.peak_pending_events <= slack(fp_short.peak_pending_events),
        "event queue grew with replay length: {} -> {}",
        fp_short.peak_pending_events,
        fp_long.peak_pending_events
    );
    // And the plateau itself is far below the replay length.
    let arrivals = r_long.arrivals as usize;
    assert!(fp_long.invocation_slots < arrivals / 4);
    assert!(fp_long.peak_pending_events < arrivals / 4);
    assert!(fp_long.peak_live_invocations <= fp_long.invocation_slots);
    assert!(fp_long.peak_live_tasks <= fp_long.task_slots);
}
