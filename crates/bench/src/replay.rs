//! The replay scenario axis: record one reference run's event-sourced
//! trace, then re-drive the recorded arrival stream across schedulers ×
//! shard counts and compare dispatch-trace digests.
//!
//! Built on `esg-sim`'s trace subsystem: [`record_reference`] runs a
//! `(scheduler, scenario)` cell with
//! [`SimConfig::record_trace`](esg_sim::SimConfig) set and loads the
//! written document back as a [`TraceReplay`]; [`replay_matrix`] fans
//! the recorded load out over a scheduler × shard grid, tapping each
//! replay through [`Traced`](esg_sim::Traced) so every row carries the
//! canonical dispatch-trace digest. A replay under the recorded
//! scheduler at the recorded shard count must reproduce the recorded
//! digest bit for bit (`matches_recording`) — the `replay` bench target
//! asserts it, and `tests/trace_roundtrip.rs` pins it per commit.

use crate::{standard_config, workload_for, SchedKind};
use esg_model::Scenario;
use esg_sim::{ExperimentResult, ShardStats, SimEnv, TraceError, TraceReplay, Traced};
use serde_json::{json, Value};
use std::path::Path;

/// One replayed cell of the scheduler × shard grid.
pub struct ReplayRun {
    /// Display name of the replayed scheduler.
    pub scheduler: &'static str,
    /// Controller shard count the replay ran under.
    pub shards: usize,
    /// FNV digest of the replay's dispatch/churn/shed trace.
    pub digest: u64,
    /// Whether `digest` equals the recorded run's digest.
    pub matches_recording: bool,
    /// Shard-commit counters tapped from the replay's event stream
    /// (all zero on single-shard replays).
    pub shard_stats: ShardStats,
    /// The replay's full metrics.
    pub result: ExperimentResult,
}

/// Records the reference run: `kind` on `scenario`'s workload
/// (`run_seconds` of arrivals at the shared [`SEED`](crate::SEED)) with
/// trace recording to `path`, then loads the written trace back as a
/// [`TraceReplay`]. Returns the recorded run's metrics alongside it.
pub fn record_reference(
    kind: SchedKind,
    scenario: Scenario,
    run_seconds: f64,
    path: &Path,
) -> Result<(ExperimentResult, TraceReplay), TraceError> {
    let mut cfg = standard_config();
    cfg.record_trace = Some(path.to_path_buf());
    let env = SimEnv::standard(scenario.slo);
    let workload = workload_for(scenario, crate::SEED, run_seconds);
    let mut sched = kind.build();
    let result = esg_sim::run_simulation(
        &env,
        cfg,
        sched.as_mut(),
        &workload,
        &format!("record/{scenario}"),
    );
    let replay = TraceReplay::load(path)?;
    Ok((result, replay))
}

/// Re-drives the recorded load across `kinds` × `shard_counts`, one
/// [`ReplayRun`] per cell in `(kind-major, shard-minor)` order. Every
/// replay is tapped through [`Traced`], so rows carry the dispatch
/// digest and the shard-commit counters of their own run.
pub fn replay_matrix(
    replay: &TraceReplay,
    kinds: &[SchedKind],
    shard_counts: &[usize],
) -> Vec<ReplayRun> {
    let recorded = replay.trace().dispatch_digest();
    let mut rows = Vec::with_capacity(kinds.len() * shard_counts.len());
    for &kind in kinds {
        for &n in shard_counts {
            let mut traced = Traced::new(kind.build());
            let result = replay
                .clone()
                .shards(n)
                .run(&mut traced, &format!("replay/{}/s{n}", kind.name()));
            let digest = traced.trace_digest();
            rows.push(ReplayRun {
                scheduler: kind.name(),
                shards: n,
                digest,
                matches_recording: digest == recorded,
                shard_stats: traced.log.shard_stats(),
                result,
            });
        }
    }
    rows
}

/// Assembles the `BENCH_replay.json` document from a recorded reference
/// and its replay grid.
pub fn replay_doc(
    scenario: Scenario,
    replay: &TraceReplay,
    recorded: &ExperimentResult,
    rows: &[ReplayRun],
    smoke: bool,
) -> Value {
    let trace = replay.trace();
    let runs: Vec<Value> = rows
        .iter()
        .map(|r| {
            json!({
                "scheduler": (r.scheduler),
                "shards": (r.shards),
                "digest": (format!("{:016x}", r.digest)),
                "matches_recording": (r.matches_recording),
                "avg_hit_rate": (r.result.avg_hit_rate()),
                "shed_rate": (r.result.shed_rate()),
                "cost_per_invocation_cents": (r.result.cost_per_invocation_cents()),
                "dispatches": (r.result.dispatches),
                "shed_jobs": (r.result.shed_jobs),
                "commits": (r.shard_stats.commits),
                "conflicts": (r.shard_stats.conflicts),
                "retries": (r.shard_stats.retries),
            })
        })
        .collect();
    json!({
        "suite": "replay",
        "smoke": smoke,
        "scenario": (scenario.to_string()),
        "recorded": {
            "scheduler": (trace.scheduler.clone()),
            "seed": (trace.config.seed),
            "arrivals": (trace.arrivals.len()),
            "events": (trace.events.len()),
            "digest": (format!("{:016x}", trace.dispatch_digest())),
            "avg_hit_rate": (recorded.avg_hit_rate()),
        },
        "runs": (Value::Array(runs)),
    })
}

/// Renders a `BENCH_replay.json` document into the "Trace replay"
/// Markdown table: the recorded reference in the preamble, one row per
/// replayed `(scheduler, shards)` cell with its digest and headline
/// metrics.
pub fn render_replay_markdown(doc: &Value) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let scenario = doc.get("scenario").and_then(Value::as_str).unwrap_or("?");
    let rec = doc.get("recorded");
    let rec_str = |k: &str| {
        rec.and_then(|r| r.get(k))
            .and_then(Value::as_str)
            .unwrap_or("?")
    };
    let rec_u64 = |k: &str| {
        rec.and_then(|r| r.get(k))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    writeln!(
        out,
        "Suite `replay` — a recorded `{scenario}` run under `{}` (seed {}, \
{} arrivals, {} control-plane events, dispatch digest `{}`) re-driven from \
its event-sourced trace across schedulers × shard counts (regenerate: \
`cargo bench --bench replay`). *= recorded* marks a replay whose \
dispatch-trace digest reproduces the recording bit for bit.",
        rec_str("scheduler"),
        rec_u64("seed"),
        rec_u64("arrivals"),
        rec_u64("events"),
        rec_str("digest"),
    )
    .expect("writing to String cannot fail");
    out.push_str(
        "\n| scheduler | shards | digest | = recorded | SLO hit % | shed % | \
cost/inv (¢) | dispatches | conflicts |\n\
|---|---:|---|:---:|---:|---:|---:|---:|---:|\n",
    );
    for r in doc
        .get("runs")
        .and_then(Value::as_array)
        .unwrap_or_default()
    {
        let s = |k: &str| r.get(k).and_then(Value::as_str).unwrap_or("?");
        let f = |k: &str| r.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        let u = |k: &str| r.get(k).and_then(Value::as_u64).unwrap_or(0);
        let matches = r
            .get("matches_recording")
            .and_then(|v| match v {
                Value::Bool(b) => Some(*b),
                _ => None,
            })
            .unwrap_or(false);
        writeln!(
            out,
            "| {} | {} | `{}` | {} | {:.1} | {:.1} | {:.3} | {} | {} |",
            s("scheduler"),
            u("shards"),
            s("digest"),
            if matches { "yes" } else { "no" },
            100.0 * f("avg_hit_rate"),
            100.0 * f("shed_rate"),
            f("cost_per_invocation_cents"),
            u("dispatches"),
            u("conflicts"),
        )
        .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::Scenario;

    #[test]
    fn record_then_replay_same_scheduler_matches_digest() {
        let path =
            std::env::temp_dir().join(format!("esg-bench-replay-unit-{}.json", std::process::id()));
        let (recorded, replay) =
            record_reference(SchedKind::Infless, Scenario::MODERATE_NORMAL, 8.0, &path)
                .expect("reference records");
        let rows = replay_matrix(&replay, &[SchedKind::Infless, SchedKind::Orion], &[1]);
        assert_eq!(rows.len(), 2);
        let same = &rows[0];
        assert!(same.matches_recording, "same scheduler must reproduce");
        assert_eq!(same.result.arrivals, recorded.arrivals);
        let other = &rows[1];
        assert_eq!(
            other.result.arrivals, recorded.arrivals,
            "a different scheduler sees the same offered load"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn markdown_renders_recorded_preamble_and_rows() {
        let doc = json!({
            "suite": "replay", "smoke": false, "scenario": "strict-light",
            "recorded": {"scheduler": "ESG", "seed": 42, "arrivals": 240,
                         "events": 900, "digest": "00deadbeef00cafe",
                         "avg_hit_rate": 0.9},
            "runs": [
                {"scheduler": "ESG", "shards": 1, "digest": "00deadbeef00cafe",
                 "matches_recording": true, "avg_hit_rate": 0.9,
                 "shed_rate": 0.0, "cost_per_invocation_cents": 0.4,
                 "dispatches": 200, "shed_jobs": 0, "commits": 0,
                 "conflicts": 0, "retries": 0},
                {"scheduler": "Orion", "shards": 2, "digest": "0123456789abcdef",
                 "matches_recording": false, "avg_hit_rate": 0.7,
                 "shed_rate": 0.1, "cost_per_invocation_cents": 0.6,
                 "dispatches": 180, "shed_jobs": 5, "commits": 40,
                 "conflicts": 3, "retries": 3}
            ]
        });
        let md = render_replay_markdown(&doc);
        assert!(md.contains("dispatch digest `00deadbeef00cafe`"), "{md}");
        assert!(
            md.contains("| ESG | 1 | `00deadbeef00cafe` | yes | 90.0 | 0.0 | 0.400 | 200 | 0 |"),
            "{md}"
        );
        assert!(
            md.contains("| Orion | 2 | `0123456789abcdef` | no | 70.0 | 10.0 | 0.600 | 180 | 3 |"),
            "{md}"
        );
    }
}
