//! Artifact emission: CSV and JSON files under `bench_results/`.
//!
//! Emission is best-effort everywhere — the printed output is the primary
//! artifact of a bench target; files are for plotting and regression
//! diffing.

use serde_json::Value;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The artifact directory: `$ESG_RESULTS_DIR` when set, else the
/// workspace-level `bench_results/` (bench binaries run with CWD = the
/// package dir, so the default is anchored at the workspace root).
pub fn results_dir() -> PathBuf {
    let default_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_results");
    PathBuf::from(std::env::var("ESG_RESULTS_DIR").unwrap_or_else(|_| default_dir.into()))
}

/// Writes rows as `<name>.csv` under the results directory.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    write_csv_to(&results_dir(), name, header, rows);
}

fn write_csv_to(dir: &Path, name: &str, header: &str, rows: &[String]) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{header}");
        for r in rows {
            let _ = writeln!(f, "{r}");
        }
        eprintln!("[csv] wrote {}", path.display());
    }
}

/// Writes `value` (pretty-printed) as `<name>.json` under the results
/// directory, returning the path on success.
pub fn write_json(name: &str, value: &Value) -> Option<PathBuf> {
    write_json_to(&results_dir(), name, value)
}

fn write_json_to(dir: &Path, name: &str, value: &Value) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    let mut payload = serde_json::to_string_pretty(value);
    payload.push('\n');
    std::fs::write(&path, payload).ok()?;
    eprintln!("[json] wrote {}", path.display());
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn json_and_csv_round_trip() {
        // The directory is passed explicitly — tests never touch the
        // process-global ESG_RESULTS_DIR (env mutation races with
        // concurrently running tests).
        let dir = std::env::temp_dir().join("esg_emit_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_csv_to(&dir, "emit_test", "a,b", &["1,2".into()]);
        let p = write_json_to(&dir, "emit_test", &json!({"k": [1, 2]})).expect("writable");
        let content = std::fs::read_to_string(p).expect("written");
        assert!(content.contains("\"k\""));
        let csv = std::fs::read_to_string(dir.join("emit_test.csv")).expect("csv");
        assert_eq!(csv, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn emission_into_unwritable_dir_is_a_no_op() {
        write_csv_to(Path::new("/proc/esg_no_such_dir"), "x", "a", &[]);
        assert!(write_json_to(Path::new("/proc/esg_no_such_dir"), "x", &json!(null)).is_none());
    }
}
