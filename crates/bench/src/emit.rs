//! Artifact emission: CSV/JSON files under `bench_results/` and the
//! self-documenting `EXPERIMENTS.md` pipeline.
//!
//! Emission is best-effort everywhere — the printed output is the primary
//! artifact of a bench target; files are for plotting and regression
//! diffing. [`render_bench_markdown`] turns the exact document written as
//! `BENCH_<suite>.json` into paper-style Markdown tables, and
//! [`update_experiments_md`] splices them into `EXPERIMENTS.md` between
//! `<!-- BENCH:<suite>:begin/end -->` markers, so reported numbers always
//! regenerate from artifacts instead of rotting by hand.

use serde_json::Value;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The artifact directory: `$ESG_RESULTS_DIR` when set, else the
/// workspace-level `bench_results/` (bench binaries run with CWD = the
/// package dir, so the default is anchored at the workspace root).
pub fn results_dir() -> PathBuf {
    let default_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_results");
    PathBuf::from(std::env::var("ESG_RESULTS_DIR").unwrap_or_else(|_| default_dir.into()))
}

/// Writes rows as `<name>.csv` under the results directory.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    write_csv_to(&results_dir(), name, header, rows);
}

fn write_csv_to(dir: &Path, name: &str, header: &str, rows: &[String]) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{header}");
        for r in rows {
            let _ = writeln!(f, "{r}");
        }
        eprintln!("[csv] wrote {}", path.display());
    }
}

/// Writes `value` (pretty-printed) as `<name>.json` under the results
/// directory, returning the path on success.
pub fn write_json(name: &str, value: &Value) -> Option<PathBuf> {
    write_json_to(&results_dir(), name, value)
}

fn write_json_to(dir: &Path, name: &str, value: &Value) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    let mut payload = serde_json::to_string_pretty(value);
    payload.push('\n');
    std::fs::write(&path, payload).ok()?;
    eprintln!("[json] wrote {}", path.display());
    Some(path)
}

/// Renders a `BENCH_<suite>.json` document (the value produced by
/// `Sweep::to_json` and written by `Sweep::write_artifacts`) into
/// paper-style Markdown tables: one table per `(scenario, cluster,
/// traffic)` group, schedulers as rows, headline metrics as columns.
pub fn render_bench_markdown(doc: &Value) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let suite = doc.get("suite").and_then(Value::as_str).unwrap_or("?");
    let run_seconds = doc
        .get("run_seconds")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let runs = doc
        .get("runs")
        .and_then(Value::as_array)
        .unwrap_or_default();
    writeln!(
        out,
        "Suite `{suite}` — {} runs × {run_seconds:.0} s of arrivals \
(regenerate: `cargo bench --bench {suite}`).",
        runs.len()
    )
    .expect("writing to String cannot fail");

    // Group runs by (scenario, cluster, traffic, popularity), preserving
    // cell order. Keys stay a tuple of fields — labels are user-settable,
    // so joining them on a delimiter would corrupt grouping for names
    // containing it. The popularity key is absent from documents
    // predating the skew axis (and from uniform cells); it defaults to
    // "uniform" so those group exactly as before.
    fn key_of(r: &Value) -> (&str, &str, &str, &str) {
        let s = |k: &str| r.get(k).and_then(Value::as_str).unwrap_or("?");
        (
            s("scenario"),
            s("cluster"),
            s("traffic"),
            r.get("popularity")
                .and_then(Value::as_str)
                .unwrap_or("uniform"),
        )
    }
    let mut group_order: Vec<(&str, &str, &str, &str)> = Vec::new();
    for r in runs {
        let k = key_of(r);
        if !group_order.contains(&k) {
            group_order.push(k);
        }
    }
    // Documents produced before the round-policy pipeline carry no
    // shed_rate key; rendering them must stay byte-identical (the CI
    // drift check regenerates EXPERIMENTS.md from committed artifacts).
    let with_shed = runs.iter().any(|r| r.get("shed_rate").is_some());
    // Likewise, transfer telemetry appears only in documents whose cells
    // ran with the contended GPU data plane.
    let with_transfers = runs.iter().any(|r| r.get("transfers_started").is_some());
    // ToR-pool telemetry exists only on server-topology clusters; a
    // locality sweep renders the column for every row of the document.
    let with_cross = runs
        .iter()
        .any(|r| r.get("transfer_cross_server_mb").is_some());
    // Popularity headers appear only in documents that swept the axis.
    let with_popularity = runs.iter().any(|r| r.get("popularity").is_some());
    for key in &group_order {
        let (scenario, cluster, traffic, popularity) = *key;
        let pop_clause = if with_popularity {
            format!(" · popularity `{popularity}`")
        } else {
            String::new()
        };
        writeln!(
            out,
            "\n**Scenario `{scenario}` · cluster `{cluster}` · traffic `{traffic}`{pop_clause}**\n"
        )
        .expect("writing to String cannot fail");
        if with_shed {
            out.push_str(
                "| scheduler | seed | SLO hit % | shed % | cost/inv (¢) | cold-start % | \
locality % | mean overhead (ms) | vGPU util % |",
            );
        } else {
            out.push_str(
                "| scheduler | seed | SLO hit % | cost/inv (¢) | cold-start % | \
locality % | mean overhead (ms) | vGPU util % |",
            );
        }
        if with_transfers {
            out.push_str(" transfers | queued | replans | moved (MB) |");
            if with_cross {
                out.push_str(" cross-server (MB) |");
            }
        }
        out.push('\n');
        out.push_str(if with_shed {
            "|---|---:|---:|---:|---:|---:|---:|---:|---:|"
        } else {
            "|---|---:|---:|---:|---:|---:|---:|---:|"
        });
        if with_transfers {
            out.push_str("---:|---:|---:|---:|");
            if with_cross {
                out.push_str("---:|");
            }
        }
        out.push('\n');
        for r in runs.iter().filter(|r| key_of(r) == *key) {
            let s = |k: &str| r.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
            let f = |k: &str| r.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            let u = |k: &str| r.get(k).and_then(Value::as_u64).unwrap_or(0);
            let seed = r.get("seed").and_then(Value::as_u64).unwrap_or(0);
            let shed = if with_shed {
                format!(" {:.1} |", 100.0 * f("shed_rate"))
            } else {
                String::new()
            };
            let transfers = if with_transfers {
                let mut cols = format!(
                    " {} | {} | {} | {:.0} |",
                    u("transfers_started"),
                    u("transfers_queued"),
                    u("transfer_replans"),
                    f("transfer_total_mb"),
                );
                if with_cross {
                    cols.push_str(&format!(" {:.0} |", f("transfer_cross_server_mb")));
                }
                cols
            } else {
                String::new()
            };
            writeln!(
                out,
                "| {} | {} | {:.1} |{} {:.3} | {:.1} | {:.1} | {:.2} | {:.1} |{}",
                s("scheduler"),
                seed,
                100.0 * f("avg_hit_rate"),
                shed,
                f("cost_per_invocation_cents"),
                100.0 * f("cold_start_rate"),
                100.0 * f("locality_rate"),
                f("mean_overhead_ms"),
                100.0 * f("vgpu_utilisation"),
                transfers,
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

/// Renders a `BENCH_overhead.json` document (written by `cargo bench
/// --bench overhead`) into the "Scheduling overhead" Markdown tables:
/// cold-search vs warm-cache-hit medians per (pipeline width, GSLO
/// tightness), plus the fresh-alloc vs reused-scratch A* comparison.
pub fn render_overhead_markdown(doc: &Value) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let samples = doc.get("samples").and_then(Value::as_u64).unwrap_or(0);
    let cases = doc
        .get("cases")
        .and_then(Value::as_array)
        .unwrap_or_default();
    writeln!(
        out,
        "Suite `overhead` — per-dispatch planning latency, {samples} samples per case \
(regenerate: `cargo bench --bench overhead`). *Cold* runs the full miss \
path (stage-table build + A\\* search); *warm* answers from the plan \
cache. Medians, wall clock."
    )
    .expect("writing to String cannot fail");

    let field = |c: &Value, k: &str| c.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let median_us = |c: &Value| c.get("median_ns").and_then(Value::as_f64).unwrap_or(0.0) / 1_000.0;
    let find = |kind: &str, width: u64, slo: &str| {
        cases.iter().find(|c| {
            field(c, "kind") == kind
                && c.get("width").and_then(Value::as_u64) == Some(width)
                && field(c, "slo") == slo
        })
    };

    // Main table: cold vs warm per (width, tightness), in case order.
    let mut seen: Vec<(u64, String)> = Vec::new();
    for c in cases {
        if field(c, "kind") != "cold" {
            continue;
        }
        if let Some(w) = c.get("width").and_then(Value::as_u64) {
            let key = (w, field(c, "slo"));
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
    }
    out.push_str(
        "\n| stages | GSLO tightness | cold search (µs) | warm hit (µs) | speedup (×) |\n\
|---:|---|---:|---:|---:|\n",
    );
    for (w, slo) in &seen {
        let (Some(cold), Some(warm)) = (find("cold", *w, slo), find("warm", *w, slo)) else {
            continue;
        };
        let (c_us, w_us) = (median_us(cold), median_us(warm));
        let speedup = if w_us > 0.0 { c_us / w_us } else { 0.0 };
        writeln!(
            out,
            "| {w} | {slo} | {c_us:.2} | {w_us:.3} | {speedup:.0} |"
        )
        .expect("writing to String cannot fail");
    }

    // Secondary table: the zero-alloc A* rework (fresh allocations per
    // call vs reused SearchScratch arena).
    let mut widths: Vec<u64> = cases
        .iter()
        .filter(|c| field(c, "kind") == "astar-alloc")
        .filter_map(|c| c.get("width").and_then(Value::as_u64))
        .collect();
    widths.dedup();
    if !widths.is_empty() {
        out.push_str(
            "\n| stages | fresh-alloc A\\* (µs) | reused-scratch A\\* (µs) | scratch gain (×) |\n\
|---:|---:|---:|---:|\n",
        );
        for w in widths {
            let (Some(alloc), Some(scratch)) = (
                find("astar-alloc", w, "medium"),
                find("astar-scratch", w, "medium"),
            ) else {
                continue;
            };
            let (a_us, s_us) = (median_us(alloc), median_us(scratch));
            let gain = if s_us > 0.0 { a_us / s_us } else { 0.0 };
            writeln!(out, "| {w} | {a_us:.2} | {s_us:.2} | {gain:.2} |")
                .expect("writing to String cannot fail");
        }
    }

    // Tertiary table: cluster visibility — per-decision snapshot rebuild
    // (the pre-round-API contract) vs the incremental touch-and-refresh
    // the platform now runs (zero allocations in steady state).
    let mut nodes: Vec<u64> = cases
        .iter()
        .filter(|c| field(c, "kind") == "view-snapshot")
        .filter_map(|c| c.get("width").and_then(Value::as_u64))
        .collect();
    nodes.dedup();
    if !nodes.is_empty() {
        out.push_str(
            "\n| nodes | snapshot rebuild (µs) | incremental refresh (µs) | removed cost (×) |\n\
|---:|---:|---:|---:|\n",
        );
        for n in nodes {
            let (Some(snap), Some(inc)) = (
                find("view-snapshot", n, "n/a"),
                find("view-incremental", n, "n/a"),
            ) else {
                continue;
            };
            let (s_us, i_us) = (median_us(snap), median_us(inc));
            let gain = if i_us > 0.0 { s_us / i_us } else { 0.0 };
            writeln!(out, "| {n} | {s_us:.2} | {i_us:.3} | {gain:.0} |")
                .expect("writing to String cannot fail");
        }
    }

    // Quaternary table: the round-driver ablation — the pre-policy
    // driver (no stack) vs the empty classic stack's fast path vs a
    // two-stage pass-through pipeline. Cases measure a batch of rounds
    // per iteration; medians are already per-batch, so only the ratios
    // matter (budget: empty stack ≤5% over the pre-policy driver).
    let mut round_qs: Vec<u64> = cases
        .iter()
        .filter(|c| field(c, "kind") == "round-classic")
        .filter_map(|c| c.get("width").and_then(Value::as_u64))
        .collect();
    round_qs.dedup();
    if !round_qs.is_empty() {
        out.push_str(
            "\n| queues | pre-policy driver (µs) | empty stack (µs) | staged stack (µs) | \
empty-stack overhead (%) |\n\
|---:|---:|---:|---:|---:|\n",
        );
        for q in round_qs {
            let (Some(classic), Some(empty), Some(staged)) = (
                find("round-classic", q, "n/a"),
                find("round-empty-stack", q, "n/a"),
                find("round-stack", q, "n/a"),
            ) else {
                continue;
            };
            let (c_us, e_us, s_us) = (median_us(classic), median_us(empty), median_us(staged));
            let overhead = if c_us > 0.0 {
                (e_us / c_us - 1.0) * 100.0
            } else {
                0.0
            };
            writeln!(
                out,
                "| {q} | {c_us:.2} | {e_us:.2} | {s_us:.2} | {overhead:+.1} |"
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

/// Renders a `BENCH_scale.json` document (written by `cargo bench
/// --bench scale`) into the "Control-plane scale" Markdown tables: one
/// table per queue population, dispatch throughput / p99 decision
/// latency / conflict rate per shard count, with the speedup column
/// anchored to the single-shard driver.
pub fn render_scale_markdown(doc: &Value) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let samples = doc.get("samples").and_then(Value::as_u64).unwrap_or(0);
    let cases = doc
        .get("cases")
        .and_then(Value::as_array)
        .unwrap_or_default();
    writeln!(
        out,
        "Suite `scale` — sharded round-driver throughput vs queue count, \
{samples} samples per case (regenerate: `cargo bench --bench scale`). \
Each decision pays the eligible scan over its shard's queues \
(`O(Q/N)`), stages against a generation-stamped snapshot, and commits \
with optimistic re-validation; conflicts retry and are counted. \
Medians, wall clock; p99 is per-decision (stage + commit)."
    )
    .expect("writing to String cannot fail");

    let num = |c: &Value, k: &str| c.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    let mut queue_counts: Vec<u64> = cases
        .iter()
        .filter_map(|c| c.get("queues").and_then(Value::as_u64))
        .collect();
    queue_counts.dedup();
    for q in queue_counts {
        let row: Vec<&Value> = cases
            .iter()
            .filter(|c| c.get("queues").and_then(Value::as_u64) == Some(q))
            .collect();
        let base = row
            .iter()
            .find(|c| c.get("shards").and_then(Value::as_u64) == Some(1))
            .map(|c| num(c, "dispatches_per_sec"))
            .unwrap_or(0.0);
        writeln!(
            out,
            "\n**{q} queues**\n\n\
| shards | dispatches/sec | speedup (×) | p99 decision (µs) | conflict rate (%) |\n\
|---:|---:|---:|---:|---:|"
        )
        .expect("writing to String cannot fail");
        for c in row {
            let shards = c.get("shards").and_then(Value::as_u64).unwrap_or(0);
            let tput = num(c, "dispatches_per_sec");
            let speedup = if base > 0.0 { tput / base } else { 0.0 };
            writeln!(
                out,
                "| {shards} | {tput:.0} | {speedup:.2} | {:.1} | {:.2} |",
                num(c, "p99_decision_ns") / 1_000.0,
                num(c, "conflict_rate") * 100.0
            )
            .expect("writing to String cannot fail");
        }
    }

    // End-to-end streaming replay cases (kind == "replay"): the whole
    // platform fed by a lazy Azure-shaped arrival stream, per-invocation
    // medians plus the constant-memory high-water marks.
    let replays: Vec<&Value> = cases
        .iter()
        .filter(|c| c.get("kind").and_then(Value::as_str) == Some("replay"))
        .collect();
    if !replays.is_empty() {
        out.push_str(
            "\n**End-to-end streaming replay** — Azure-shaped arrivals pulled \
lazily through the full platform (ESG scheduler, round/shard drivers, \
arena state) on the selected event-queue backend; medians are per \
invocation, and the arena/event-queue high-water marks pin the \
constant-memory property.\n\n\
| case | invocations | ns/invocation | invocations/sec | \
peak live invocations | peak pending events |\n\
|---|---:|---:|---:|---:|---:|\n",
        );
        for c in replays {
            let s = |k: &str| c.get(k).and_then(Value::as_str).unwrap_or("?");
            let u = |k: &str| c.get(k).and_then(Value::as_u64).unwrap_or(0);
            writeln!(
                out,
                "| {} | {} | {:.0} | {:.0} | {} | {} |",
                s("case"),
                u("invocations"),
                num(c, "median_ns"),
                num(c, "invocations_per_sec"),
                u("peak_live_invocations"),
                u("peak_pending_events"),
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

/// The generated experiment report: `$ESG_EXPERIMENTS_MD` when set, else
/// the workspace-level `EXPERIMENTS.md`.
pub fn experiments_md_path() -> PathBuf {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md");
    PathBuf::from(std::env::var("ESG_EXPERIMENTS_MD").unwrap_or_else(|_| default.into()))
}

/// Splices `markdown` into the experiment report between
/// `<!-- BENCH:<suite>:begin -->` / `<!-- BENCH:<suite>:end -->` markers,
/// appending a new marked section when the suite has none yet. Best
/// effort; returns the path on success.
pub fn update_experiments_md(suite: &str, markdown: &str) -> Option<PathBuf> {
    update_experiments_md_at(&experiments_md_path(), suite, markdown)
}

fn update_experiments_md_at(path: &Path, suite: &str, markdown: &str) -> Option<PathBuf> {
    let begin = format!("<!-- BENCH:{suite}:begin -->");
    let end = format!("<!-- BENCH:{suite}:end -->");
    let body = format!("{begin}\n{}\n{end}", markdown.trim_end());
    let current = std::fs::read_to_string(path).unwrap_or_default();
    let next = match (current.find(&begin), current.find(&end)) {
        (Some(b), Some(e)) if e >= b => {
            format!("{}{}{}", &current[..b], body, &current[e + end.len()..])
        }
        (None, None) => {
            let mut s = current;
            if !s.is_empty() && !s.ends_with('\n') {
                s.push('\n');
            }
            format!("{s}\n## Suite `{suite}`\n\n{body}\n")
        }
        // One marker without the other (or out of order): splicing could
        // eat hand-written prose between a stale marker and a fresh one.
        // Refuse to touch the file rather than risk data loss.
        _ => {
            eprintln!(
                "[md] inconsistent BENCH:{suite} markers in {}; not updating",
                path.display()
            );
            return None;
        }
    };
    std::fs::write(path, next).ok()?;
    eprintln!("[md] updated {} (section {suite})", path.display());
    Some(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn json_and_csv_round_trip() {
        // The directory is passed explicitly — tests never touch the
        // process-global ESG_RESULTS_DIR (env mutation races with
        // concurrently running tests).
        let dir = std::env::temp_dir().join("esg_emit_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_csv_to(&dir, "emit_test", "a,b", &["1,2".into()]);
        let p = write_json_to(&dir, "emit_test", &json!({"k": [1, 2]})).expect("writable");
        let content = std::fs::read_to_string(p).expect("written");
        assert!(content.contains("\"k\""));
        let csv = std::fs::read_to_string(dir.join("emit_test.csv")).expect("csv");
        assert_eq!(csv, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn emission_into_unwritable_dir_is_a_no_op() {
        write_csv_to(Path::new("/proc/esg_no_such_dir"), "x", "a", &[]);
        assert!(write_json_to(Path::new("/proc/esg_no_such_dir"), "x", &json!(null)).is_none());
    }

    fn sample_doc() -> Value {
        json!({
            "suite": "demo",
            "run_seconds": 4.0,
            "cells": 2,
            "runs": [
                {
                    "scheduler": "ESG", "scenario": "strict-light",
                    "cluster": "paper-16xa100", "traffic": "steady", "seed": 42,
                    "avg_hit_rate": 0.93, "cost_per_invocation_cents": 0.412,
                    "cold_start_rate": 0.05, "locality_rate": 0.8,
                    "mean_overhead_ms": 1.25, "vgpu_utilisation": 0.4
                },
                {
                    "scheduler": "Orion", "scenario": "strict-light",
                    "cluster": "skewed+churn", "traffic": "bursty", "seed": 42,
                    "avg_hit_rate": 0.71, "cost_per_invocation_cents": 0.63,
                    "cold_start_rate": 0.2, "locality_rate": 0.4,
                    "mean_overhead_ms": 45.0, "vgpu_utilisation": 0.3
                }
            ]
        })
    }

    #[test]
    fn markdown_renders_one_table_per_group() {
        let md = render_bench_markdown(&sample_doc());
        assert!(md.contains("Suite `demo`"));
        assert!(md.contains("cluster `paper-16xa100` · traffic `steady`"));
        assert!(md.contains("cluster `skewed+churn` · traffic `bursty`"));
        assert!(md.contains("| ESG | 42 | 93.0 | 0.412 | 5.0 | 80.0 | 1.25 | 40.0 |"));
        assert!(md.contains("| Orion | 42 | 71.0 |"));
        assert_eq!(md.matches("| scheduler | seed |").count(), 2);
    }

    #[test]
    fn experiments_md_sections_append_then_replace() {
        let dir = std::env::temp_dir().join("esg_experiments_md_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("EXPERIMENTS.md");
        std::fs::write(&path, "# Report\n\nintro\n").expect("seed file");
        // First write appends a marked section.
        update_experiments_md_at(&path, "demo", "v1 rows").expect("writable");
        let one = std::fs::read_to_string(&path).expect("written");
        assert!(one.contains("intro"));
        assert!(one.contains("<!-- BENCH:demo:begin -->\nv1 rows\n<!-- BENCH:demo:end -->"));
        // Second write replaces in place without duplicating.
        update_experiments_md_at(&path, "demo", "v2 rows").expect("writable");
        let two = std::fs::read_to_string(&path).expect("written");
        assert!(two.contains("v2 rows"));
        assert!(!two.contains("v1 rows"));
        assert_eq!(two.matches("<!-- BENCH:demo:begin -->").count(), 1);
        // Other suites get their own section.
        update_experiments_md_at(&path, "other", "other rows").expect("writable");
        let three = std::fs::read_to_string(&path).expect("written");
        assert!(three.contains("## Suite `other`"));
        assert!(three.contains("v2 rows"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overhead_markdown_renders_pairs_and_speedups() {
        let doc = json!({
            "suite": "overhead",
            "samples": 30,
            "cases": [
                {"case": "overhead/cold/w3/tight", "kind": "cold", "width": 3,
                 "slo": "tight", "median_ns": 50_000.0, "mean_ns": 51_000.0,
                 "min_ns": 48_000.0, "samples": 30},
                {"case": "overhead/warm/w3/tight", "kind": "warm", "width": 3,
                 "slo": "tight", "median_ns": 500.0, "mean_ns": 510.0,
                 "min_ns": 480.0, "samples": 30},
                {"case": "overhead/astar-alloc/w3/medium", "kind": "astar-alloc",
                 "width": 3, "slo": "medium", "median_ns": 40_000.0,
                 "mean_ns": 40_000.0, "min_ns": 39_000.0, "samples": 30},
                {"case": "overhead/astar-scratch/w3/medium", "kind": "astar-scratch",
                 "width": 3, "slo": "medium", "median_ns": 20_000.0,
                 "mean_ns": 20_000.0, "min_ns": 19_000.0, "samples": 30},
                {"case": "overhead/view-snapshot/n16", "kind": "view-snapshot",
                 "width": 16, "slo": "n/a", "median_ns": 5_000.0,
                 "mean_ns": 5_000.0, "min_ns": 4_800.0, "samples": 30},
                {"case": "overhead/view-incremental/n16", "kind": "view-incremental",
                 "width": 16, "slo": "n/a", "median_ns": 250.0,
                 "mean_ns": 255.0, "min_ns": 240.0, "samples": 30}
            ]
        });
        let md = render_overhead_markdown(&doc);
        assert!(md.contains("30 samples per case"));
        // 50 µs cold vs 0.5 µs warm → 100× speedup.
        assert!(md.contains("| 3 | tight | 50.00 | 0.500 | 100 |"), "{md}");
        // 40 µs alloc vs 20 µs scratch → 2.00× gain.
        assert!(md.contains("| 3 | 40.00 | 20.00 | 2.00 |"), "{md}");
        // 5 µs snapshot vs 0.25 µs incremental → 20× removed cost.
        assert!(md.contains("| 16 | 5.00 | 0.250 | 20 |"), "{md}");
    }

    #[test]
    fn shed_column_renders_only_when_present() {
        // Pre-policy documents (committed hetero artifacts) carry no
        // shed_rate key: their rendering must stay byte-identical.
        let legacy = render_bench_markdown(&sample_doc());
        assert!(!legacy.contains("shed %"), "{legacy}");
        // A policy-sweep document gains the column.
        let doc = json!({
            "suite": "packing", "run_seconds": 4.0, "cells": 2,
            "runs": [
                {
                    "scheduler": "ESG+admit", "scenario": "moderate-normal",
                    "cluster": "paper-16xa100", "traffic": "bursty", "seed": 42,
                    "avg_hit_rate": 0.93, "shed_rate": 0.25,
                    "cost_per_invocation_cents": 0.412,
                    "cold_start_rate": 0.05, "locality_rate": 0.8,
                    "mean_overhead_ms": 1.25, "vgpu_utilisation": 0.4
                },
                {
                    "scheduler": "Orion", "scenario": "moderate-normal",
                    "cluster": "paper-16xa100", "traffic": "bursty", "seed": 42,
                    "avg_hit_rate": 0.71, "cost_per_invocation_cents": 0.63,
                    "cold_start_rate": 0.2, "locality_rate": 0.4,
                    "mean_overhead_ms": 45.0, "vgpu_utilisation": 0.3
                }
            ]
        });
        let md = render_bench_markdown(&doc);
        assert!(
            md.contains("| scheduler | seed | SLO hit % | shed % |"),
            "{md}"
        );
        assert!(
            md.contains("| ESG+admit | 42 | 93.0 | 25.0 | 0.412 |"),
            "{md}"
        );
        // A row without the key in a shed-aware doc renders 0.0.
        assert!(md.contains("| Orion | 42 | 71.0 | 0.0 |"), "{md}");
    }

    #[test]
    fn transfer_columns_render_only_when_present() {
        // Scalar-model documents carry no transfer keys: their rendering
        // must stay byte-identical to the pre-data-plane renderer.
        let legacy = render_bench_markdown(&sample_doc());
        assert!(!legacy.contains("transfers |"), "{legacy}");
        // A data-plane sweep document gains the trailing columns.
        let doc = json!({
            "suite": "transfer", "run_seconds": 4.0, "cells": 2,
            "runs": [
                {
                    "scheduler": "ESG+bw-pack", "scenario": "moderate-normal",
                    "cluster": "slow-fabric", "traffic": "bursty", "seed": 42,
                    "avg_hit_rate": 0.93, "shed_rate": 0.0,
                    "cost_per_invocation_cents": 0.412,
                    "cold_start_rate": 0.05, "locality_rate": 0.8,
                    "mean_overhead_ms": 1.25, "vgpu_utilisation": 0.4,
                    "transfers_started": 120, "transfers_queued": 7,
                    "transfer_replans": 31, "transfer_total_mb": 512.5
                },
                {
                    "scheduler": "ESG+pack", "scenario": "moderate-normal",
                    "cluster": "slow-fabric", "traffic": "bursty", "seed": 42,
                    "avg_hit_rate": 0.71, "cost_per_invocation_cents": 0.63,
                    "cold_start_rate": 0.2, "locality_rate": 0.4,
                    "mean_overhead_ms": 45.0, "vgpu_utilisation": 0.3
                }
            ]
        });
        let md = render_bench_markdown(&doc);
        assert!(
            md.contains("vGPU util % | transfers | queued | replans | moved (MB) |"),
            "{md}"
        );
        assert!(
            md.contains("| ESG+bw-pack | 42 | 93.0 | 0.0 | 0.412 | 5.0 | 80.0 | 1.25 | 40.0 | 120 | 7 | 31 | 512 |"),
            "{md}"
        );
        // A row without the keys in a transfer-aware doc renders zeros.
        assert!(md.contains("| ESG+pack | 42 | 71.0 | 0.0 | 0.630 | 20.0 | 40.0 | 45.00 | 30.0 | 0 | 0 | 0 | 0 |"), "{md}");
    }

    #[test]
    fn overhead_markdown_renders_round_driver_table() {
        let doc = json!({
            "suite": "overhead", "samples": 10,
            "cases": [
                {"case": "overhead/round-classic/q4", "kind": "round-classic",
                 "width": 4, "slo": "n/a", "median_ns": 2_000.0,
                 "mean_ns": 2_000.0, "min_ns": 1_900.0, "samples": 10},
                {"case": "overhead/round-empty-stack/q4", "kind": "round-empty-stack",
                 "width": 4, "slo": "n/a", "median_ns": 2_100.0,
                 "mean_ns": 2_100.0, "min_ns": 2_000.0, "samples": 10},
                {"case": "overhead/round-stack/q4", "kind": "round-stack",
                 "width": 4, "slo": "n/a", "median_ns": 16_000.0,
                 "mean_ns": 16_000.0, "min_ns": 15_000.0, "samples": 10}
            ]
        });
        let md = render_overhead_markdown(&doc);
        // 2.0 µs classic, 2.1 µs empty (+5.0%), 16 µs staged.
        assert!(md.contains("| queues | pre-policy driver"), "{md}");
        assert!(md.contains("| 4 | 2.00 | 2.10 | 16.00 | +5.0 |"), "{md}");
    }

    #[test]
    fn overhead_markdown_skips_unpaired_cases() {
        let doc = json!({
            "suite": "overhead", "samples": 5,
            "cases": [
                {"case": "overhead/cold/w2/loose", "kind": "cold", "width": 2,
                 "slo": "loose", "median_ns": 1000.0, "mean_ns": 1000.0,
                 "min_ns": 900.0, "samples": 5}
            ]
        });
        let md = render_overhead_markdown(&doc);
        assert!(
            !md.contains("| 2 | loose |"),
            "cold without warm must be dropped"
        );
    }

    #[test]
    fn delimiter_in_cluster_label_does_not_corrupt_grouping() {
        let doc = json!({
            "suite": "s", "run_seconds": 1.0, "cells": 1,
            "runs": [{
                "scheduler": "ESG", "scenario": "strict-light",
                "cluster": "a100|t4-mix", "traffic": "steady", "seed": 1,
                "avg_hit_rate": 1.0, "cost_per_invocation_cents": 0.1,
                "cold_start_rate": 0.0, "locality_rate": 0.5,
                "mean_overhead_ms": 0.5, "vgpu_utilisation": 0.2
            }]
        });
        let md = render_bench_markdown(&doc);
        assert!(md.contains("cluster `a100|t4-mix` · traffic `steady`"));
        assert_eq!(md.matches("| scheduler | seed |").count(), 1);
    }

    #[test]
    fn scale_markdown_renders_replay_cases_alongside_driver_tables() {
        let doc = json!({
            "suite": "scale", "samples": 40,
            "cases": [
                {"case": "scale/driver/q10000/s1", "kind": "driver", "queues": 10_000,
                 "shards": 1, "median_ns": 100_000.0, "dispatches_per_sec": 640_000.0,
                 "p99_decision_ns": 2_000.0, "conflict_rate": 0.0},
                {"case": "scale/driver/q10000/s2", "kind": "driver", "queues": 10_000,
                 "shards": 2, "median_ns": 50_000.0, "dispatches_per_sec": 1_280_000.0,
                 "p99_decision_ns": 1_500.0, "conflict_rate": 0.01},
                {"case": "scale/replay/wheel", "kind": "replay", "event_queue": "wheel",
                 "shards": 1, "invocations": 1_048_576, "median_ns": 34_000.0,
                 "invocations_per_sec": 29_412.0, "peak_live_invocations": 642,
                 "invocation_slots": 642, "task_slots": 631, "peak_pending_events": 636}
            ]
        });
        let md = render_scale_markdown(&doc);
        // Driver tables keyed on queue count are untouched…
        assert!(md.contains("**10000 queues**"), "{md}");
        assert!(md.contains("| 2 | 1280000 | 2.00 | 1.5 | 1.00 |"), "{md}");
        // …and replay cases get their own per-invocation table.
        assert!(md.contains("**End-to-end streaming replay**"), "{md}");
        assert!(
            md.contains("| scale/replay/wheel | 1048576 | 34000 | 29412 | 642 | 636 |"),
            "{md}"
        );
        // A replay-free document renders no replay section.
        let driver_only = json!({"suite": "scale", "samples": 40, "cases": [
            {"case": "scale/driver/q10000/s1", "kind": "driver", "queues": 10_000,
             "shards": 1, "median_ns": 100_000.0, "dispatches_per_sec": 640_000.0,
             "p99_decision_ns": 2_000.0, "conflict_rate": 0.0}
        ]});
        assert!(!render_scale_markdown(&driver_only).contains("streaming replay"));
    }

    #[test]
    fn inconsistent_markers_refuse_to_update() {
        let dir = std::env::temp_dir().join("esg_experiments_md_markers_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("EXPERIMENTS.md");
        // A begin marker whose end was lost to a manual edit: splicing
        // here could eat the prose after it, so the update must refuse.
        let damaged = "# Report\n\n<!-- BENCH:demo:begin -->\nold rows\n\nhand-written prose\n";
        std::fs::write(&path, damaged).expect("seed file");
        assert!(update_experiments_md_at(&path, "demo", "new rows").is_none());
        assert_eq!(std::fs::read_to_string(&path).expect("file"), damaged);
        // End before begin is equally malformed.
        let reversed = "<!-- BENCH:demo:end -->\nprose\n<!-- BENCH:demo:begin -->\n";
        std::fs::write(&path, reversed).expect("seed file");
        assert!(update_experiments_md_at(&path, "demo", "new rows").is_none());
        assert_eq!(std::fs::read_to_string(&path).expect("file"), reversed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
