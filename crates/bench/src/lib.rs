//! Experiment layer: the [`ExperimentSuite`] scenario-sweep engine plus
//! shared setup for the per-figure/per-table bench targets.
//!
//! The engine turns a declarative [`ScenarioMatrix`] — schedulers × SLO
//! classes × workload classes × seeds — into independent simulation runs
//! executed in parallel (rayon), with deterministic per-run seeding so a
//! parallel sweep is bit-identical to a serial one. Results come back as
//! structured [`SweepResult`] records inside a [`Sweep`], which knows how
//! to emit `BENCH_<suite>.json` and `BENCH_<suite>.csv` artifacts under
//! `bench_results/`.
//!
//! The fig/table bench targets are thin declarations over this engine:
//! they build a matrix, run it, and format paper-style rows from the
//! returned records. Every target shares the same standard setup — the
//! Table-2 cluster, 120 s of class-appropriate arrivals, a 30 s warm-up
//! window excluded from the metrics, and seed 42.

#![warn(missing_docs)]

mod dashboard;
mod emit;
mod replay;
mod suite;

pub use dashboard::{
    dashboard_csv_header, dashboard_csv_rows, render_dashboard_text, render_snapshot_text,
};
pub use emit::{
    experiments_md_path, render_bench_markdown, render_overhead_markdown, render_scale_markdown,
    results_dir, update_experiments_md, write_csv, write_json,
};
pub use replay::{record_reference, render_replay_markdown, replay_doc, replay_matrix, ReplayRun};
pub use suite::{
    ClusterCase, ExperimentSuite, RunSpec, ScenarioMatrix, SchedContext, SchedSpec, Sweep,
    SweepResult,
};

use esg_baselines::{AquatopeScheduler, FastGShareScheduler, InflessScheduler, OrionScheduler};
use esg_core::EsgScheduler;
use esg_model::{standard_app_ids, Scenario, SloClass, TrafficShape};
use esg_sim::{ExperimentResult, Scheduler, SimConfig};
use esg_workload::{shaped_workload_with, Popularity, Workload, WorkloadGen};

/// Simulated seconds of arrivals per experiment run.
pub const RUN_SECONDS: f64 = 120.0;
/// Warm-up window excluded from metrics, seconds.
pub const WARMUP_SECONDS: f64 = 30.0;
/// Workload seed shared by all experiments.
pub const SEED: u64 = 42;

/// The five compared schedulers (paper §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedKind {
    /// The paper's contribution.
    Esg,
    /// INFless baseline.
    Infless,
    /// FaST-GShare baseline.
    FastGShare,
    /// Orion baseline (default 100 ms cut-off).
    Orion,
    /// Aquatope baseline (offline BO).
    Aquatope,
}

impl SchedKind {
    /// All five, figure order.
    pub fn all() -> [SchedKind; 5] {
        [
            SchedKind::Esg,
            SchedKind::Infless,
            SchedKind::FastGShare,
            SchedKind::Orion,
            SchedKind::Aquatope,
        ]
    }

    /// Instantiates the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedKind::Esg => Box::new(EsgScheduler::new()),
            SchedKind::Infless => Box::new(InflessScheduler::new()),
            SchedKind::FastGShare => Box::new(FastGShareScheduler::new()),
            SchedKind::Orion => Box::new(OrionScheduler::default()),
            SchedKind::Aquatope => Box::new(AquatopeScheduler::default()),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Esg => "ESG",
            SchedKind::Infless => "INFless",
            SchedKind::FastGShare => "FaST-GShare",
            SchedKind::Orion => "Orion",
            SchedKind::Aquatope => "Aquatope",
        }
    }
}

/// The standard workload of a scenario: [`RUN_SECONDS`] of arrivals at the
/// shared [`SEED`].
pub fn standard_workload(scenario: Scenario) -> Workload {
    workload_for(scenario, SEED, RUN_SECONDS)
}

/// A scenario's workload at an explicit seed and duration (the sweep
/// engine's per-cell generator for steady traffic).
pub fn workload_for(scenario: Scenario, seed: u64, run_seconds: f64) -> Workload {
    WorkloadGen::new(scenario.workload, standard_app_ids(), seed).generate_for(run_seconds * 1000.0)
}

/// A scenario's workload under an arbitrary traffic shape (the sweep
/// engine's per-cell generator). `Steady` matches [`workload_for`]
/// bit-for-bit.
pub fn workload_for_shape(
    scenario: Scenario,
    shape: TrafficShape,
    seed: u64,
    run_seconds: f64,
) -> Workload {
    workload_for_shape_with(scenario, shape, seed, Popularity::Uniform, run_seconds)
}

/// [`workload_for_shape`] with an explicit application-popularity skew
/// (the sweep engine's per-cell generator; `Popularity::Uniform` is
/// bit-identical to the unskewed form).
pub fn workload_for_shape_with(
    scenario: Scenario,
    shape: TrafficShape,
    seed: u64,
    popularity: Popularity,
    run_seconds: f64,
) -> Workload {
    shaped_workload_with(
        scenario.workload,
        shape,
        &standard_app_ids(),
        seed,
        popularity,
        run_seconds * 1000.0,
    )
}

/// The standard platform configuration (Table 2 + steady-state warm-up).
pub fn standard_config() -> SimConfig {
    SimConfig {
        warmup_exclude_ms: WARMUP_SECONDS * 1000.0,
        ..SimConfig::default()
    }
}

/// Runs one `(scheduler, scenario)` cell of the evaluation at the
/// standard configuration and shared [`SEED`].
///
/// One-off convenience for exploratory runs; sweeps should use
/// [`ExperimentSuite`], which parallelises and records coordinates.
pub fn run_cell(kind: SchedKind, scenario: Scenario) -> ExperimentResult {
    run_cell_with(kind, scenario, standard_config())
}

/// [`run_cell`] with a custom platform configuration. Unlike the sweep
/// engine (whose seed axis controls both the workload and `cfg.seed`),
/// this honours the caller's `cfg.seed` verbatim and keeps the workload
/// at the shared [`SEED`].
pub fn run_cell_with(kind: SchedKind, scenario: Scenario, cfg: SimConfig) -> ExperimentResult {
    let env = esg_sim::SimEnv::standard(scenario.slo);
    let workload = standard_workload(scenario);
    let mut sched = kind.build();
    esg_sim::run_simulation(&env, cfg, sched.as_mut(), &workload, &scenario.to_string())
}

/// Runs every cell of `kinds × scenarios` in parallel via the sweep
/// engine, returning results in deterministic `(scenario-major,
/// kind-minor)` order.
///
/// The bench targets declare [`ExperimentSuite`]s directly; this wrapper
/// remains public API for callers that want a paired comparison as a flat
/// list without touching sweep records.
pub fn run_matrix(
    kinds: &[SchedKind],
    scenarios: &[Scenario],
) -> Vec<(Scenario, SchedKind, ExperimentResult)> {
    let sweep = ExperimentSuite::new(
        "matrix",
        ScenarioMatrix::new()
            .schedulers(kinds.iter().copied())
            .scenarios(scenarios.iter().copied())
            .seeds([SEED]),
    )
    .run();
    // Cells expand scenario-major, scheduler-minor, seed-innermost; with a
    // single seed that is exactly the promised order.
    let mut out = Vec::with_capacity(sweep.results.len());
    let mut it = sweep.results.into_iter();
    for &scenario in scenarios {
        for &kind in kinds {
            let cell = it.next().expect("matrix fully populated");
            debug_assert_eq!(cell.scenario, scenario);
            debug_assert_eq!(cell.scheduler, kind.name());
            out.push((scenario, kind, cell.result));
        }
    }
    out
}

/// The SLO class of a scenario sweep cell (helper for custom sweeps).
pub fn slo_of(scenario: Scenario) -> SloClass {
    scenario.slo
}

/// Prints a rule-off section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_factory_names() {
        for kind in SchedKind::all() {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn standard_workload_covers_run_window() {
        let w = standard_workload(Scenario::STRICT_LIGHT);
        assert!(w.span_ms() <= RUN_SECONDS * 1000.0);
        assert!(w.span_ms() > 0.8 * RUN_SECONDS * 1000.0);
    }

    #[test]
    fn workload_is_seed_deterministic() {
        let a = workload_for(Scenario::MODERATE_NORMAL, 7, 10.0);
        let b = workload_for(Scenario::MODERATE_NORMAL, 7, 10.0);
        let c = workload_for(Scenario::MODERATE_NORMAL, 8, 10.0);
        assert_eq!(a.intervals_ms(), b.intervals_ms());
        assert_ne!(a.intervals_ms(), c.intervals_ms());
    }
}
