//! Shared experiment-harness support for the per-table/per-figure bench
//! targets (see DESIGN.md §5 for the experiment index).
//!
//! Every target uses the same standard setup: the Table-2 cluster, 120 s
//! of class-appropriate arrivals, a 30 s warm-up window excluded from the
//! metrics (steady-state measurement), and seed 42. Results print as
//! paper-style rows and are also written as CSV under `bench_results/`.

#![warn(missing_docs)]

use esg_baselines::{
    AquatopeScheduler, FastGShareScheduler, InflessScheduler, OrionScheduler,
};
use esg_core::EsgScheduler;
use esg_model::{standard_app_ids, Scenario, SloClass};
use esg_sim::{run_simulation, ExperimentResult, Scheduler, SimConfig, SimEnv};
use esg_workload::{Workload, WorkloadGen};
use parking_lot::Mutex;
use std::io::Write;
use std::path::PathBuf;

/// Simulated seconds of arrivals per experiment run.
pub const RUN_SECONDS: f64 = 120.0;
/// Warm-up window excluded from metrics, seconds.
pub const WARMUP_SECONDS: f64 = 30.0;
/// Workload seed shared by all experiments.
pub const SEED: u64 = 42;

/// The five compared schedulers (paper §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// The paper's contribution.
    Esg,
    /// INFless baseline.
    Infless,
    /// FaST-GShare baseline.
    FastGShare,
    /// Orion baseline (default 100 ms cut-off).
    Orion,
    /// Aquatope baseline (offline BO).
    Aquatope,
}

impl SchedKind {
    /// All five, figure order.
    pub fn all() -> [SchedKind; 5] {
        [
            SchedKind::Esg,
            SchedKind::Infless,
            SchedKind::FastGShare,
            SchedKind::Orion,
            SchedKind::Aquatope,
        ]
    }

    /// Instantiates the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedKind::Esg => Box::new(EsgScheduler::new()),
            SchedKind::Infless => Box::new(InflessScheduler::new()),
            SchedKind::FastGShare => Box::new(FastGShareScheduler::new()),
            SchedKind::Orion => Box::new(OrionScheduler::default()),
            SchedKind::Aquatope => Box::new(AquatopeScheduler::default()),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Esg => "ESG",
            SchedKind::Infless => "INFless",
            SchedKind::FastGShare => "FaST-GShare",
            SchedKind::Orion => "Orion",
            SchedKind::Aquatope => "Aquatope",
        }
    }
}

/// The standard workload of a scenario: `RUN_SECONDS` of arrivals.
pub fn standard_workload(scenario: Scenario) -> Workload {
    WorkloadGen::new(scenario.workload, standard_app_ids(), SEED)
        .generate_for(RUN_SECONDS * 1000.0)
}

/// The standard platform configuration (Table 2 + steady-state warm-up).
pub fn standard_config() -> SimConfig {
    SimConfig {
        warmup_exclude_ms: WARMUP_SECONDS * 1000.0,
        ..SimConfig::default()
    }
}

/// Runs one `(scheduler, scenario)` cell of the evaluation.
pub fn run_cell(kind: SchedKind, scenario: Scenario) -> ExperimentResult {
    run_cell_with(kind, scenario, standard_config())
}

/// [`run_cell`] with a custom platform configuration.
pub fn run_cell_with(
    kind: SchedKind,
    scenario: Scenario,
    cfg: SimConfig,
) -> ExperimentResult {
    let env = SimEnv::standard(scenario.slo);
    let workload = standard_workload(scenario);
    let mut sched = kind.build();
    run_simulation(&env, cfg, sched.as_mut(), &workload, &scenario.to_string())
}

/// Runs every cell of `kinds × scenarios` in parallel (scoped threads,
/// crossbeam channel fan-in), returning results in deterministic
/// `(scenario-major, kind-minor)` order.
pub fn run_matrix(
    kinds: &[SchedKind],
    scenarios: &[Scenario],
) -> Vec<(Scenario, SchedKind, ExperimentResult)> {
    let results = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let (tx, rx) = crossbeam::channel::unbounded();
        for &scenario in scenarios {
            for &kind in kinds {
                let tx = tx.clone();
                scope.spawn(move || {
                    let r = run_cell(kind, scenario);
                    tx.send((scenario, kind, r)).expect("receiver alive");
                });
            }
        }
        drop(tx);
        for item in rx {
            results.lock().push(item);
        }
    });
    let mut out = results.into_inner();
    out.sort_by_key(|(scenario, kind, _)| {
        (
            scenarios.iter().position(|s| s == scenario).expect("known"),
            kinds.iter().position(|k| k == kind).expect("known"),
        )
    });
    out
}

/// The SLO class of a scenario sweep cell (helper for custom sweeps).
pub fn slo_of(scenario: Scenario) -> SloClass {
    scenario.slo
}

/// Writes rows as CSV under the workspace-level `bench_results/<name>.csv`
/// (best effort; the printed output is the primary artifact). Override the
/// directory with `ESG_RESULTS_DIR`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    // Bench binaries run with CWD = the package dir; anchor at the
    // workspace root instead.
    let default_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_results");
    let dir = PathBuf::from(
        std::env::var("ESG_RESULTS_DIR").unwrap_or_else(|_| default_dir.into()),
    );
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{header}");
        for r in rows {
            let _ = writeln!(f, "{r}");
        }
        eprintln!("[csv] wrote {}", path.display());
    }
}

/// Prints a rule-off section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_factory_names() {
        for kind in SchedKind::all() {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn standard_workload_covers_run_window() {
        let w = standard_workload(Scenario::STRICT_LIGHT);
        assert!(w.span_ms() <= RUN_SECONDS * 1000.0);
        assert!(w.span_ms() > 0.8 * RUN_SECONDS * 1000.0);
    }
}
