//! The scenario-sweep engine: declarative matrices expanded into
//! independent, deterministically seeded simulation runs executed in
//! parallel.
//!
//! Five axes: schedulers × scenarios (SLO/workload pairings) × cluster
//! cases (a [`ClusterSpec`] plus optional churn) × traffic shapes × seeds.
//! The cluster and traffic axes default to singletons — the platform
//! configuration's cluster and steady arrivals — so paper-style sweeps
//! stay two-axis declarations.

use crate::{standard_config, workload_for_shape_with, SchedKind, RUN_SECONDS, SEED};
use esg_model::{
    ChurnPlan, ClusterSpec, ConfigGrid, Scenario, SloClass, TrafficShape, WorkloadClass,
};
use esg_profile::TransferModel;
use esg_sim::{run_simulation, ExperimentResult, Scheduler, SimConfig, SimEnv, TransferSummary};
use esg_workload::{Popularity, Workload};
use rayon::prelude::*;
use serde_json::{Map, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything a context-aware scheduler factory may inspect when
/// instantiating for one cell: the environment, the cell's cluster and
/// the exact workload the run will replay. Analysis-driven schedulers
/// (the hybrid static-pinning tier runs its [`esg_core::PinPlanner`]
/// pattern pass here) plan against precisely the inputs the cell sees.
pub struct SchedContext<'a> {
    /// The cell's environment (profiles, SLOs, transfer tariffs).
    pub env: &'a SimEnv,
    /// The cluster the cell runs on (`None` = the suite's platform
    /// configuration cluster).
    pub cluster: Option<&'a ClusterSpec>,
    /// The cell's full arrival workload.
    pub workload: &'a Workload,
}

type ContextualFn = dyn Fn(&SchedContext<'_>) -> Box<dyn Scheduler> + Send + Sync;

#[derive(Clone)]
enum Factory {
    Plain(Arc<dyn Fn() -> Box<dyn Scheduler> + Send + Sync>),
    Contextual(Arc<ContextualFn>),
}

/// A named scheduler factory: one point on the scheduler axis of a
/// [`ScenarioMatrix`]. Factories (not instances) are swept because every
/// cell needs a fresh scheduler with no state carried across runs.
#[derive(Clone)]
pub struct SchedSpec {
    name: String,
    factory: Factory,
}

impl SchedSpec {
    /// A scheduler axis point built from a closure, labelled `name`
    /// (sweeps over parameterised variants: `orion@50ms`, `esg-k20`, …).
    pub fn new(
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Scheduler> + Send + Sync + 'static,
    ) -> Self {
        SchedSpec {
            name: name.into(),
            factory: Factory::Plain(Arc::new(factory)),
        }
    }

    /// A scheduler axis point whose factory sees the cell's environment,
    /// cluster and workload ([`SchedContext`]) — for schedulers that run
    /// an offline analysis pass before the sweep cell starts.
    pub fn contextual(
        name: impl Into<String>,
        factory: impl Fn(&SchedContext<'_>) -> Box<dyn Scheduler> + Send + Sync + 'static,
    ) -> Self {
        SchedSpec {
            name: name.into(),
            factory: Factory::Contextual(Arc::new(factory)),
        }
    }

    /// The label used in records and reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instantiates a fresh scheduler for one run.
    ///
    /// # Panics
    ///
    /// On a [`contextual`](Self::contextual) spec — those need the cell
    /// inputs; use [`build_for`](Self::build_for) (the sweep engine
    /// always does).
    pub fn build(&self) -> Box<dyn Scheduler> {
        match &self.factory {
            Factory::Plain(f) => f(),
            Factory::Contextual(_) => {
                panic!("contextual scheduler spec {:?} needs build_for", self.name)
            }
        }
    }

    /// Instantiates a fresh scheduler for one cell, handing contextual
    /// factories the cell's inputs.
    pub fn build_for(&self, ctx: &SchedContext<'_>) -> Box<dyn Scheduler> {
        match &self.factory {
            Factory::Plain(f) => f(),
            Factory::Contextual(f) => f(ctx),
        }
    }
}

impl From<SchedKind> for SchedSpec {
    fn from(kind: SchedKind) -> Self {
        SchedSpec::new(kind.name(), move || kind.build())
    }
}

impl std::fmt::Debug for SchedSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedSpec")
            .field("name", &self.name)
            .finish()
    }
}

/// One point on the cluster axis: a declarative [`ClusterSpec`] plus an
/// optional scripted [`ChurnPlan`], under a display label.
#[derive(Clone, Debug)]
pub struct ClusterCase {
    /// Axis label (records, CSV, reports).
    pub name: String,
    /// The cluster to materialise for every cell of this case.
    pub spec: ClusterSpec,
    /// Node drains/joins applied mid-run. Empty = inherit whatever churn
    /// the suite's platform configuration carries (usually none).
    pub churn: ChurnPlan,
}

impl ClusterCase {
    /// A static-cluster case labelled with the spec's own name.
    pub fn new(spec: ClusterSpec) -> ClusterCase {
        ClusterCase {
            name: spec.name.clone(),
            spec,
            churn: ChurnPlan::none(),
        }
    }

    /// Attaches a churn plan and tags the label with `+churn`.
    pub fn with_churn(mut self, churn: ChurnPlan) -> ClusterCase {
        if !churn.is_empty() && !self.name.ends_with("+churn") {
            self.name.push_str("+churn");
        }
        self.churn = churn;
        self
    }

    /// Overrides the axis label.
    pub fn named(mut self, name: impl Into<String>) -> ClusterCase {
        self.name = name.into();
        self
    }
}

impl From<ClusterSpec> for ClusterCase {
    fn from(spec: ClusterSpec) -> Self {
        ClusterCase::new(spec)
    }
}

/// A declarative sweep grid: schedulers × scenarios × cluster cases ×
/// traffic shapes × seeds, where the scenario axis is either an explicit
/// list (the paper's three pairings) or a full SLO-class × workload-class
/// cross product. Cluster and traffic axes default to singletons (the
/// platform configuration's cluster; steady arrivals).
#[derive(Clone, Debug, Default)]
pub struct ScenarioMatrix {
    schedulers: Vec<SchedSpec>,
    scenarios: Vec<Scenario>,
    clusters: Vec<ClusterCase>,
    traffic: Vec<TrafficShape>,
    popularity: Vec<Popularity>,
    seeds: Vec<u64>,
}

impl ScenarioMatrix {
    /// An empty matrix (defaults to the shared [`SEED`] until
    /// [`seeds`](Self::seeds) is called).
    pub fn new() -> Self {
        ScenarioMatrix::default()
    }

    /// The paper's headline grid: all five schedulers over the three
    /// paired scenarios at the shared seed.
    pub fn paper() -> Self {
        ScenarioMatrix::new()
            .schedulers(SchedKind::all())
            .scenarios(Scenario::all())
    }

    /// Sets the scheduler axis ([`SchedKind`]s and [`SchedSpec`]s mix
    /// freely via `Into`).
    pub fn schedulers<S: Into<SchedSpec>>(
        mut self,
        schedulers: impl IntoIterator<Item = S>,
    ) -> Self {
        self.schedulers = schedulers.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the scenario axis to an explicit list of pairings.
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        self.scenarios = scenarios.into_iter().collect();
        self
    }

    /// Sets the scenario axis to the full `slos × workloads` cross
    /// product (SLO-major, matching the paper's panel ordering).
    pub fn cross(
        mut self,
        slos: impl IntoIterator<Item = SloClass>,
        workloads: impl IntoIterator<Item = WorkloadClass>,
    ) -> Self {
        let workloads: Vec<WorkloadClass> = workloads.into_iter().collect();
        self.scenarios = slos
            .into_iter()
            .flat_map(|slo| {
                workloads
                    .iter()
                    .map(move |&workload| Scenario { slo, workload })
            })
            .collect();
        self
    }

    /// Sets the cluster axis ([`ClusterSpec`]s and [`ClusterCase`]s mix
    /// freely via `Into`). Unset = every cell runs the suite's platform
    /// configuration cluster (the Table-2 default).
    pub fn clusters<C: Into<ClusterCase>>(mut self, clusters: impl IntoIterator<Item = C>) -> Self {
        self.clusters = clusters.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the traffic-shape axis. Unset = steady (§4.1) arrivals only.
    pub fn traffic(mut self, shapes: impl IntoIterator<Item = TrafficShape>) -> Self {
        self.traffic = shapes.into_iter().collect();
        self
    }

    /// Sets the application-popularity axis (uniform vs Zipf-skewed
    /// draws over the app list). Unset = uniform popularity only, which
    /// keeps every existing sweep bit-identical.
    pub fn popularity(mut self, skews: impl IntoIterator<Item = Popularity>) -> Self {
        self.popularity = skews.into_iter().collect();
        self
    }

    /// Sets the seed axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    fn seed_axis(&self) -> Vec<u64> {
        if self.seeds.is_empty() {
            vec![SEED]
        } else {
            self.seeds.clone()
        }
    }

    fn cluster_axis(&self) -> Vec<Option<ClusterCase>> {
        if self.clusters.is_empty() {
            vec![None]
        } else {
            self.clusters.iter().cloned().map(Some).collect()
        }
    }

    fn traffic_axis(&self) -> Vec<TrafficShape> {
        if self.traffic.is_empty() {
            vec![TrafficShape::Steady]
        } else {
            self.traffic.clone()
        }
    }

    fn popularity_axis(&self) -> Vec<Popularity> {
        if self.popularity.is_empty() {
            vec![Popularity::Uniform]
        } else {
            self.popularity.clone()
        }
    }

    /// Number of cells in the expanded matrix.
    pub fn len(&self) -> usize {
        self.schedulers.len()
            * self.scenarios.len()
            * self.cluster_axis().len()
            * self.traffic_axis().len()
            * self.popularity_axis().len()
            * self.seed_axis().len()
    }

    /// Whether the matrix expands to no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into concrete run specifications: scenario-major,
    /// then cluster case, traffic shape, popularity skew, scheduler,
    /// seed-innermost. The order is part of the API: sweep results always
    /// come back in cell order.
    pub fn cells(&self) -> Vec<RunSpec> {
        let seeds = self.seed_axis();
        let clusters = self.cluster_axis();
        let traffic = self.traffic_axis();
        let popularity = self.popularity_axis();
        let mut cells = Vec::with_capacity(self.len());
        for &scenario in &self.scenarios {
            for cluster in &clusters {
                for &shape in &traffic {
                    for &pop in &popularity {
                        for sched in &self.schedulers {
                            for &seed in &seeds {
                                cells.push(RunSpec {
                                    index: cells.len(),
                                    scheduler: sched.clone(),
                                    scenario,
                                    cluster: cluster.clone(),
                                    traffic: shape,
                                    popularity: pop,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One fully specified cell of a sweep.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Position in matrix cell order.
    pub index: usize,
    /// Scheduler factory for this run.
    pub scheduler: SchedSpec,
    /// SLO/workload pairing.
    pub scenario: Scenario,
    /// Cluster case; `None` = the suite's platform-configuration cluster.
    pub cluster: Option<ClusterCase>,
    /// Traffic shape of this cell's arrival stream.
    pub traffic: TrafficShape,
    /// Application-popularity skew of this cell's arrival stream.
    pub popularity: Popularity,
    /// Seed for this run's workload stream and platform noise. Cells
    /// sharing `(scenario, traffic, popularity, seed)` see bit-identical
    /// arrivals, so scheduler and cluster comparisons are paired.
    pub seed: u64,
}

impl RunSpec {
    /// The cluster-axis label ("default" when the cell runs the platform
    /// configuration's cluster).
    pub fn cluster_label(&self) -> &str {
        self.cluster.as_ref().map_or("default", |c| c.name.as_str())
    }

    /// The popularity-axis label ("uniform", "zipf-1.5", …).
    pub fn popularity_label(&self) -> String {
        self.popularity.to_string()
    }
}

/// A configured sweep: a [`ScenarioMatrix`] plus the platform/environment
/// settings shared by every cell.
pub struct ExperimentSuite {
    name: String,
    matrix: ScenarioMatrix,
    config: SimConfig,
    grid: ConfigGrid,
    transfer: Option<TransferModel>,
    run_seconds: f64,
    parallel: bool,
}

impl ExperimentSuite {
    /// A suite named `name` (the artifact basename: `BENCH_<name>.json`)
    /// over `matrix`, with the standard platform configuration.
    pub fn new(name: impl Into<String>, matrix: ScenarioMatrix) -> Self {
        ExperimentSuite {
            name: name.into(),
            matrix,
            config: standard_config(),
            grid: ConfigGrid::default(),
            transfer: None,
            run_seconds: RUN_SECONDS,
            parallel: true,
        }
    }

    /// Replaces the platform configuration template. The per-run seed
    /// still comes from the matrix's seed axis.
    pub fn with_sim_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the configuration grid of every cell's environment
    /// (ablations restrict it, overhead sweeps enlarge it).
    pub fn with_grid(mut self, grid: ConfigGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Replaces every cell environment's data-transfer tariffs
    /// (transfer-bound sweeps crank the remote path to make data
    /// movement, not compute, the bottleneck).
    pub fn with_transfer(mut self, transfer: TransferModel) -> Self {
        self.transfer = Some(transfer);
        self
    }

    /// Sets the simulated arrival window per run, seconds.
    pub fn with_run_seconds(mut self, seconds: f64) -> Self {
        self.run_seconds = seconds;
        self
    }

    /// Forces single-threaded execution (the determinism test compares
    /// this against the default parallel mode).
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// The suite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Executes every cell and collects the records in cell order.
    ///
    /// Environments (one per distinct SLO class) and workloads (one per
    /// distinct scenario × traffic × popularity × seed) are materialised
    /// once and shared by all runs — both for speed and so that paired
    /// cells provably consume identical inputs.
    pub fn run(&self) -> Sweep {
        let cells = self.matrix.cells();

        let mut envs: HashMap<SloClass, SimEnv> = HashMap::new();
        // Popularity carries an f64 Zipf exponent, so the workload table
        // keys on its display label instead of the value itself.
        let mut workloads: HashMap<(Scenario, TrafficShape, String, u64), Workload> =
            HashMap::new();
        for cell in &cells {
            envs.entry(cell.scenario.slo).or_insert_with(|| {
                let mut env = SimEnv::with_grid(cell.scenario.slo, self.grid.clone());
                if let Some(t) = self.transfer {
                    env.transfer = t;
                }
                env
            });
            workloads
                .entry((
                    cell.scenario,
                    cell.traffic,
                    cell.popularity_label(),
                    cell.seed,
                ))
                .or_insert_with(|| {
                    workload_for_shape_with(
                        cell.scenario,
                        cell.traffic,
                        cell.seed,
                        cell.popularity,
                        self.run_seconds,
                    )
                });
        }

        let run_one = |spec: RunSpec| -> SweepResult {
            let env = &envs[&spec.scenario.slo];
            let workload = &workloads[&(
                spec.scenario,
                spec.traffic,
                spec.popularity_label(),
                spec.seed,
            )];
            let mut cfg = SimConfig {
                seed: spec.seed,
                ..self.config.clone()
            };
            if let Some(case) = &spec.cluster {
                cfg.cluster = Some(case.spec.clone());
                // A case without its own churn inherits any plan set via
                // `with_sim_config` rather than silently cancelling it.
                if !case.churn.is_empty() {
                    cfg.churn = case.churn.clone();
                }
            }
            let mut sched = spec.scheduler.build_for(&SchedContext {
                env,
                cluster: cfg.cluster.as_ref(),
                workload,
            });
            let result = run_simulation(
                env,
                cfg,
                sched.as_mut(),
                workload,
                &spec.scenario.to_string(),
            );
            SweepResult {
                suite: self.name.clone(),
                scheduler: spec.scheduler.name().to_string(),
                scenario: spec.scenario,
                cluster: spec.cluster_label().to_string(),
                traffic: spec.traffic,
                popularity: spec.popularity_label(),
                seed: spec.seed,
                result,
            }
        };

        let results: Vec<SweepResult> = if self.parallel && cells.len() > 1 {
            cells.into_par_iter().map(run_one).collect()
        } else {
            cells.into_iter().map(run_one).collect()
        };

        Sweep {
            suite: self.name.clone(),
            run_seconds: self.run_seconds,
            results,
        }
    }
}

/// One structured record of a sweep: the cell coordinates plus the full
/// simulation result.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Owning suite name.
    pub suite: String,
    /// Scheduler label.
    pub scheduler: String,
    /// SLO/workload pairing.
    pub scenario: Scenario,
    /// Cluster-case label ("default" = the suite's platform cluster).
    pub cluster: String,
    /// Traffic shape of the cell's arrival stream.
    pub traffic: TrafficShape,
    /// Popularity-skew label of the cell's arrival stream ("uniform"
    /// when the matrix never set the axis).
    pub popularity: String,
    /// The cell's seed.
    pub seed: u64,
    /// Full simulation metrics.
    pub result: ExperimentResult,
}

impl SweepResult {
    /// The record as a JSON object. Wall-clock fields
    /// (`wall_overhead_ms`) are deliberately excluded: every field here
    /// is a pure function of the cell coordinates, so records are
    /// bit-identical across parallel/serial execution and across hosts.
    pub fn to_json(&self) -> Value {
        let r = &self.result;
        let mut o = Map::new();
        o.insert("scheduler", self.scheduler.as_str());
        o.insert("slo", self.scenario.slo.to_string());
        o.insert("workload", self.scenario.workload.to_string());
        o.insert("scenario", self.scenario.to_string());
        o.insert("cluster", self.cluster.as_str());
        o.insert("traffic", self.traffic.to_string());
        // Presence-gated: uniform-popularity documents (every artifact
        // committed before the skew axis existed) stay byte-stable.
        if self.popularity != "uniform" {
            o.insert("popularity", self.popularity.as_str());
        }
        o.insert("seed", self.seed);
        o.insert("arrivals", r.arrivals);
        o.insert("completed", r.total_completed());
        o.insert("avg_hit_rate", r.avg_hit_rate());
        o.insert("overall_hit_rate", r.overall_hit_rate());
        o.insert("total_cost_cents", r.total_cost_cents());
        o.insert("cost_per_invocation_cents", r.cost_per_invocation_cents());
        o.insert("config_miss_rate", r.config_miss_rate());
        o.insert("cold_start_rate", r.cold_start_rate());
        o.insert("locality_rate", r.locality_rate());
        o.insert("shed_rate", r.shed_rate());
        o.insert("shed_invocations", r.shed_invocations);
        o.insert("queues_deferred", r.scheduler_stats.policy.queues_deferred);
        o.insert("mean_overhead_ms", r.mean_overhead_ms());
        o.insert("searches", r.scheduler_stats.searches);
        o.insert("plan_cache_hits", r.scheduler_stats.plan_cache_hits);
        o.insert("plan_cache_misses", r.scheduler_stats.plan_cache_misses);
        o.insert(
            "plan_cache_hit_rate",
            r.scheduler_stats.plan_cache_hit_rate(),
        );
        // Pinned-tier counters appear only when a hybrid scheduler's
        // static tier actually fired (pure ESG and empty-plan hybrid
        // documents stay byte-stable).
        if r.scheduler_stats.pinned != esg_sim::PinnedStats::default() {
            let p = &r.scheduler_stats.pinned;
            o.insert("pinned_hits", p.hits);
            o.insert("pinned_misses", p.misses);
            o.insert("pinned_repins", p.repins);
        }
        o.insert("vcpu_utilisation", r.vcpu_utilisation);
        o.insert("vgpu_utilisation", r.vgpu_utilisation);
        o.insert("makespan_ms", r.makespan_ms);
        // Data-plane telemetry appears only when the cell ran with a
        // contended GPU data plane: scalar-model documents (and every
        // artifact committed before the plane existed) stay byte-stable.
        if r.transfers != TransferSummary::default() {
            let t = &r.transfers;
            o.insert("transfers_started", t.started);
            o.insert("transfers_completed", t.completed);
            o.insert("transfers_queued", t.queued);
            o.insert("transfers_batched_small", t.batched_small);
            o.insert("transfer_replans", t.replans);
            o.insert("transfer_total_mb", t.total_mb);
            // Only server-topology clusters route bytes through ToR
            // pools; flat-cluster documents keep their exact shape.
            if t.cross_server_mb > 0.0 {
                o.insert("transfer_cross_server_mb", t.cross_server_mb);
            }
            o.insert("transfer_peak_active", u64::from(t.peak_active));
            o.insert("transfer_peak_staging_mb", t.peak_staging_mb);
        }
        let apps: Vec<Value> = r
            .apps
            .iter()
            .map(|a| {
                let mut m = Map::new();
                m.insert("name", a.name.as_str());
                m.insert("completed", a.completed);
                m.insert("slo_hits", a.slo_hits);
                m.insert("hit_rate", a.hit_rate());
                m.insert("slo_ms", a.slo_ms);
                m.insert("cost_cents", a.cost_cents);
                m.insert("mean_latency_ms", a.mean_latency_ms());
                m.insert("p50_ms", a.latency_percentile(50.0).unwrap_or(0.0));
                m.insert("p95_ms", a.latency_percentile(95.0).unwrap_or(0.0));
                Value::Object(m)
            })
            .collect();
        o.insert("apps", apps);
        Value::Object(o)
    }

    /// The record's CSV row, matching [`Sweep::CSV_HEADER`].
    pub fn csv_row(&self) -> String {
        let r = &self.result;
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3}",
            self.suite,
            self.scheduler,
            self.scenario.slo,
            self.scenario.workload,
            self.scenario,
            self.cluster,
            self.traffic,
            self.popularity,
            self.seed,
            r.arrivals,
            r.total_completed(),
            r.avg_hit_rate(),
            r.overall_hit_rate(),
            r.total_cost_cents(),
            r.cost_per_invocation_cents(),
            r.config_miss_rate(),
            r.cold_start_rate(),
            r.locality_rate(),
            r.shed_rate(),
            r.mean_overhead_ms(),
            r.vcpu_utilisation,
            r.vgpu_utilisation,
            r.makespan_ms,
        )
    }

    /// The underlying result with non-deterministic (wall-clock) fields
    /// cleared — the canonical form the determinism test compares.
    pub fn canonical_result(&self) -> ExperimentResult {
        let mut r = self.result.clone();
        r.wall_overhead_ms.clear();
        r
    }
}

/// The collected output of one [`ExperimentSuite::run`], in matrix cell
/// order.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Suite name (artifact basename).
    pub suite: String,
    /// Simulated arrival window per run, seconds.
    pub run_seconds: f64,
    /// One record per cell, in cell order.
    pub results: Vec<SweepResult>,
}

impl Sweep {
    /// Header line for [`SweepResult::csv_row`].
    pub const CSV_HEADER: &'static str = "suite,scheduler,slo,workload,scenario,cluster,traffic,\
popularity,seed,arrivals,completed,avg_hit_rate,overall_hit_rate,total_cost_cents,\
cost_per_invocation_cents,config_miss_rate,cold_start_rate,locality_rate,\
shed_rate,mean_overhead_ms,vcpu_utilisation,vgpu_utilisation,makespan_ms";

    /// The whole sweep as one JSON document.
    pub fn to_json(&self) -> Value {
        let mut o = Map::new();
        o.insert("suite", self.suite.as_str());
        o.insert("run_seconds", self.run_seconds);
        o.insert("cells", self.results.len() as u64);
        let runs: Vec<Value> = self.results.iter().map(SweepResult::to_json).collect();
        o.insert("runs", runs);
        Value::Object(o)
    }

    /// Writes `BENCH_<suite>.json` and `BENCH_<suite>.csv` under the
    /// results directory (best effort, like all artifact emission).
    pub fn write_artifacts(&self) {
        crate::emit::write_json(&format!("BENCH_{}", self.suite), &self.to_json());
        let rows: Vec<String> = self.results.iter().map(SweepResult::csv_row).collect();
        crate::emit::write_csv(&format!("BENCH_{}", self.suite), Self::CSV_HEADER, &rows);
    }

    /// Paper-style Markdown tables rendered from the same document that
    /// backs `BENCH_<suite>.json`.
    pub fn to_markdown(&self) -> String {
        crate::emit::render_bench_markdown(&self.to_json())
    }

    /// Splices [`to_markdown`](Self::to_markdown) into `EXPERIMENTS.md`
    /// between this suite's markers (best effort).
    pub fn write_experiments_section(&self) {
        crate::emit::update_experiments_md(&self.suite, &self.to_markdown());
    }

    /// The first record for `(scheduler, scenario)`, any seed.
    pub fn find(&self, scheduler: &str, scenario: Scenario) -> Option<&SweepResult> {
        self.results
            .iter()
            .find(|c| c.scheduler == scheduler && c.scenario == scenario)
    }

    /// All records of one scenario, in cell order.
    pub fn for_scenario(&self, scenario: Scenario) -> impl Iterator<Item = &SweepResult> {
        self.results.iter().filter(move |c| c.scenario == scenario)
    }

    /// A canonical dump of every record with non-deterministic fields
    /// removed; two sweeps of the same suite are equivalent iff their
    /// digests are equal (f64 Debug formatting round-trips exactly).
    pub fn canonical_digest(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for c in &self.results {
            writeln!(
                out,
                "{}|{}|{}|{}|{}|{}|{:?}",
                c.scheduler,
                c.scenario,
                c.cluster,
                c.traffic,
                c.popularity,
                c.seed,
                c.canonical_result()
            )
            .expect("writing to String cannot fail");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_expansion_order_and_size() {
        let m = ScenarioMatrix::new()
            .schedulers([SchedKind::Esg, SchedKind::Infless])
            .cross(
                [SloClass::Strict, SloClass::Relaxed],
                [WorkloadClass::Light, WorkloadClass::Heavy],
            )
            .seeds([1, 2, 3]);
        assert_eq!(m.len(), 24);
        let cells = m.cells();
        assert_eq!(cells.len(), 24);
        // Scenario-major, scheduler-minor, seed-innermost.
        assert_eq!(cells[0].scheduler.name(), "ESG");
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
        assert_eq!(cells[3].scheduler.name(), "INFless");
        assert_eq!(cells[6].scenario.workload, WorkloadClass::Heavy);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn default_seed_axis_is_shared_seed() {
        let m = ScenarioMatrix::new()
            .schedulers([SchedKind::Esg])
            .scenarios([Scenario::STRICT_LIGHT]);
        assert_eq!(m.cells()[0].seed, SEED);
    }

    #[test]
    fn sched_spec_from_kind_builds_matching_scheduler() {
        let spec: SchedSpec = SchedKind::Orion.into();
        assert_eq!(spec.name(), "Orion");
        assert_eq!(spec.build().name(), "Orion");
    }

    #[test]
    fn paper_matrix_is_the_headline_grid() {
        let m = ScenarioMatrix::paper();
        assert_eq!(m.len(), 15);
    }

    #[test]
    fn csv_header_matches_row_arity() {
        let cols = Sweep::CSV_HEADER.split(',').count();
        let row = SweepResult {
            suite: "t".into(),
            scheduler: "ESG".into(),
            scenario: Scenario::STRICT_LIGHT,
            cluster: "default".into(),
            traffic: TrafficShape::Steady,
            popularity: "uniform".into(),
            seed: 1,
            result: ExperimentResult::default(),
        }
        .csv_row();
        assert_eq!(row.split(',').count(), cols);
    }

    #[test]
    fn cluster_and_traffic_axes_multiply_and_label() {
        let m = ScenarioMatrix::new()
            .schedulers([SchedKind::Esg])
            .scenarios([Scenario::MODERATE_NORMAL])
            .clusters([
                ClusterCase::new(ClusterSpec::paper()),
                ClusterCase::new(ClusterSpec::skewed())
                    .with_churn(ChurnPlan::none().drain(1000.0, esg_model::NodeId(0))),
            ])
            .traffic([TrafficShape::Steady, TrafficShape::Bursty]);
        assert_eq!(m.len(), 4);
        let cells = m.cells();
        assert_eq!(cells[0].cluster_label(), "paper-16xa100");
        assert_eq!(cells[0].traffic, TrafficShape::Steady);
        assert_eq!(cells[1].traffic, TrafficShape::Bursty);
        assert_eq!(cells[2].cluster_label(), "skewed+churn");
        assert!(!cells[2].cluster.as_ref().unwrap().churn.is_empty());
    }

    #[test]
    fn cluster_case_without_churn_inherits_suite_churn() {
        // A churn plan set via with_sim_config must survive a cluster
        // axis whose cases carry no plan of their own.
        let suite = ExperimentSuite::new(
            "churn_inherit",
            ScenarioMatrix::new()
                .schedulers([SchedKind::Esg])
                .scenarios([Scenario::RELAXED_HEAVY])
                .clusters([ClusterCase::new(ClusterSpec::paper())]),
        )
        .with_sim_config(SimConfig {
            churn: ChurnPlan::none().drain(50.0, esg_model::NodeId(3)),
            ..SimConfig::default()
        })
        .with_run_seconds(2.0);
        let sweep = suite.run();
        let nodes = &sweep.results[0].result.nodes;
        assert_eq!(nodes.iter().filter(|n| !n.online).count(), 1);
    }

    #[test]
    fn popularity_axis_multiplies_and_labels() {
        let m = ScenarioMatrix::new()
            .schedulers([SchedKind::Esg])
            .scenarios([Scenario::MODERATE_NORMAL])
            .popularity([Popularity::Uniform, Popularity::Zipf { s: 1.5 }]);
        assert_eq!(m.len(), 2);
        let cells = m.cells();
        assert_eq!(cells[0].popularity_label(), "uniform");
        assert_eq!(cells[1].popularity_label(), "zipf-1.5");
    }

    #[test]
    fn contextual_spec_sees_the_cell_inputs() {
        // The factory must receive exactly the cluster and workload the
        // cell runs; a context-free build() on it is a programming error.
        let spec = SchedSpec::contextual("ctx", |ctx| {
            assert_eq!(
                ctx.cluster.map(|c| c.name.as_str()),
                Some("paper-16xa100"),
                "factory saw the wrong cluster"
            );
            assert!(!ctx.workload.is_empty());
            Box::new(esg_core::EsgScheduler::new())
        });
        let sweep = ExperimentSuite::new(
            "ctx_probe",
            ScenarioMatrix::new()
                .schedulers([spec])
                .scenarios([Scenario::MODERATE_NORMAL])
                .clusters([ClusterCase::new(ClusterSpec::paper())]),
        )
        .with_run_seconds(2.0)
        .run();
        assert_eq!(sweep.results[0].scheduler, "ctx");
    }

    #[test]
    #[should_panic(expected = "needs build_for")]
    fn contextless_build_of_a_contextual_spec_panics() {
        SchedSpec::contextual("ctx", |_| Box::new(esg_core::EsgScheduler::new())).build();
    }

    #[test]
    fn default_axes_are_singletons() {
        let m = ScenarioMatrix::new()
            .schedulers([SchedKind::Esg])
            .scenarios([Scenario::STRICT_LIGHT]);
        assert_eq!(m.len(), 1);
        let cell = &m.cells()[0];
        assert!(cell.cluster.is_none());
        assert_eq!(cell.cluster_label(), "default");
        assert_eq!(cell.traffic, TrafficShape::Steady);
    }
}
