//! Text/CSV rendering of the live queue dashboard: the
//! [`HealthSnapshot`] series a [`esg_sim::QueueHealthMonitor`] cuts
//! while a run executes, formatted for a terminal or a plotting
//! pipeline.
//!
//! The monitor is the data layer (it lives in `esg-sim` next to the
//! event tap); this module is the presentation layer the example and
//! bench targets share. [`render_snapshot_text`] prints one rollup as a
//! fixed-width table, [`render_dashboard_text`] the whole series;
//! [`dashboard_csv_rows`] flattens the series into one row per
//! `(snapshot, queue)` for `write_csv`.

use esg_sim::HealthSnapshot;
use std::fmt::Write as _;

/// Renders one snapshot as a fixed-width text block: a headline with
/// the sampling instant, backlog total, and cumulative shard-commit
/// counters, then one row per queue.
pub fn render_snapshot_text(snap: &HealthSnapshot) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "t={:>9.0} ms  queues {:>3}  backlog {:>5}  |  shard rounds {} commits {} \
conflicts {} retries {}  |  transfers {} done {} q {} inflight {} ({:.0} MB)",
        snap.at_ms,
        snap.queues.len(),
        snap.total_backlog,
        snap.shard.rounds,
        snap.shard.commits,
        snap.shard.conflicts,
        snap.shard.retries,
        snap.transfers.started,
        snap.transfers.completed,
        snap.transfers.queued,
        snap.transfers.inflight,
        snap.transfers.total_mb,
    )
    .expect("writing to String cannot fail");
    out.push_str(
        "  queue  shard  backlog  arrivals  dispatched  done   shed  mean-wait  max-wait\n",
    );
    for q in &snap.queues {
        writeln!(
            out,
            "  {:<6} {:>5} {:>8} {:>9} {:>11} {:>5} {:>6} {:>8.1}ms {:>7.1}ms",
            format!("{}.{}", q.key.app.0, q.key.stage),
            q.shard,
            q.backlog,
            q.counters.arrivals,
            q.counters.dispatched_jobs,
            q.counters.completions,
            q.counters.shed_jobs,
            q.mean_wait_ms(),
            q.max_wait_ms(),
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Renders a whole snapshot series, one [`render_snapshot_text`] block
/// per snapshot separated by blank lines.
pub fn render_dashboard_text(snapshots: &[HealthSnapshot]) -> String {
    let mut out = String::new();
    for (i, snap) in snapshots.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_snapshot_text(snap));
    }
    out
}

/// Header line for [`dashboard_csv_rows`], matching `write_csv`'s
/// `header` parameter.
pub fn dashboard_csv_header() -> &'static str {
    "at_ms,app,stage,shard,backlog,arrivals,dispatches,dispatched_jobs,completions,\
shed_jobs,mean_wait_ms,max_wait_ms,shard_commits,shard_conflicts,shard_retries,\
transfers_started,transfers_queued,transfers_completed,transfers_inflight,transfer_mb"
}

/// Flattens a snapshot series into one CSV row per `(snapshot, queue)`.
/// The snapshot-level shard counters repeat on every row of their
/// snapshot so any row slice stays self-describing.
pub fn dashboard_csv_rows(snapshots: &[HealthSnapshot]) -> Vec<String> {
    let mut rows = Vec::new();
    for snap in snapshots {
        for q in &snap.queues {
            rows.push(format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                snap.at_ms,
                q.key.app.0,
                q.key.stage,
                q.shard,
                q.backlog,
                q.counters.arrivals,
                q.counters.dispatches,
                q.counters.dispatched_jobs,
                q.counters.completions,
                q.counters.shed_jobs,
                q.mean_wait_ms(),
                q.max_wait_ms(),
                snap.shard.commits,
                snap.shard.conflicts,
                snap.shard.retries,
                snap.transfers.started,
                snap.transfers.queued,
                snap.transfers.completed,
                snap.transfers.inflight,
                snap.transfers.total_mb,
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{AppId, Config, InvocationId, NodeId};
    use esg_sim::{QueueHealthMonitor, QueueKey, SchedulerEvent};

    fn monitored_snapshots() -> Vec<HealthSnapshot> {
        let mut mon = QueueHealthMonitor::new(100.0, 2);
        let k = QueueKey {
            app: AppId(3),
            stage: 1,
        };
        for i in 0..2u64 {
            mon.observe(&SchedulerEvent::JobArrived {
                key: k,
                invocation: InvocationId(i),
                now_ms: 10.0,
            });
        }
        let invs = [InvocationId(0)];
        mon.observe(&SchedulerEvent::Dispatched {
            key: k,
            invocations: &invs,
            config: Config::MIN,
            node: NodeId(0),
            now_ms: 40.0,
        });
        mon.observe(&SchedulerEvent::ShardCommit {
            shard: 0,
            commits: 1,
            conflicts: 1,
            retries: 1,
            now_ms: 40.0,
        });
        mon.finish(150.0)
    }

    #[test]
    fn text_dashboard_renders_headline_and_queue_rows() {
        let snaps = monitored_snapshots();
        let text = render_dashboard_text(&snaps);
        // One block per snapshot (100 ms boundary + the 150 ms close).
        assert_eq!(text.matches("queues").count(), 2, "{text}");
        assert!(text.contains("backlog     1"), "{text}");
        assert!(text.contains("conflicts 1"), "{text}");
        // The queue row carries the 30 ms dispatch wait.
        assert!(text.contains("3.1"), "{text}");
        assert!(text.contains("30.0ms"), "{text}");
    }

    #[test]
    fn csv_rows_flatten_per_snapshot_per_queue() {
        let snaps = monitored_snapshots();
        let rows = dashboard_csv_rows(&snaps);
        assert_eq!(rows.len(), 2, "one tracked queue in each of 2 snapshots");
        assert_eq!(
            dashboard_csv_header().split(',').count(),
            rows[0].split(',').count(),
            "header and rows must agree on the column count"
        );
        // at_ms, app, stage, shard, backlog, arrivals, dispatches …
        assert!(rows[0].starts_with("100,3,1,"), "{}", rows[0]);
        assert!(rows[1].starts_with("150,3,1,"), "{}", rows[1]);
        // Shard counters land on every row of their snapshot, followed
        // by the (here idle) transfer rollup.
        assert!(rows[1].ends_with("1,1,1,0,0,0,0,0"), "{}", rows[1]);
    }

    #[test]
    fn transfer_counters_surface_in_text_and_csv() {
        let mut mon = QueueHealthMonitor::new(100.0, 2);
        let k = QueueKey {
            app: AppId(1),
            stage: 0,
        };
        mon.observe(&SchedulerEvent::JobArrived {
            key: k,
            invocation: InvocationId(0),
            now_ms: 5.0,
        });
        mon.observe(&SchedulerEvent::TransferStarted {
            node: NodeId(2),
            mb: 48.0,
            now_ms: 20.0,
        });
        mon.observe(&SchedulerEvent::TransferQueued {
            node: NodeId(2),
            mb: 16.0,
            now_ms: 25.0,
        });
        mon.observe(&SchedulerEvent::TransferCompleted {
            node: NodeId(2),
            mb: 48.0,
            now_ms: 60.0,
        });
        let snaps = mon.finish(150.0);
        let text = render_dashboard_text(&snaps);
        assert!(
            text.contains("transfers 1 done 1 q 1 inflight 0 (48 MB)"),
            "{text}"
        );
        let rows = dashboard_csv_rows(&snaps);
        assert!(rows[0].ends_with("1,1,1,0,48"), "{}", rows[0]);
    }

    #[test]
    fn empty_series_renders_empty() {
        assert_eq!(render_dashboard_text(&[]), "");
        assert!(dashboard_csv_rows(&[]).is_empty());
    }
}
