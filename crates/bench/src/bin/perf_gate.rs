//! `perf-gate`: the CI scheduler-overhead regression check.
//!
//! Compares a fresh `BENCH_overhead.json` against the committed baseline
//! and fails (exit 1) when a case's median regressed beyond the
//! tolerance, printing a per-case delta table (also appended to
//! `$GITHUB_STEP_SUMMARY` when set, so the job summary shows it).
//!
//! Because CI runners and developer machines differ in absolute speed,
//! medians are *normalized by default*: every case's `fresh/baseline`
//! ratio is divided by the **median ratio** across the gated cases, so a
//! uniformly slower machine cancels out and only shape changes — one
//! case slowing relative to the others, exactly what a code regression
//! looks like — count against the gate. `--absolute` compares raw
//! nanoseconds instead.
//!
//! Shared-runner wall clocks are noisy even after normalization
//! (observed per-case spread on a busy container: ±50%), so a single
//! case beyond the tolerance is not failure. The verdict combines three
//! robust criteria:
//!
//! * **hard limit** — any case beyond `--hard-tolerance` (default
//!   +100%, i.e. 2× normalized) fails outright: targeted regressions
//!   (dropping a pruning blade, breaking the scratch reuse) blow far
//!   past it, noise does not;
//! * **breadth** — more than `--max-regressed-fraction` (default 25%)
//!   of gated cases beyond `--tolerance` (default ±30%) fails: systemic
//!   slowdowns move most of the distribution, noise moves a few cases;
//! * **warm speedup** — the fresh run's *median* warm/cold pair must
//!   show at least `--min-speedup` (default 5×) amortisation; this one
//!   is within-run, so runner speed cannot perturb it (and the median —
//!   not the minimum — is gated because the smallest pair divides two
//!   near-timer-granularity numbers).
//!
//! Cases whose baseline median sits below `--noise-floor-ns` (default
//! 1 µs) are reported but never gated: at ~150 ns a warm cache hit is
//! within timer granularity. The warm path is guarded by the speedup
//! bound instead.
//!
//! ```sh
//! cargo run --release -p esg-bench --bin perf-gate -- \
//!     --baseline bench_results/BENCH_overhead.json \
//!     --fresh bench_results_fresh/BENCH_overhead.json \
//!     --tolerance 0.30
//! ```

use serde_json::Value;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;

struct Args {
    baseline: String,
    fresh: String,
    tolerance: f64,
    hard_tolerance: f64,
    max_regressed_fraction: f64,
    min_speedup: f64,
    noise_floor_ns: f64,
    absolute: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: "bench_results/BENCH_overhead.json".into(),
        fresh: String::new(),
        tolerance: 0.30,
        hard_tolerance: 1.0,
        max_regressed_fraction: 0.25,
        min_speedup: 5.0,
        noise_floor_ns: 1_000.0,
        absolute: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match a.as_str() {
            "--baseline" => args.baseline = value("--baseline")?,
            "--fresh" => args.fresh = value("--fresh")?,
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?
            }
            "--min-speedup" => {
                args.min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("bad --min-speedup: {e}"))?
            }
            "--hard-tolerance" => {
                args.hard_tolerance = value("--hard-tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --hard-tolerance: {e}"))?
            }
            "--max-regressed-fraction" => {
                args.max_regressed_fraction = value("--max-regressed-fraction")?
                    .parse()
                    .map_err(|e| format!("bad --max-regressed-fraction: {e}"))?
            }
            "--noise-floor-ns" => {
                args.noise_floor_ns = value("--noise-floor-ns")?
                    .parse()
                    .map_err(|e| format!("bad --noise-floor-ns: {e}"))?
            }
            "--absolute" => args.absolute = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.fresh.is_empty() {
        return Err("--fresh <path> is required".into());
    }
    Ok(args)
}

/// `case label → median_ns` of one artifact.
fn medians(doc: &Value) -> BTreeMap<String, f64> {
    doc.get("cases")
        .and_then(Value::as_array)
        .map(|cases| {
            cases
                .iter()
                .filter_map(|c| {
                    let label = c.get("case")?.as_str()?.to_string();
                    let m = c.get("median_ns")?.as_f64()?;
                    (m > 0.0).then_some((label, m))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Median of an unsorted, non-empty slice (by value; averages the middle
/// pair on even counts).
fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Warm/cold median ratios across the artifact's case pairs, ascending.
/// The *median* pair is the gated statistic: the smallest pair divides a
/// ~1 µs cold case by a ~150 ns warm lookup, both near timer
/// granularity, so gating on the minimum would fail on clock jitter.
fn warm_speedups(med: &BTreeMap<String, f64>) -> Vec<f64> {
    let mut out: Vec<f64> = med
        .iter()
        .filter_map(|(label, &cold)| {
            let param = label.strip_prefix("overhead/cold/")?;
            let warm = med.get(&format!("overhead/warm/{param}"))?;
            Some(cold / warm)
        })
        .collect();
    out.sort_by(f64::total_cmp);
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf-gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (base_doc, fresh_doc) = match (load(&args.baseline), load(&args.fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for r in [b, f] {
                if let Err(e) = r {
                    eprintln!("perf-gate: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };
    let base = medians(&base_doc);
    let fresh = medians(&fresh_doc);
    let shared: Vec<&String> = base.keys().filter(|k| fresh.contains_key(*k)).collect();
    if shared.is_empty() {
        eprintln!("perf-gate: no shared cases between baseline and fresh run");
        return ExitCode::FAILURE;
    }

    // Hardware normalisation: divide every fresh/baseline ratio by the
    // median ratio over the gated (above-noise-floor) cases — no-op
    // under --absolute. The median of ratios is robust to the handful of
    // outlier cases that shared-runner noise produces, which a geometric
    // mean of levels is not.
    let gated: Vec<&&String> = shared
        .iter()
        .filter(|k| base[**k] >= args.noise_floor_ns)
        .collect();
    let scale = if args.absolute || gated.is_empty() {
        1.0
    } else {
        median(gated.iter().map(|k| fresh[**k] / base[**k]).collect())
    };

    let mut table = String::from(
        "| case | baseline (µs) | fresh (µs) | Δ normalized | status |\n\
|---|---:|---:|---:|---|\n",
    );
    let mut hard_regressions = 0usize;
    let mut soft_regressions = 0usize;
    for k in &shared {
        let b = base[*k];
        let f = fresh[*k];
        let delta = (f / b) / scale - 1.0;
        let status = if b < args.noise_floor_ns {
            "below noise floor"
        } else if delta > args.hard_tolerance {
            hard_regressions += 1;
            "REGRESSED (hard)"
        } else if delta > args.tolerance {
            soft_regressions += 1;
            "regressed"
        } else if delta < -args.tolerance {
            "improved"
        } else {
            "ok"
        };
        table.push_str(&format!(
            "| {k} | {:.2} | {:.2} | {:+.1}% | {status} |\n",
            b / 1_000.0,
            f / 1_000.0,
            delta * 100.0,
        ));
    }
    let allowed_soft = (args.max_regressed_fraction * gated.len() as f64).floor() as usize;

    let speedups = warm_speedups(&fresh);
    let speedup = (!speedups.is_empty()).then(|| median(speedups.clone()));
    let speedup_min = speedups.first().copied();
    let speedup_ok = speedup.is_none_or(|s| s >= args.min_speedup);
    let mode = if args.absolute {
        "absolute"
    } else {
        "median-ratio-normalized"
    };
    let verdict = if hard_regressions == 0 && soft_regressions <= allowed_soft && speedup_ok {
        "PASS"
    } else {
        "FAIL"
    };
    let summary = format!(
        "## perf-gate: {verdict}\n\n\
{} gated cases ({mode}, run-speed scale {scale:.3}): {hard_regressions} beyond \
+{:.0}% (hard limit), {soft_regressions} beyond ±{:.0}% (≤{allowed_soft} tolerated \
as runner noise). Median warm-cache speedup: {} (required ≥{:.0}×; smallest pair {}).\
\n\n{table}",
        gated.len(),
        args.hard_tolerance * 100.0,
        args.tolerance * 100.0,
        speedup.map_or("n/a".to_string(), |s| format!("{s:.0}×")),
        args.min_speedup,
        speedup_min.map_or("n/a".to_string(), |s| format!("{s:.0}×")),
    );
    println!("{summary}");
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
        {
            let _ = writeln!(f, "{summary}");
        }
    }
    if verdict == "PASS" {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
