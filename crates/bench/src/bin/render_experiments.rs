//! `render-experiments`: regenerates every marked `EXPERIMENTS.md`
//! section from the committed `bench_results/BENCH_<suite>.json`
//! artifacts.
//!
//! CI runs this followed by `git diff --exit-code EXPERIMENTS.md` as a
//! drift check: the tables between `<!-- BENCH:<suite>:begin/end -->`
//! markers must always be exactly what the current renderer produces
//! from the committed artifacts — hand-edited numbers or a renderer
//! change without a regenerated report fail the build.
//!
//! Only suites whose markers already exist in the report are touched
//! (artifacts without a section, e.g. `BENCH_table4.json`, are listed as
//! skipped); sections are never appended here, so the tool is idempotent
//! over a clean tree.

use esg_bench::{
    experiments_md_path, render_bench_markdown, render_overhead_markdown, render_replay_markdown,
    render_scale_markdown, results_dir,
};
use serde_json::Value;
use std::process::ExitCode;

fn main() -> ExitCode {
    let dir = results_dir();
    let report = experiments_md_path();
    let current = match std::fs::read_to_string(&report) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("render-experiments: cannot read {}: {e}", report.display());
            return ExitCode::FAILURE;
        }
    };

    let mut entries: Vec<_> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd.filter_map(Result::ok).map(|e| e.path()).collect(),
        Err(e) => {
            eprintln!("render-experiments: cannot list {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    entries.sort();

    let mut updated = 0usize;
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(suite) = name
            .strip_prefix("BENCH_")
            .and_then(|n| n.strip_suffix(".json"))
        else {
            continue;
        };
        if !current.contains(&format!("<!-- BENCH:{suite}:begin -->")) {
            eprintln!("[md] suite {suite}: no markers in report, skipping");
            continue;
        }
        let doc: Value = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
        {
            Ok(d) => d,
            Err(e) => {
                eprintln!("render-experiments: cannot load {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        // Suites carrying sweep records render as scheduler tables; the
        // overhead and scale microbenches have their own shapes.
        let markdown = if suite == "overhead" {
            render_overhead_markdown(&doc)
        } else if suite == "scale" {
            render_scale_markdown(&doc)
        } else if suite == "replay" {
            render_replay_markdown(&doc)
        } else {
            render_bench_markdown(&doc)
        };
        if esg_bench::update_experiments_md(suite, &markdown).is_none() {
            eprintln!("render-experiments: failed to update suite {suite}");
            return ExitCode::FAILURE;
        }
        updated += 1;
    }
    println!("regenerated {updated} section(s) in {}", report.display());
    ExitCode::SUCCESS
}
