//! Figure 10 — ESG's scheduling-overhead distribution per scenario
//! (function group size 3): box statistics of the per-decision simulated
//! overhead, plus the real Rust wall time for honesty. A thin declaration
//! over the sweep engine (ESG × the three paper scenarios).

use esg_bench::{section, write_csv, ExperimentSuite, ScenarioMatrix, SchedKind};
use esg_model::Scenario;

fn main() {
    section("Figure 10: ESG scheduling overhead distribution (group size 3)");
    let sweep = ExperimentSuite::new(
        "fig10",
        ScenarioMatrix::new()
            .schedulers([SchedKind::Esg])
            .scenarios(Scenario::all()),
    )
    .run();
    sweep.write_artifacts();

    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "setting", "min", "q1", "median", "q3", "max", "mean", "wall mean"
    );
    let mut csv = Vec::new();
    for cell in &sweep.results {
        let r = &cell.result;
        // Fig. 10 plots the search overhead of real decisions; filter the
        // cheap batching-hold re-checks, which are timer pokes.
        let searches: Vec<f64> = r
            .overhead_ms
            .iter()
            .copied()
            .filter(|&o| o > 0.25)
            .collect();
        let b = esg_model::BoxStats::from(&searches).expect("decisions recorded");
        let wall_mean = r.wall_overhead_ms.iter().sum::<f64>() / r.wall_overhead_ms.len() as f64;
        println!(
            "{:<18} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.3}ms",
            cell.scenario.to_string(),
            b.min,
            b.q1,
            b.median,
            b.q3,
            b.max,
            b.mean,
            wall_mean
        );
        csv.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.5}",
            cell.scenario, b.min, b.q1, b.median, b.q3, b.max, b.mean, wall_mean
        ));
    }
    println!(
        "\npaper shape: overhead below 10 ms in all settings and growing with SLO\n\
         relaxation (looser targets prune less). The 'wall mean' column is this\n\
         Rust implementation's true per-decision time."
    );
    write_csv(
        "fig10",
        "setting,min_ms,q1_ms,median_ms,q3_ms,max_ms,mean_ms,wall_mean_ms",
        &csv,
    );
}
