//! Figure 10 — ESG's scheduling-overhead distribution per scenario
//! (function group size 3): box statistics of the per-decision simulated
//! overhead, plus the real Rust wall time for honesty.

use esg_bench::{run_cell, section, write_csv, SchedKind};
use esg_model::Scenario;

fn main() {
    section("Figure 10: ESG scheduling overhead distribution (group size 3)");
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "setting", "min", "q1", "median", "q3", "max", "mean", "wall mean"
    );
    let mut csv = Vec::new();
    for scenario in Scenario::all() {
        let r = run_cell(SchedKind::Esg, scenario);
        // Fig. 10 plots the search overhead of real decisions; filter the
        // cheap batching-hold re-checks, which are timer pokes.
        let searches: Vec<f64> = r
            .overhead_ms
            .iter()
            .copied()
            .filter(|&o| o > 0.25)
            .collect();
        let b = esg_model::BoxStats::from(&searches).expect("decisions recorded");
        let wall_mean =
            r.wall_overhead_ms.iter().sum::<f64>() / r.wall_overhead_ms.len() as f64;
        println!(
            "{:<18} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.3}ms",
            scenario.to_string(),
            b.min,
            b.q1,
            b.median,
            b.q3,
            b.max,
            b.mean,
            wall_mean
        );
        csv.push(format!(
            "{scenario},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.5}",
            b.min, b.q1, b.median, b.q3, b.max, b.mean, wall_mean
        ));
    }
    println!(
        "\npaper shape: overhead below 10 ms in all settings and growing with SLO\n\
         relaxation (looser targets prune less). The 'wall mean' column is this\n\
         Rust implementation's true per-decision time."
    );
    write_csv(
        "fig10",
        "setting,min_ms,q1_ms,median_ms,q3_ms,max_ms,mean_ms,wall_mean_ms",
        &csv,
    );
}
