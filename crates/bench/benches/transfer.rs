//! Transfer-bound sweep: warm-affinity packing vs bandwidth-aware
//! packing on a cluster whose data fabric — not its compute — is the
//! bottleneck.
//!
//! The contended GPU data plane (`esg_sim::dataplane`) is enabled on
//! clusters whose PCIe pools are an order of magnitude narrower than
//! the paper's testbed, so inter-stage tensor movement — not the GPUs —
//! decides end-to-end latency. In this regime plain
//! `EsgCrossQueuePacking` is provably wrong: its warm-affinity bias
//! keeps piling work onto the nodes that already hold warm containers,
//! which are exactly the nodes whose ingress pools are saturated — every
//! extra co-located dispatch dilutes the fair share of every in-flight
//! transfer on that node. `BandwidthAwarePacking` folds live pool
//! occupancy into the same score (and defers queues whose predecessor
//! staging buffers are backed up), trading a warm start for an
//! uncontended pool when the transfer cost outweighs the init saving.
//!
//! Artifacts: `BENCH_transfer.{json,csv}` under `bench_results/`, plus
//! the Markdown tables spliced into `EXPERIMENTS.md` between the
//! `<!-- BENCH:transfer:begin/end -->` markers.
//!
//! `ESG_SMOKE=1` shortens the arrival window for CI smoke runs.

use esg_bench::{
    section, standard_config, ClusterCase, ExperimentSuite, ScenarioMatrix, SchedSpec, RUN_SECONDS,
    WARMUP_SECONDS,
};
use esg_core::{BandwidthAwarePacking, EsgCrossQueuePacking, EsgScheduler};
use esg_model::{ClusterSpec, NodeClass, Scenario, TrafficShape};
use esg_profile::TransferModel;
use esg_sim::{BandwidthPackingConfig, DataPlaneConfig, PolicyStack, SimConfig};

/// Paper-grade remote tariffs with a doubled intra-node rate: the
/// transfer-bound regime comes from the *pools* below, not from
/// inflating every scalar hand-off (which would just blow every SLO
/// and flatten the comparison).
fn transfer_bound_tariffs() -> TransferModel {
    TransferModel {
        local_base_ms: 0.2,
        local_ms_per_mb: 1.0,
        remote_base_ms: 5.0,
        remote_ms_per_mb: 10.0,
    }
}

/// The transfer-bound cluster axis: a uniformly narrow fabric (every
/// ingress pool saturates under co-located dispatch) and a skewed one
/// (half the nodes have paper-grade links, half are starved — the warm
/// set and the well-connected set diverge quickly).
fn cluster_cases() -> [ClusterCase; 2] {
    // 0.2 MB/ms ingress/egress sits just above the sweep's steady-state
    // per-node transfer demand: a solo flow runs at full rate, but a
    // handful of co-located dispatches drags every flow on the pool
    // below it — exactly the regime where dispatch *timing* decides
    // whether the fabric stays stable. 32 MB of staging is a few
    // aggregated batches deep, so sustained co-location backs the
    // buffer up and the policy's queue-depth signal actually fires.
    let narrow = NodeClass::a100()
        .with_bandwidth(0.2, 0.2, 300.0)
        .with_staging_mb(32.0);
    let wide = NodeClass::a100();
    [
        ClusterCase::new(ClusterSpec::new("narrow-fabric").with(narrow.clone(), 8)),
        ClusterCase::new(
            ClusterSpec::new("split-fabric")
                .with(narrow, 4)
                .with(wide, 4),
        ),
    ]
}

/// Warm-affinity-only packing vs the bandwidth-aware stage.
fn variants() -> [SchedSpec; 2] {
    [
        SchedSpec::new("ESG+pack", || {
            Box::new(
                EsgScheduler::new()
                    .with_policy(PolicyStack::new().with(EsgCrossQueuePacking::default())),
            )
        }),
        SchedSpec::new("ESG+bw-pack", || {
            // A heavier contention bias than the library default (0.6 vs
            // 0.1) and a deeper defer trigger (6 vs 4): the narrow pools
            // here are an order of magnitude tighter than the defaults
            // assume, and a too-eager defer threshold feeds back on
            // itself (defer → jobs pile up → staging never drains).
            Box::new(EsgScheduler::new().with_policy(PolicyStack::new().with(
                BandwidthAwarePacking::new(BandwidthPackingConfig {
                    contention_bias: 0.6,
                    defer_queue_depth: 6,
                    ..BandwidthPackingConfig::default()
                }),
            )))
        }),
    ]
}

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let run_seconds = if smoke { 3.0 } else { RUN_SECONDS };
    section(if smoke {
        "Transfer-bound packing: warm affinity vs bandwidth awareness (smoke mode)"
    } else {
        "Transfer-bound packing: warm affinity vs bandwidth awareness"
    });

    let matrix = ScenarioMatrix::new()
        .schedulers(variants())
        .scenarios([Scenario::MODERATE_NORMAL])
        .clusters(cluster_cases())
        .traffic([TrafficShape::Steady, TrafficShape::Bursty]);
    assert_eq!(matrix.len(), 2 * 2 * 2, "2 stacks × 2 clusters × 2 shapes");

    let warmup_seconds = WARMUP_SECONDS * run_seconds / RUN_SECONDS;
    let sweep = ExperimentSuite::new("transfer", matrix)
        .with_sim_config(SimConfig {
            warmup_exclude_ms: warmup_seconds * 1000.0,
            data_plane: Some(DataPlaneConfig::default()),
            ..standard_config()
        })
        .with_transfer(transfer_bound_tariffs())
        .with_run_seconds(run_seconds)
        .run();
    sweep.write_artifacts();
    if smoke {
        eprintln!("[md] smoke mode: skipping EXPERIMENTS.md update");
    } else {
        sweep.write_experiments_section();
    }

    for case in cluster_cases() {
        println!("\n--- cluster {} ---", case.name);
        println!(
            "{:<12} {:>8} {:>10} {:>10} {:>8} {:>9} {:>11}",
            "stack", "traffic", "SLO hit %", "transfers", "queued", "replans", "moved (MB)"
        );
        for cell in sweep.results.iter().filter(|c| c.cluster == case.name) {
            let r = &cell.result;
            println!(
                "{:<12} {:>8} {:>9.1}% {:>10} {:>8} {:>9} {:>11.0}",
                cell.scheduler,
                cell.traffic.to_string(),
                r.avg_hit_rate() * 100.0,
                r.transfers.started,
                r.transfers.queued,
                r.transfers.replans,
                r.transfers.total_mb,
            );
        }
    }

    // Every cell must actually exercise the data plane — a transfer
    // bench whose flows never contend would gate nothing.
    for cell in &sweep.results {
        assert!(
            cell.result.transfers.started > 0,
            "cell {}/{}/{} started no transfers",
            cell.scheduler,
            cell.cluster,
            cell.traffic
        );
        assert_eq!(
            cell.result.transfers.started, cell.result.transfers.completed,
            "transfers may be delayed, never dropped"
        );
    }

    // Acceptance guard (full runs only; 3 s smoke cells are too noisy):
    // bandwidth-aware packing must be no worse than warm-affinity-only
    // packing on any transfer-bound cell, and strictly better somewhere
    // — the existence proof that warm affinity alone mis-ranks under
    // fabric contention.
    // Cells where both stacks land at 0.0 % (the bursty narrow-fabric
    // cell saturates beyond rescue) tie exactly; every other cell must
    // not lose more than a noise-floor half point.
    let mut worst: f64 = f64::NEG_INFINITY;
    let mut best: f64 = f64::NEG_INFINITY;
    for cell in &sweep.results {
        if cell.scheduler != "ESG+bw-pack" {
            continue;
        }
        let plain = sweep
            .results
            .iter()
            .find(|c| {
                c.scheduler == "ESG+pack" && c.cluster == cell.cluster && c.traffic == cell.traffic
            })
            .expect("paired warm-affinity row exists for every cell");
        let gain = cell.result.avg_hit_rate() - plain.result.avg_hit_rate();
        worst = worst.max(-gain);
        best = best.max(gain);
    }
    println!(
        "\nbandwidth-aware vs warm-affinity packing: best gain {:+.2} pp, \
worst regression {:+.2} pp",
        best * 100.0,
        worst * 100.0
    );
    if !smoke {
        assert!(
            worst <= 0.005,
            "bandwidth-aware packing lost {:.2} pp of GSLO hit rate on a transfer-bound cell",
            worst * 100.0
        );
        assert!(
            best > 0.0,
            "bandwidth-aware packing never beat warm affinity — the scenario is not transfer-bound"
        );
    }
}
