//! Figure 11 — sensitivity to K (the configuration-priority-queue depth)
//! in the strict-light setting: search overhead, end-to-end latency, and
//! cost (normalized to K = 5). Declared as a sweep over `esg-k<K>`
//! scheduler variants.

use esg_bench::{section, write_csv, ExperimentSuite, ScenarioMatrix, SchedSpec};
use esg_core::EsgScheduler;
use esg_model::Scenario;

const KS: [usize; 6] = [1, 5, 10, 20, 40, 80];

fn main() {
    section("Figure 11: sensitivity to K (strict-light)");
    let sweep = ExperimentSuite::new(
        "fig11",
        ScenarioMatrix::new()
            .schedulers(KS.map(|k| {
                SchedSpec::new(format!("esg-k{k}"), move || {
                    Box::new(EsgScheduler::new().with_k(k))
                })
            }))
            .scenarios([Scenario::STRICT_LIGHT]),
    )
    .run();
    sweep.write_artifacts();

    println!(
        "{:<6} {:>14} {:>14} {:>12} {:>14}",
        "K", "overhead (ms)", "latency (ms)", "hit %", "cost vs K=5"
    );
    let rows: Vec<(usize, f64, f64, f64, f64)> = KS
        .iter()
        .zip(&sweep.results)
        .map(|(&k, cell)| {
            let r = &cell.result;
            let searches: Vec<f64> = r
                .overhead_ms
                .iter()
                .copied()
                .filter(|&o| o > 0.25)
                .collect();
            let ovh = searches.iter().sum::<f64>() / searches.len().max(1) as f64;
            let lat = r.apps.iter().map(|a| a.mean_latency_ms()).sum::<f64>() / r.apps.len() as f64;
            (k, ovh, lat, r.avg_hit_rate(), r.cost_per_invocation_cents())
        })
        .collect();
    let k5_cost = rows
        .iter()
        .find(|(k, ..)| *k == 5)
        .map(|r| r.4)
        .expect("K=5 run");
    let mut csv = Vec::new();
    for (k, ovh, lat, hit, cost) in &rows {
        println!(
            "{:<6} {:>14.2} {:>14.0} {:>11.1}% {:>14.3}",
            k,
            ovh,
            lat,
            hit * 100.0,
            cost / k5_cost
        );
        csv.push(format!(
            "{k},{ovh:.4},{lat:.2},{hit:.4},{:.4}",
            cost / k5_cost
        ));
    }
    println!(
        "\npaper shape: overhead grows mildly with K (3→8 ms from K=1 to K=80),\n\
         latency stays flat, cost decreases slightly. Default K = 5."
    );
    write_csv(
        "fig11",
        "k,mean_overhead_ms,mean_latency_ms,avg_hit_rate,cost_vs_k5",
        &csv,
    );
}
