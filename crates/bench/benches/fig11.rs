//! Figure 11 — sensitivity to K (the configuration-priority-queue depth)
//! in the strict-light setting: search overhead, end-to-end latency, and
//! cost (normalized to K = 5).

use esg_bench::{section, standard_config, standard_workload, write_csv};
use esg_core::EsgScheduler;
use esg_model::Scenario;
use esg_sim::{run_simulation, SimEnv};

fn main() {
    section("Figure 11: sensitivity to K (strict-light)");
    let scenario = Scenario::STRICT_LIGHT;
    let env = SimEnv::standard(scenario.slo);
    let workload = standard_workload(scenario);
    let ks = [1usize, 5, 10, 20, 40, 80];
    println!(
        "{:<6} {:>14} {:>14} {:>12} {:>14}",
        "K", "overhead (ms)", "latency (ms)", "hit %", "cost vs K=5"
    );
    let mut rows = Vec::new();
    for &k in &ks {
        let mut s = EsgScheduler::new().with_k(k);
        let r = run_simulation(&env, standard_config(), &mut s, &workload, "fig11");
        let searches: Vec<f64> = r
            .overhead_ms
            .iter()
            .copied()
            .filter(|&o| o > 0.25)
            .collect();
        let ovh = searches.iter().sum::<f64>() / searches.len().max(1) as f64;
        let lat = r
            .apps
            .iter()
            .map(|a| a.mean_latency_ms())
            .sum::<f64>()
            / r.apps.len() as f64;
        rows.push((k, ovh, lat, r.avg_hit_rate(), r.cost_per_invocation_cents()));
    }
    let k5_cost = rows
        .iter()
        .find(|(k, ..)| *k == 5)
        .map(|r| r.4)
        .expect("K=5 run");
    let mut csv = Vec::new();
    for (k, ovh, lat, hit, cost) in &rows {
        println!(
            "{:<6} {:>14.2} {:>14.0} {:>11.1}% {:>14.3}",
            k,
            ovh,
            lat,
            hit * 100.0,
            cost / k5_cost
        );
        csv.push(format!(
            "{k},{ovh:.4},{lat:.2},{hit:.4},{:.4}",
            cost / k5_cost
        ));
    }
    println!(
        "\npaper shape: overhead grows mildly with K (3→8 ms from K=1 to K=80),\n\
         latency stays flat, cost decreases slightly. Default K = 5."
    );
    write_csv(
        "fig11",
        "k,mean_overhead_ms,mean_latency_ms,avg_hit_rate,cost_vs_k5",
        &csv,
    );
}
