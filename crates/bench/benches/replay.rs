//! Trace-replay sweep: record one reference run's event-sourced trace,
//! then re-drive the recorded arrival stream across schedulers × shard
//! counts and compare dispatch-trace digests.
//!
//! The reference run is ESG on `strict-light` at the shared seed with
//! [`SimConfig::record_trace`](esg_sim::SimConfig) pointed at a scratch
//! file; the sweep replays that exact offered load under three
//! schedulers and three shard counts. Two invariants are asserted every
//! run:
//!
//! * replaying the recorded scheduler at the recorded shard count
//!   reproduces the recorded dispatch digest bit for bit (the
//!   round-trip fidelity the trace format exists for), and
//! * every replay sees exactly the recorded arrival count (the offered
//!   load is scheduler-independent).
//!
//! Results land in `BENCH_replay.json` / `BENCH_replay.csv` and the
//! "Trace replay" table of `EXPERIMENTS.md`
//! (`<!-- BENCH:replay:begin/end -->`). `ESG_SMOKE=1` shortens the
//! recorded run and skips the report update; the code paths are the
//! real ones.

use esg_bench::{
    record_reference, render_replay_markdown, replay_doc, replay_matrix, section,
    update_experiments_md, write_csv, write_json, SchedKind,
};
use esg_model::Scenario;

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let run_seconds = if smoke { 40.0 } else { esg_bench::RUN_SECONDS };
    section(if smoke {
        "Trace replay: recorded sweep × schedulers × shards (smoke mode)"
    } else {
        "Trace replay: recorded sweep × schedulers × shards"
    });

    let scenario = Scenario::STRICT_LIGHT;
    let path = std::env::temp_dir().join(format!("esg-replay-bench-{}.json", std::process::id()));
    let (recorded, replay) = record_reference(SchedKind::Esg, scenario, run_seconds, &path)
        .expect("reference run records a loadable trace");
    let trace = replay.trace();
    println!(
        "recorded {scenario} under {}: {} arrivals, {} events, digest {:016x}",
        trace.scheduler,
        trace.arrivals.len(),
        trace.events.len(),
        trace.dispatch_digest(),
    );

    let kinds = [SchedKind::Esg, SchedKind::Orion, SchedKind::FastGShare];
    let shard_counts = [1usize, 2, 4];
    let rows = replay_matrix(&replay, &kinds, &shard_counts);

    println!(
        "\n{:<12} {:>6}  {:>16}  {:>9}  {:>9}  {:>7}  {:>10}",
        "scheduler", "shards", "digest", "=recorded", "hit %", "shed %", "dispatches"
    );
    for r in &rows {
        println!(
            "{:<12} {:>6}  {:>16}  {:>9}  {:>8.1}%  {:>6.1}%  {:>10}",
            r.scheduler,
            r.shards,
            format!("{:016x}", r.digest),
            if r.matches_recording { "yes" } else { "no" },
            r.result.avg_hit_rate() * 100.0,
            r.result.shed_rate() * 100.0,
            r.result.dispatches,
        );
    }

    // Round-trip fidelity: the recorded scheduler at the recorded shard
    // count must reproduce the recording exactly.
    let same = rows
        .iter()
        .find(|r| r.scheduler == SchedKind::Esg.name() && r.shards == trace.config.shards)
        .expect("the recorded cell is in the grid");
    assert!(
        same.matches_recording,
        "replaying {} at {} shard(s) did not reproduce the recorded digest \
({:016x} vs {:016x})",
        same.scheduler,
        same.shards,
        same.digest,
        trace.dispatch_digest(),
    );
    // The offered load is scheduler-independent.
    for r in &rows {
        assert_eq!(
            r.result.arrivals, recorded.arrivals,
            "{} s{} saw a different offered load",
            r.scheduler, r.shards
        );
    }

    let doc = replay_doc(scenario, &replay, &recorded, &rows, smoke);
    write_json("BENCH_replay", &doc);
    let csv_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{:016x},{},{:.4},{:.4},{:.4},{},{},{}",
                r.scheduler,
                r.shards,
                r.digest,
                r.matches_recording,
                r.result.avg_hit_rate(),
                r.result.shed_rate(),
                r.result.cost_per_invocation_cents(),
                r.result.dispatches,
                r.result.shed_jobs,
                r.shard_stats.conflicts,
            )
        })
        .collect();
    write_csv(
        "BENCH_replay",
        "scheduler,shards,digest,matches_recording,avg_hit_rate,shed_rate,\
cost_per_invocation_cents,dispatches,shed_jobs,conflicts",
        &csv_rows,
    );
    if smoke {
        eprintln!("[md] smoke mode: skipping EXPERIMENTS.md update");
    } else {
        update_experiments_md("replay", &render_replay_markdown(&doc));
    }
    std::fs::remove_file(&path).ok();
}
