//! Figure 9 — the effect of Orion's search time on its SLO hit rate
//! (strict-light): the same cut-off sweep with the search time charged to
//! the affected jobs ("Orion") and not charged ("Orion w/o searching
//! overhead").

use esg_bench::{section, standard_config, standard_workload, write_csv};
use esg_baselines::OrionScheduler;
use esg_model::Scenario;
use esg_sim::{run_simulation, SimConfig, SimEnv};

fn main() {
    section("Figure 9: Orion search time vs SLO hit rate (strict-light)");
    let scenario = Scenario::STRICT_LIGHT;
    let env = SimEnv::standard(scenario.slo);
    let workload = standard_workload(scenario);
    let cutoffs = [1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 2000.0];
    println!(
        "{:<14} {:>18} {:>24}",
        "cutoff (ms)", "Orion hit %", "w/o overhead hit %"
    );
    let mut csv = Vec::new();
    for &cutoff in &cutoffs {
        let charged = {
            let mut s = OrionScheduler::new(cutoff);
            run_simulation(&env, standard_config(), &mut s, &workload, "fig9")
        };
        let free = {
            let mut s = OrionScheduler::new(cutoff);
            let cfg = SimConfig {
                charge_overhead: false,
                ..standard_config()
            };
            run_simulation(&env, cfg, &mut s, &workload, "fig9-free")
        };
        println!(
            "{:<14} {:>17.1}% {:>23.1}%",
            cutoff,
            charged.avg_hit_rate() * 100.0,
            free.avg_hit_rate() * 100.0
        );
        csv.push(format!(
            "{cutoff},{:.4},{:.4}",
            charged.avg_hit_rate(),
            free.avg_hit_rate()
        ));
    }
    println!(
        "\npaper shape: without overhead the hit rate rises with the cut-off and\n\
         plateaus (~16%); with overhead counted it collapses as the cut-off grows."
    );
    write_csv("fig9", "cutoff_ms,hit_rate_charged,hit_rate_uncharged", &csv);
}
