//! Figure 9 — the effect of Orion's search time on its SLO hit rate
//! (strict-light): the same cut-off sweep with the search time charged to
//! the affected jobs ("Orion") and not charged ("Orion w/o searching
//! overhead"). Declared as two suites over the same cut-off scheduler
//! axis, differing only in the platform's `charge_overhead` flag.

use esg_baselines::OrionScheduler;
use esg_bench::{section, standard_config, write_csv, ExperimentSuite, ScenarioMatrix, SchedSpec};
use esg_model::Scenario;
use esg_sim::SimConfig;

const CUTOFFS_MS: [f64; 7] = [1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 2000.0];

fn cutoff_matrix() -> ScenarioMatrix {
    ScenarioMatrix::new()
        .schedulers(CUTOFFS_MS.map(|cutoff| {
            SchedSpec::new(format!("orion@{cutoff}ms"), move || {
                Box::new(OrionScheduler::new(cutoff))
            })
        }))
        .scenarios([Scenario::STRICT_LIGHT])
}

fn main() {
    section("Figure 9: Orion search time vs SLO hit rate (strict-light)");
    let charged = ExperimentSuite::new("fig9_charged", cutoff_matrix()).run();
    let free = ExperimentSuite::new("fig9_uncharged", cutoff_matrix())
        .with_sim_config(SimConfig {
            charge_overhead: false,
            ..standard_config()
        })
        .run();
    charged.write_artifacts();
    free.write_artifacts();

    println!(
        "{:<14} {:>18} {:>24}",
        "cutoff (ms)", "Orion hit %", "w/o overhead hit %"
    );
    let mut csv = Vec::new();
    for (i, &cutoff) in CUTOFFS_MS.iter().enumerate() {
        let hit_charged = charged.results[i].result.avg_hit_rate();
        let hit_free = free.results[i].result.avg_hit_rate();
        println!(
            "{:<14} {:>17.1}% {:>23.1}%",
            cutoff,
            hit_charged * 100.0,
            hit_free * 100.0
        );
        csv.push(format!("{cutoff},{hit_charged:.4},{hit_free:.4}"));
    }
    println!(
        "\npaper shape: without overhead the hit rate rises with the cut-off and\n\
         plateaus (~16%); with overhead counted it collapses as the cut-off grows."
    );
    write_csv(
        "fig9",
        "cutoff_ms,hit_rate_charged,hit_rate_uncharged",
        &csv,
    );
}
