//! Round-policy sweep: classic ESG vs the composable policy stacks —
//! cross-queue packing (`EsgCrossQueuePacking`), SLO-aware admission
//! (`SloAdmission`), and their combination — across the hetero cluster
//! grid under steady, bursty, and Azure-replay traffic.
//!
//! Beyond the paper: ESG's evaluation decides queues in controller scan
//! order and never sheds. HAS-GPU/INFless-style systems argue admission
//! and placement are separable SLO-aware decisions; this target measures
//! both stages on top of the unchanged per-queue ESG search. Read the
//! tables as: *GSLO hit rate over completed work* (must be no worse than
//! classic ESG) with the *shed rate* reported alongside (admission only
//! drops provably-hopeless invocations, so sheds convert certain misses
//! into explicit rejections instead of wasted capacity).
//!
//! Artifacts: `BENCH_packing.{json,csv}` under `bench_results/`, plus
//! the Markdown tables spliced into `EXPERIMENTS.md` between the
//! `<!-- BENCH:packing:begin/end -->` markers.
//!
//! `ESG_SMOKE=1` shortens the arrival window for CI smoke runs.

use esg_bench::{
    section, standard_config, ClusterCase, ExperimentSuite, ScenarioMatrix, SchedSpec, RUN_SECONDS,
    WARMUP_SECONDS,
};
use esg_core::{EsgCrossQueuePacking, EsgScheduler};
use esg_model::{ChurnPlan, ClusterSpec, NodeClass, NodeId, Scenario, TrafficShape};
use esg_sim::{PolicyStack, SimConfig, SloAdmission};

/// The hetero grid (same three cases as `cargo bench --bench hetero`).
fn cluster_cases(run_seconds: f64) -> [ClusterCase; 3] {
    let churn_at = run_seconds * 1000.0 / 3.0;
    [
        ClusterCase::new(ClusterSpec::paper()),
        ClusterCase::new(ClusterSpec::mixed_mig()),
        ClusterCase::new(ClusterSpec::skewed()).with_churn(ChurnPlan::rolling_replace(
            churn_at,
            2_000.0,
            NodeId(0),
            NodeClass::t4(),
        )),
    ]
}

/// The ESG policy-stack variants under comparison.
fn variants() -> [SchedSpec; 4] {
    [
        SchedSpec::new("ESG", || Box::new(EsgScheduler::new())),
        SchedSpec::new("ESG+pack", || {
            Box::new(
                EsgScheduler::new()
                    .with_policy(PolicyStack::new().with(EsgCrossQueuePacking::default())),
            )
        }),
        SchedSpec::new("ESG+admit", || {
            Box::new(
                EsgScheduler::new().with_policy(PolicyStack::new().with(SloAdmission::default())),
            )
        }),
        SchedSpec::new("ESG+pack+admit", || {
            Box::new(
                EsgScheduler::new().with_policy(
                    PolicyStack::new()
                        .with(SloAdmission::default())
                        .with(EsgCrossQueuePacking::default()),
                ),
            )
        }),
    ]
}

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let run_seconds = if smoke { 3.0 } else { RUN_SECONDS };
    section(if smoke {
        "Round-policy stacks: packing × admission (smoke mode)"
    } else {
        "Round-policy stacks: packing × admission"
    });

    let matrix = ScenarioMatrix::new()
        .schedulers(variants())
        .scenarios([Scenario::MODERATE_NORMAL])
        .clusters(cluster_cases(run_seconds))
        .traffic([
            TrafficShape::Steady,
            TrafficShape::Bursty,
            TrafficShape::AzureReplay,
        ]);
    assert_eq!(matrix.len(), 4 * 3 * 3, "4 stacks × 3 clusters × 3 shapes");

    let warmup_seconds = WARMUP_SECONDS * run_seconds / RUN_SECONDS;
    let sweep = ExperimentSuite::new("packing", matrix)
        .with_sim_config(SimConfig {
            warmup_exclude_ms: warmup_seconds * 1000.0,
            ..standard_config()
        })
        .with_run_seconds(run_seconds)
        .run();
    sweep.write_artifacts();
    if smoke {
        eprintln!("[md] smoke mode: skipping EXPERIMENTS.md update");
    } else {
        sweep.write_experiments_section();
    }

    for case in cluster_cases(run_seconds) {
        println!("\n--- cluster {} ---", case.name);
        println!(
            "{:<15} {:>8} {:>10} {:>7} {:>14} {:>10}",
            "stack", "traffic", "SLO hit %", "shed %", "cost (¢/inv)", "deferred"
        );
        for cell in sweep.results.iter().filter(|c| c.cluster == case.name) {
            let r = &cell.result;
            println!(
                "{:<15} {:>8} {:>9.1}% {:>6.1}% {:>14.4} {:>10}",
                cell.scheduler,
                cell.traffic.to_string(),
                r.avg_hit_rate() * 100.0,
                r.shed_rate() * 100.0,
                r.cost_per_invocation_cents(),
                r.scheduler_stats.policy.queues_deferred,
            );
        }
    }

    // Acceptance guard: policy stacks must not lose GSLO hit rate vs
    // classic ESG on the same (cluster, traffic) cell, up to a 2 pp
    // tolerance for cells where shedding changes the completed set
    // (full runs only; 3 s smoke cells are too noisy to gate).
    let mut worst: f64 = 0.0;
    for cell in &sweep.results {
        if cell.scheduler == "ESG" {
            continue;
        }
        let classic = sweep
            .results
            .iter()
            .find(|c| {
                c.scheduler == "ESG" && c.cluster == cell.cluster && c.traffic == cell.traffic
            })
            .expect("classic row exists for every cell");
        let delta = classic.result.avg_hit_rate() - cell.result.avg_hit_rate();
        worst = worst.max(delta);
    }
    println!(
        "\nworst hit-rate regression of any stack vs classic ESG: {:.2} pp \
(tolerance ≤ 2 pp; sheds only remove provably-hopeless work)",
        worst * 100.0
    );
    if !smoke {
        assert!(
            worst <= 0.02,
            "a policy stack lost {:.2} pp of GSLO hit rate vs classic ESG",
            worst * 100.0
        );
    }
}
