//! Figure 5 — job arrival intervals for the heavy / normal / light
//! workload settings.

use esg_bench::{section, write_csv, SEED};
use esg_model::{standard_app_ids, WorkloadClass};
use esg_workload::WorkloadGen;

fn main() {
    section("Figure 5: job arrival intervals");
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "class", "expected", "min", "mean", "max", "count"
    );
    let mut csv = Vec::new();
    for class in WorkloadClass::all() {
        let w = WorkloadGen::new(class, standard_app_ids(), SEED).generate(400);
        let iv = w.intervals_ms();
        let (lo, hi) = class.interval_range_ms();
        let min = iv.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = iv.iter().cloned().fold(0.0, f64::max);
        let mean = iv.iter().sum::<f64>() / iv.len() as f64;
        assert!(min >= lo - 1e-9 && max <= hi + 1e-9, "intervals in range");
        println!(
            "{:<10} {:>5.1}-{:<5.1} {:>10.2} {:>10.2} {:>10.2} {:>10}",
            class.to_string(),
            lo,
            hi,
            min,
            mean,
            max,
            iv.len()
        );
        for (i, d) in iv.iter().enumerate() {
            csv.push(format!("{class},{i},{d:.4}"));
        }
    }
    println!("\npaper ranges: heavy [10,16.8], normal [20,33.6], light [40,67.2] ms");
    write_csv("fig5", "class,job,interval_ms", &csv);
}
