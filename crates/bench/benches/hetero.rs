//! Heterogeneous-cluster × dynamic-scenario sweep: ESG vs the four
//! baselines across three cluster specs (homogeneous paper testbed,
//! mixed-MIG, skewed-with-churn) under three traffic shapes (steady,
//! bursty, diurnal).
//!
//! Beyond the paper: Table 2 is homogeneous and §4.1 traffic is steady;
//! Appendix A claims heterogeneity tolerance, and the related work
//! (HAS-GPU, FaaSTube) argues mixed GPUs and topology-sensitive transfer
//! change the SLO/cost trade-off. This target measures that claim.
//!
//! Artifacts: `BENCH_hetero.{json,csv}` under `bench_results/`, plus
//! regenerated Markdown tables spliced into `EXPERIMENTS.md` between the
//! `<!-- BENCH:hetero:begin/end -->` markers.
//!
//! `ESG_SMOKE=1` shortens the arrival window for CI smoke runs.

use esg_bench::{
    section, standard_config, ClusterCase, ExperimentSuite, ScenarioMatrix, SchedKind, RUN_SECONDS,
    WARMUP_SECONDS,
};
use esg_model::{ChurnPlan, ClusterSpec, NodeClass, NodeId, Scenario, TrafficShape};
use esg_sim::SimConfig;

/// The three cluster cases of the sweep. The skewed case also churns: its
/// fastest node drains a third into the run and a T4 replacement joins
/// shortly after — the hardest placement regime.
fn cluster_cases(run_seconds: f64) -> [ClusterCase; 3] {
    let churn_at = run_seconds * 1000.0 / 3.0;
    [
        ClusterCase::new(ClusterSpec::paper()),
        ClusterCase::new(ClusterSpec::mixed_mig()),
        ClusterCase::new(ClusterSpec::skewed()).with_churn(ChurnPlan::rolling_replace(
            churn_at,
            2_000.0,
            NodeId(0),
            NodeClass::t4(),
        )),
    ]
}

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let run_seconds = if smoke { 3.0 } else { RUN_SECONDS };
    section(if smoke {
        "Heterogeneous clusters × traffic shapes (smoke mode)"
    } else {
        "Heterogeneous clusters × traffic shapes"
    });

    let matrix = ScenarioMatrix::new()
        .schedulers(SchedKind::all())
        .scenarios([Scenario::MODERATE_NORMAL])
        .clusters(cluster_cases(run_seconds))
        .traffic([
            TrafficShape::Steady,
            TrafficShape::Bursty,
            TrafficShape::Diurnal,
        ]);
    assert_eq!(
        matrix.len(),
        5 * 3 * 3,
        "5 schedulers × 3 clusters × 3 shapes"
    );

    // Keep the warm-up exclusion proportional so smoke runs still report
    // non-empty metrics (the standard 30 s window would swallow a 3 s run).
    let warmup_seconds = WARMUP_SECONDS * run_seconds / RUN_SECONDS;
    let sweep = ExperimentSuite::new("hetero", matrix)
        .with_sim_config(SimConfig {
            warmup_exclude_ms: warmup_seconds * 1000.0,
            ..standard_config()
        })
        .with_run_seconds(run_seconds)
        .run();
    sweep.write_artifacts();
    if smoke {
        // Smoke runs exist to exercise the pipeline, not to report: never
        // overwrite the committed full-run tables with 3 s numbers.
        eprintln!("[md] smoke mode: skipping EXPERIMENTS.md update");
    } else {
        sweep.write_experiments_section();
    }

    for case in cluster_cases(run_seconds) {
        println!("\n--- cluster {} ---", case.name);
        println!(
            "{:<12} {:>8} {:>10} {:>14} {:>12} {:>12}",
            "scheduler", "traffic", "SLO hit %", "cost (¢/inv)", "cold %", "vGPU util %"
        );
        for cell in sweep.results.iter().filter(|c| c.cluster == case.name) {
            let r = &cell.result;
            println!(
                "{:<12} {:>8} {:>9.1}% {:>14.4} {:>11.1}% {:>11.1}%",
                cell.scheduler,
                cell.traffic.to_string(),
                r.avg_hit_rate() * 100.0,
                r.cost_per_invocation_cents(),
                r.cold_start_rate() * 100.0,
                r.vgpu_utilisation * 100.0,
            );
        }
    }
    println!(
        "\nexpected shape: every scheduler loses hit rate moving paper → mixed-MIG\n\
         → skewed+churn and steady → bursty; ESG's speed-scaled stage tables and\n\
         locality-first dispatch should keep it ahead of the pre-planned baselines,\n\
         which mispredict on slow classes (HAS-GPU/FaaSTube's argument)."
    );
}
