//! Scheduler-overhead microbenches: cold search vs warm plan-cache hit.
//!
//! §5.3 argues ESG's pruned search keeps per-request planning ~ms-scale;
//! this target measures our implementation's actual wall-clock planning
//! latency and the plan cache's amortisation on top of it, across
//! pipeline widths (1–8 stages) and GSLO tightness levels (tight budgets
//! prune harder, §5.3's "overhead increases with more relaxed SLO"). A
//! second table isolates the zero-alloc A\* rework: fresh allocations per
//! call vs the reused `SearchScratch` arena.
//!
//! Artifacts: `BENCH_overhead.json` under `bench_results/` (the
//! committed copy is the CI perf-gate baseline — see
//! `.github/workflows/ci.yml` and `esg-bench`'s `perf-gate` binary) and
//! the "Scheduling overhead" tables in `EXPERIMENTS.md` between the
//! `<!-- BENCH:overhead:begin/end -->` markers.
//!
//! A third ablation, `snapshot-vs-incremental`, measures the control
//! plane's cluster-visibility cost: rebuilding the scheduler-facing view
//! from scratch per decision (the pre-round-API contract,
//! `ClusterState::from_cluster`) against the incremental
//! touch-and-refresh path the platform now runs — and asserts the
//! incremental path performs **zero per-decision allocations** in steady
//! state (every node's warm buffer must stay pointer- and
//! capacity-stable across thousands of dispatch-shaped refreshes).
//!
//! `ESG_SMOKE=1` cuts the sample count for CI runs; case labels are
//! unchanged so smoke runs stay comparable to the committed baseline.

use criterion::{BenchmarkId, Criterion};
use esg_bench::{render_overhead_markdown, section, update_experiments_md, write_json};
use esg_core::{
    astar_search_bounded, astar_search_with, quantize_gslo, CachedPlan, PlanCache, PlanKey,
    SearchScratch, StageTable,
};
use esg_model::{
    standard_catalog, AppId, Config, ConfigGrid, FnId, InvocationId, NodeId, PriceModel, Resources,
    SimTime, SloClass,
};
use esg_profile::ProfileTable;
use esg_sim::{
    Capabilities, Cluster, ClusterState, JobView, Outcome, PolicyStack, QueueKey, QueueView,
    RoundCtx, RoundPolicy, SchedCtx, Scheduler, SimEnv,
};
use serde_json::json;
use std::hint::black_box;

const WIDTHS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
const TIGHTNESS: [(&str, f64); 3] = [("tight", 1.1), ("medium", 1.5), ("loose", 3.0)];
/// Widths for the alloc-vs-scratch ablation (medium tightness only).
const SCRATCH_WIDTHS: [usize; 3] = [2, 4, 8];
/// Cluster sizes for the snapshot-vs-incremental view ablation.
const VIEW_NODES: [usize; 2] = [16, 64];
/// Eligible-queue counts for the round-driver ablation.
const ROUND_QUEUES: [usize; 2] = [4, 16];
/// Rounds per measured iteration in the round-driver ablation (one
/// round is ~100 ns; batching lifts the case above the perf gate's
/// timer-noise floor so it is actually gated).
const ROUNDS_PER_ITER: usize = 128;

/// A warmed, partially committed cluster — the steady state the platform
/// refreshes views in.
fn busy_cluster(n: usize) -> Cluster {
    let keep = SimTime::from_secs(600.0);
    let mut cluster = Cluster::new(n, Resources::new(16, 7));
    for i in 0..n as u32 {
        for f in 0..6u32 {
            cluster
                .node_mut(NodeId(i))
                .return_slot(FnId(f), SimTime::ZERO, keep, false);
        }
        assert!(cluster.node_mut(NodeId(i)).commit(Resources::new(4, 2)));
    }
    cluster
}

/// Case coordinates recorded next to each criterion report.
struct CaseMeta {
    label: String,
    kind: &'static str,
    width: usize,
    slo: &'static str,
}

/// A `width`-stage pipeline cycling through the Table-3 catalog.
fn fns_for(width: usize) -> Vec<FnId> {
    (0..width).map(|i| FnId((i % 6) as u32)).collect()
}

/// A minimal scheduler for the round-driver ablation: O(1) `schedule`,
/// so the measured cost is the provided `schedule_round` driver itself
/// (fast path vs policy pipeline), not the search.
struct DriverProbe {
    policy: Option<PolicyStack>,
}

impl Scheduler for DriverProbe {
    fn name(&self) -> &'static str {
        "driver-probe"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            gpu_sharing: true,
            inter_function_relation: false,
            adaptive: false,
            data_locality: false,
            pre_warming: false,
        }
    }

    fn schedule(&mut self, _ctx: &SchedCtx<'_>) -> Outcome {
        Outcome::single(Config::MIN, 1)
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        ctx.cluster.most_free(config.resources())
    }

    fn round_policy(&mut self) -> Option<&mut PolicyStack> {
        self.policy.as_mut()
    }
}

/// A stage that admits everything and keeps scan order through the
/// default trait methods — the cheapest non-empty pipeline.
struct PassThrough;

impl RoundPolicy for PassThrough {
    fn name(&self) -> &'static str {
        "pass-through"
    }
    fn clone_box(&self) -> Box<dyn RoundPolicy> {
        Box::new(PassThrough)
    }
}

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    // Smoke keeps enough samples for a stable median: the perf-gate
    // compares this run against the committed full-run baseline, and 5
    // samples under CI-runner load produced ±40% medians on µs cases.
    let samples = if smoke { 15 } else { 40 };
    section(if smoke {
        "Scheduling overhead: cold search vs warm plan cache (smoke mode)"
    } else {
        "Scheduling overhead: cold search vs warm plan cache"
    });

    let profiles = ProfileTable::build(
        &standard_catalog(),
        &ConfigGrid::default(),
        &PriceModel::default(),
    );
    let cap = profiles.grid().max_batch();
    let mut c = Criterion::default().sample_size(samples);
    let mut metas: Vec<CaseMeta> = Vec::new();

    {
        let mut group = c.benchmark_group("overhead");
        let mut scratch = SearchScratch::new();
        for &w in &WIDTHS {
            let fns = fns_for(w);
            for (slo_name, mult) in TIGHTNESS {
                let table = StageTable::build(&fns, &profiles, cap);
                // The budget the scheduler would search with: quantized
                // onto the plan-cache bucket grid.
                let gslo = quantize_gslo(table.min_total_time() * mult);

                // Cold: the full miss path — stage-table build plus the
                // dispatch-quality A* (K=5, 50% premium band).
                let param = format!("w{w}/{slo_name}");
                group.bench_with_input(BenchmarkId::new("cold", &param), &fns, |b, fns| {
                    b.iter(|| {
                        let t = StageTable::build(fns, &profiles, cap);
                        black_box(astar_search_with(&t, gslo, 5, 0.5, &mut scratch))
                    })
                });
                metas.push(CaseMeta {
                    label: format!("overhead/cold/{param}"),
                    kind: "cold",
                    width: w,
                    slo: slo_name,
                });

                // Warm: the hit path — key fingerprint plus an LRU lookup
                // returning the memoised K-path result.
                let key = PlanKey {
                    dag_fp: 0x5eed,
                    window_fp: PlanKey::window_fingerprint(&fns, cap),
                    gslo_bits: gslo.to_bits(),
                    speed_bits: 1.0f64.to_bits(),
                    k: 5,
                    premium_bits: 0.5f64.to_bits(),
                    variant: 0,
                };
                let mut cache = PlanCache::new();
                cache.insert(
                    key,
                    CachedPlan {
                        result: astar_search_with(&table, gslo, 5, 0.5, &mut scratch),
                        min_total_ms: table.min_total_time(),
                    },
                );
                group.bench_with_input(BenchmarkId::new("warm", &param), &fns, |b, fns| {
                    b.iter(|| {
                        let k = PlanKey {
                            window_fp: PlanKey::window_fingerprint(fns, cap),
                            ..key
                        };
                        black_box(cache.get(&k)).expect("pre-populated key must hit")
                    })
                });
                metas.push(CaseMeta {
                    label: format!("overhead/warm/{param}"),
                    kind: "warm",
                    width: w,
                    slo: slo_name,
                });
            }
        }

        // The zero-alloc rework in isolation: identical searches, fresh
        // allocations per call vs the reused scratch arena.
        for &w in &SCRATCH_WIDTHS {
            let fns = fns_for(w);
            let table = StageTable::build(&fns, &profiles, cap);
            let gslo = quantize_gslo(table.min_total_time() * 1.5);
            let param = format!("w{w}/medium");
            group.bench_with_input(BenchmarkId::new("astar-alloc", &param), &table, |b, t| {
                b.iter(|| black_box(astar_search_bounded(t, gslo, 5, 0.5)))
            });
            metas.push(CaseMeta {
                label: format!("overhead/astar-alloc/{param}"),
                kind: "astar-alloc",
                width: w,
                slo: "medium",
            });
            group.bench_with_input(BenchmarkId::new("astar-scratch", &param), &table, |b, t| {
                b.iter(|| black_box(astar_search_with(t, gslo, 5, 0.5, &mut scratch)))
            });
            metas.push(CaseMeta {
                label: format!("overhead/astar-scratch/{param}"),
                kind: "astar-scratch",
                width: w,
                slo: "medium",
            });
        }

        // Snapshot-vs-incremental view ablation: what one decision's
        // cluster visibility costs under the old rebuild contract vs the
        // new in-place refresh (one dispatch-shaped touch per decision).
        for &n in &VIEW_NODES {
            let cluster = busy_cluster(n);
            let now = SimTime::from_ms(10.0);
            let param = format!("n{n}");
            group.bench_with_input(
                BenchmarkId::new("view-snapshot", &param),
                &cluster,
                |b, c| b.iter(|| black_box(ClusterState::from_cluster(c, now))),
            );
            metas.push(CaseMeta {
                label: format!("overhead/view-snapshot/{param}"),
                kind: "view-snapshot",
                width: n,
                slo: "n/a",
            });
            let mut state = ClusterState::from_cluster(&cluster, now);
            group.bench_with_input(
                BenchmarkId::new("view-incremental", &param),
                &cluster,
                |b, c| {
                    b.iter(|| {
                        state.touch(NodeId(0));
                        state.refresh(c, now);
                        black_box(state.generation())
                    })
                },
            );
            metas.push(CaseMeta {
                label: format!("overhead/view-incremental/{param}"),
                kind: "view-incremental",
                width: n,
                slo: "n/a",
            });

            // Zero-alloc assertion: across thousands of dispatch-shaped
            // refreshes touching every node, no view buffer may move or
            // grow — i.e. steady-state dispatch performs zero
            // per-decision cluster-view allocations.
            let fingerprint = |s: &ClusterState| -> Vec<(*const FnId, usize)> {
                s.nodes()
                    .iter()
                    .map(|v| (v.warm.as_ptr(), v.warm.capacity()))
                    .collect()
            };
            let before = fingerprint(&state);
            for step in 0..10_000u64 {
                state.touch(NodeId((step % n as u64) as u32));
                state.refresh(&cluster, now);
            }
            assert_eq!(
                before,
                fingerprint(&state),
                "incremental refresh reallocated a view buffer (n = {n})"
            );
            println!(
                "zero-alloc check (n={n}): all {n} warm buffers pointer- and \
capacity-stable across 10k dispatch-shaped refreshes"
            );
        }

        // Round-driver ablation: the pre-policy driver (no stack) vs the
        // classic empty stack's fast path vs a two-stage pass-through
        // pipeline. Measures what the policy indirection costs one
        // controller round (budget: empty stack ≤5% over pre-policy).
        let env = SimEnv::standard(SloClass::Moderate);
        let round_cluster = ClusterState::from_cluster(&busy_cluster(16), SimTime::from_ms(10.0));
        let jobs: Vec<JobView> = (0..4u64)
            .map(|i| JobView {
                invocation: InvocationId(i),
                ready_at_ms: 5.0,
                invocation_arrival_ms: 0.0,
                slack_ms: 500.0,
                pred_node: None,
            })
            .collect();
        for &nq in &ROUND_QUEUES {
            let queues: Vec<QueueView<'_>> = (0..nq)
                .map(|i| {
                    let app = AppId((i % env.apps.len()) as u32);
                    QueueView {
                        key: QueueKey { app, stage: 0 },
                        jobs: &jobs,
                        function: env.apps[app.index()].nodes[0],
                        slo_ms: env.slo_ms(app),
                        base_latency_ms: env.base_latency_ms(app),
                        queue_interval_ms: None,
                    }
                })
                .collect();
            let ctx = RoundCtx {
                now_ms: 10.0,
                queues: &queues,
                cluster: &round_cluster,
                profiles: &env.profiles,
                apps: &env.apps,
                catalog: &env.catalog,
                price: &env.price,
                transfer: &env.transfer,
                noise: &env.noise,
                dataplane: None,
                servers: None,
            };
            let variants: [(&'static str, Option<PolicyStack>); 3] = [
                ("round-classic", None),
                ("round-empty-stack", Some(PolicyStack::classic())),
                (
                    "round-stack",
                    Some(PolicyStack::new().with(PassThrough).with(PassThrough)),
                ),
            ];
            for (kind, policy) in variants {
                let mut sched = DriverProbe { policy };
                let param = format!("q{nq}");
                group.bench_with_input(BenchmarkId::new(kind, &param), &(), |b, _| {
                    b.iter(|| {
                        for _ in 0..ROUNDS_PER_ITER {
                            black_box(sched.schedule_round(&ctx));
                        }
                    })
                });
                metas.push(CaseMeta {
                    label: format!("overhead/{kind}/{param}"),
                    kind,
                    width: nq,
                    slo: "n/a",
                });
            }
        }
        group.finish();
    }

    // Assemble the artifact from the collected reports.
    let cases: Vec<serde_json::Value> = metas
        .iter()
        .map(|m| {
            let r = c
                .reports()
                .iter()
                .find(|r| r.label == m.label)
                .unwrap_or_else(|| panic!("no report for case {}", m.label));
            json!({
                "case": (m.label.clone()),
                "kind": (m.kind),
                "width": (m.width),
                "slo": (m.slo),
                "median_ns": (r.median_ns),
                "mean_ns": (r.mean_ns),
                "min_ns": (r.min_ns),
                "samples": (r.samples),
            })
        })
        .collect();
    let doc = json!({
        "suite": "overhead",
        "samples": samples,
        "smoke": smoke,
        "cases": cases,
    });
    write_json("BENCH_overhead", &doc);
    if smoke {
        // Smoke runs exercise the pipeline; never overwrite the committed
        // full-run tables with 5-sample numbers.
        eprintln!("[md] smoke mode: skipping EXPERIMENTS.md update");
    } else {
        update_experiments_md("overhead", &render_overhead_markdown(&doc));
    }

    // Headline: the warm/cold amortisation factor per case pair.
    let median = |label: &str| {
        c.reports()
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.median_ns)
            .unwrap_or(0.0)
    };
    let mut worst = f64::INFINITY;
    for &w in &WIDTHS {
        for (slo_name, _) in TIGHTNESS {
            let cold = median(&format!("overhead/cold/w{w}/{slo_name}"));
            let warm = median(&format!("overhead/warm/w{w}/{slo_name}"));
            if warm > 0.0 {
                worst = worst.min(cold / warm);
            }
        }
    }
    println!("\nminimum warm-cache speedup across cases: {worst:.0}× (target ≥5×)");

    // Round-driver indirection headline: the classic empty stack must
    // cost (within noise) what the pre-policy driver cost — the budget
    // is ≤5%, asserted loosely here (full runs only; smoke runs on
    // loaded CI boxes are guarded by the perf gate's per-case medians).
    for &nq in &ROUND_QUEUES {
        let classic = median(&format!("overhead/round-classic/q{nq}"));
        let empty = median(&format!("overhead/round-empty-stack/q{nq}"));
        let staged = median(&format!("overhead/round-stack/q{nq}"));
        if classic <= 0.0 {
            continue;
        }
        let per_round = classic / ROUNDS_PER_ITER as f64;
        let overhead_pct = (empty / classic - 1.0) * 100.0;
        println!(
            "round driver q{nq}: pre-policy {per_round:.0} ns/round, empty stack \
{overhead_pct:+.1}% (budget ≤5%), staged stack {:.2}×",
            staged / classic
        );
        if !smoke {
            assert!(
                empty <= classic * 1.25,
                "classic-stack fast path drifted {overhead_pct:+.1}% above the \
pre-policy round driver (q{nq})"
            );
        }
    }
}
