//! Figure 12 — ablation in the relaxed-heavy setting: ESG versus ESG
//! without GPU sharing (whole-GPU grants only) and ESG without batching
//! (batch fixed at 1). Each variant is a one-cell suite with its own
//! restricted configuration grid.

use esg_bench::{section, write_csv, ExperimentSuite, ScenarioMatrix, SchedKind};
use esg_model::{ConfigGrid, Scenario};

fn main() {
    section("Figure 12: GPU-sharing and batching ablation (relaxed-heavy)");
    let grid = ConfigGrid::default();
    let variants: [(&str, ConfigGrid); 3] = [
        ("ESG", grid.clone()),
        ("no GPU sharing", grid.without_gpu_sharing(7)),
        ("no batching", grid.without_batching()),
    ];
    println!(
        "{:<16} {:>8} {:>14} {:>10} {:>10} {:>12} {:>12}",
        "variant", "hit %", "cost (¢/inv)", "GPU util", "CPU util", "wait (ms)", "batch"
    );
    let mut csv = Vec::new();
    for (name, g) in variants {
        let sweep = ExperimentSuite::new(
            format!("fig12_{}", name.replace(' ', "_")),
            ScenarioMatrix::new()
                .schedulers([SchedKind::Esg])
                .scenarios([Scenario::RELAXED_HEAVY]),
        )
        .with_grid(g)
        .run();
        sweep.write_artifacts();
        let r = &sweep.results[0].result;
        println!(
            "{:<16} {:>7.1}% {:>14.4} {:>10.2} {:>10.2} {:>12.1} {:>12.2}",
            name,
            r.avg_hit_rate() * 100.0,
            r.cost_per_invocation_cents(),
            r.vgpu_utilisation,
            r.vcpu_utilisation,
            r.phase_queue_wait_ms.mean(),
            r.batch_size.mean()
        );
        csv.push(format!(
            "{name},{:.4},{:.6},{:.4},{:.4},{:.2},{:.3}",
            r.avg_hit_rate(),
            r.cost_per_invocation_cents(),
            r.vgpu_utilisation,
            r.vcpu_utilisation,
            r.phase_queue_wait_ms.mean(),
            r.batch_size.mean()
        ));
    }
    println!(
        "\npaper shape: removing GPU sharing prolongs waiting (jobs queue for whole\n\
         GPUs) and hurts SLO hits; removing batching keeps hit rates but raises\n\
         cost (batching conserves resources)."
    );
    write_csv(
        "fig12",
        "variant,avg_hit_rate,cost_per_invocation_cents,gpu_util,cpu_util,queue_wait_ms,batch_mean",
        &csv,
    );
}
