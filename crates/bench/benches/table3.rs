//! Table 3 — the serverless function catalog, cross-checked against the
//! profile substrate (minimum-configuration latency must reproduce the
//! measured execution time exactly).

use esg_bench::{section, write_csv};
use esg_model::{standard_catalog, Config, ConfigGrid, PriceModel};
use esg_profile::ProfileTable;

fn main() {
    section("Table 3: serverless functions");
    let catalog = standard_catalog();
    let profiles = ProfileTable::build(&catalog, &ConfigGrid::default(), &PriceModel::default());
    println!(
        "{:<20} {:>12} {:>14} {:>12} {:<22} {:>14}",
        "function", "exec (ms)", "cold start(ms)", "input (MB)", "model", "profile@min(ms)"
    );
    let mut csv = Vec::new();
    for (id, f) in catalog.iter() {
        let at_min = profiles.profile(id).min_config_entry().latency_ms;
        assert!(
            (at_min - f.exec_ms).abs() < 1e-9,
            "profile substrate must reproduce Table 3 at (1,1,1)"
        );
        println!(
            "{:<20} {:>12.0} {:>14.0} {:>12.3} {:<22} {:>14.0}",
            f.name, f.exec_ms, f.cold_start_ms, f.input_mb, f.model, at_min
        );
        csv.push(format!(
            "{},{},{},{},{},{}",
            f.name, f.exec_ms, f.cold_start_ms, f.input_mb, f.model, at_min
        ));
    }
    // A taste of the extrapolated profile (not in the paper's table, but
    // the quantity its Fig. 3 example is built from).
    let deblur = catalog.find("deblur").expect("catalog");
    let e = profiles
        .profile(deblur)
        .find(Config::new(4, 4, 2))
        .expect("grid");
    println!(
        "\nexample extrapolation: deblur @ (b=4,c=4,g=2): {:.0} ms task, {:.4}¢/job",
        e.latency_ms, e.per_job_cost_cents
    );
    write_csv(
        "table3",
        "function,exec_ms,cold_start_ms,input_mb,model,profile_at_min_ms",
        &csv,
    );
}
