//! Table 4 — pre-planned scheduling miss rate.
//!
//! "the percentage of times when the configurations fail to apply to a
//! function because the batch size in the configuration is even greater
//! than the number of jobs in the queue of that function when it is time
//! to be scheduled" — for Orion (best-first search) and Aquatope (BO),
//! across the three scenarios. ESG adapts and never pre-plans a missable
//! batch, which the harness verifies. Declared as one sweep over the
//! three schedulers × three paper scenarios.

use esg_bench::{section, write_csv, ExperimentSuite, ScenarioMatrix, SchedKind};
use esg_model::Scenario;

fn main() {
    section("Table 4: pre-planned scheduling miss rate");
    let sweep = ExperimentSuite::new(
        "table4",
        ScenarioMatrix::new()
            .schedulers([SchedKind::Orion, SchedKind::Aquatope, SchedKind::Esg])
            .scenarios(Scenario::all()),
    )
    .run();
    sweep.write_artifacts();

    println!(
        "{:<18} {:>22} {:>18} {:>10}",
        "setting", "best-first (Orion)", "BO (Aquatope)", "ESG"
    );
    let mut csv = Vec::new();
    for scenario in Scenario::all() {
        let cell = |kind: SchedKind| {
            &sweep
                .find(kind.name(), scenario)
                .expect("matrix fully populated")
                .result
        };
        let (orion, aquatope, esg) = (
            cell(SchedKind::Orion),
            cell(SchedKind::Aquatope),
            cell(SchedKind::Esg),
        );
        assert_eq!(
            esg.config_misses, 0,
            "ESG adapts its batch to the live queue and must never miss"
        );
        println!(
            "{:<18} {:>21.2}% {:>17.2}% {:>9.2}%",
            scenario.to_string(),
            orion.config_miss_rate() * 100.0,
            aquatope.config_miss_rate() * 100.0,
            esg.config_miss_rate() * 100.0,
        );
        csv.push(format!(
            "{},{:.4},{:.4},{:.4}",
            scenario,
            orion.config_miss_rate(),
            aquatope.config_miss_rate(),
            esg.config_miss_rate()
        ));
    }
    println!("\npaper: Orion 9.6% / 27.32% / 51.68%; Aquatope 85.5% / 59.85% / 58.72%");
    write_csv("table4", "setting,orion_miss,aquatope_miss,esg_miss", &csv);
}
