//! §5.3 — scheduling overhead versus brute force.
//!
//! "In the case where each function has 256 configurations, the search
//! time is 7258ms" for brute force, versus under 10 ms for ESG. The
//! modelled time converts expansions at the calibrated §5.3 rate; the wall
//! column is this Rust implementation's real time.

use esg_bench::{section, write_csv};
use esg_core::{astar_search, brute_force, stagewise_search, StageTable};
use esg_model::{standard_apps, standard_catalog, ConfigGrid, PriceModel};
use esg_profile::ProfileTable;
use esg_sim::OverheadModel;
use std::time::Instant;

fn main() {
    section("§5.3: ESG search vs brute force at ~256 configurations/function");
    let catalog = standard_catalog();
    let grid = ConfigGrid::with_total_configs(256);
    println!("grid: {} configurations per function", grid.len());
    let profiles = ProfileTable::build(&catalog, &grid, &PriceModel::default());
    // A three-stage group (the default g=3) from image classification.
    let app = &standard_apps()[0];
    let stages = app.nodes.clone();
    let table = StageTable::build(&stages, &profiles, 8);
    let gslo = table.min_total_time() * 1.35; // a moderate target
    let model = OverheadModel::default();

    println!(
        "{:<22} {:>14} {:>14} {:>12} {:>14}",
        "search", "expansions", "modelled (ms)", "wall (ms)", "best cost (¢)"
    );
    let mut csv = Vec::new();
    let mut run = |name: &str, f: &dyn Fn() -> esg_core::SearchResult| {
        let t0 = Instant::now();
        let r = f();
        let wall = t0.elapsed().as_secs_f64() * 1000.0;
        let modelled = model.decision_time(r.expansions).as_ms();
        println!(
            "{:<22} {:>14} {:>14.1} {:>12.3} {:>14.5}",
            name, r.expansions, modelled, wall, r.paths[0].cost_cents
        );
        csv.push(format!(
            "{name},{},{modelled:.2},{wall:.4},{:.6}",
            r.expansions, r.paths[0].cost_cents
        ));
        r
    };

    let astar = run("ESG_1Q (A*)", &|| astar_search(&table, gslo, 5));
    let sw = run("ESG_1Q (stage-wise)", &|| stagewise_search(&table, gslo, 5));
    let brute = run("brute force", &|| brute_force(&table, gslo, 5));
    assert!(
        (astar.paths[0].cost_cents - brute.paths[0].cost_cents).abs() < 1e-9,
        "pruning must not change the optimum"
    );
    assert!(
        (sw.paths[0].cost_cents - brute.paths[0].cost_cents).abs() < 1e-9,
        "pruning must not change the optimum"
    );
    println!(
        "\npaper: brute force ≈ 7258 ms at 256 configs/function; ESG < 10 ms.\n\
         Both pruned searches return the brute-force optimum (asserted)."
    );
    write_csv(
        "sec5_3_bruteforce",
        "search,expansions,modelled_ms,wall_ms,best_cost_cents",
        &csv,
    );
}
