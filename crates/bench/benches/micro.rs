//! Criterion microbenches for the core algorithmic pieces: the ESG_1Q
//! variants against brute force, dominator-tree construction, Gaussian-
//! process fitting, and the event queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esg_baselines::bo::GaussianProcess;
use esg_core::{astar_search, brute_force, stagewise_search, StageTable};
use esg_dag::{Dag, DominatorTree};
use esg_model::{standard_apps, standard_catalog, ConfigGrid, PriceModel, SimTime};
use esg_profile::ProfileTable;
use esg_sim::{Event, EventQueue};
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let catalog = standard_catalog();
    let app = &standard_apps()[0];
    let mut group = c.benchmark_group("esg_1q");
    for &configs in &[64usize, 224, 256] {
        let grid = ConfigGrid::with_total_configs(configs);
        let profiles = ProfileTable::build(&catalog, &grid, &PriceModel::default());
        let table = StageTable::build(&app.nodes, &profiles, 8);
        let gslo = table.min_total_time() * 1.35;
        group.bench_with_input(BenchmarkId::new("astar", configs), &table, |b, t| {
            b.iter(|| black_box(astar_search(t, gslo, 5)))
        });
        group.bench_with_input(BenchmarkId::new("stagewise", configs), &table, |b, t| {
            b.iter(|| black_box(stagewise_search(t, gslo, 5)))
        });
        if configs <= 64 {
            group.bench_with_input(BenchmarkId::new("brute", configs), &table, |b, t| {
                b.iter(|| black_box(brute_force(t, gslo, 5)))
            });
        }
    }
    group.finish();
}

fn bench_dominators(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominators");
    for &n in &[16usize, 64, 256] {
        // Layered DAG: node i -> i+1 and i -> i+2 (bypass diamonds).
        let edges: Vec<(usize, usize)> = (0..n - 1)
            .map(|i| (i, i + 1))
            .chain((0..n - 2).map(|i| (i, i + 2)))
            .collect();
        let dag = Dag::new(n, &edges).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(n), &dag, |b, d| {
            b.iter(|| black_box(DominatorTree::build(d)))
        });
    }
    group.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_process");
    for &n in &[50usize, 150, 350] {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 10) as f64 / 9.0, (i / 10) as f64 / 35.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin() + x[1]).collect();
        group.bench_with_input(BenchmarkId::new("fit", n), &(xs, ys), |b, (xs, ys)| {
            b.iter(|| black_box(GaussianProcess::fit(xs, ys, 0.3, 1e-4)))
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(
                    SimTime::from_us((i * 7919) % 100_000),
                    Event::TaskComplete(i),
                );
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_search, bench_dominators, bench_gp, bench_event_queue
}
criterion_main!(benches);
