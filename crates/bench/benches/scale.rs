//! Control-plane scale bench: round-driver throughput vs shard count at
//! 10k–1M queues.
//!
//! The classic round driver's cost per decision is dominated by the
//! eligible scan: every controller round walks *all* queues to find the
//! pending ones, then the classic fast path decides exactly one. The
//! sharded control plane (`SimConfig::shards`) partitions the queues so
//! each shard's round walks only its own slice — an algorithmic
//! `O(Q) → O(Q/N)` cut per decision that needs no extra cores. This
//! target measures that effect on the real machinery: the driver below
//! replicates the platform's staging/commit structure (eligible scan →
//! `QueueView` build → [`ShardedController::stage`] with an O(1) probe
//! scheduler → generation-validated [`ClusterState::try_commit`]) over
//! synthetic queue populations far beyond what end-to-end simulation can
//! reach.
//!
//! Contention is real, not simulated: all shards stage against the same
//! snapshot, so they converge on the same most-free node, and commits
//! past its capacity are generation conflicts that retry — the reported
//! conflict rate is the optimistic-concurrency price of sharding.
//!
//! Per case, a separate instrumented pass records per-decision latency
//! (p99) and the commit/conflict split; both land in `BENCH_scale.json`
//! next to the criterion medians and in the "Control-plane scale"
//! tables of `EXPERIMENTS.md` (`<!-- BENCH:scale:begin/end -->`).
//!
//! The committed `bench_results/BENCH_scale.json` is a CI perf-gate
//! baseline (like `overhead`); `ESG_SMOKE=1` cuts the sample count
//! only, keeping case labels and per-iteration work identical so smoke
//! runs stay comparable to the committed full run.
//!
//! # End-to-end streaming replay
//!
//! The `scale/replay/*` cases drive the *whole* platform — streamed
//! Azure-shaped arrivals pulled lazily from an `ArrivalStream`, the ESG
//! scheduler, the round/shard drivers, arena-backed invocation/task
//! state, and the selected event-queue backend — through ≥1M
//! invocations per full-mode sample (`ESG_SMOKE=1` replays a shorter
//! trace window; medians are reported *per invocation*, so smoke and
//! full runs stay label- and scale-comparable for the perf gate). Each
//! replay also asserts the engine's constant-memory promise: the arena
//! and event-queue high-water marks must stay under a fixed ceiling
//! regardless of replay length.

use criterion::{BenchmarkId, Criterion};
use esg_bench::{render_scale_markdown, section, update_experiments_md, write_json};
use esg_core::EsgScheduler;
use esg_model::{AppId, Config, FnId, InvocationId, NodeId, Resources, SloClass};
use esg_sim::{
    Capabilities, ClusterState, EventQueueKind, JobView, MemoryFootprint, NodeView, Outcome,
    QueueKey, QueueView, RoundCtx, SchedCtx, Scheduler, ShardStats, ShardedController, SimConfig,
    SimEnv, Simulation,
};
use esg_workload::AzureLikeTrace;
use serde_json::json;
use std::collections::VecDeque;
use std::hint::black_box;
use std::time::Instant;

/// Queue-population axis (the controller's scan burden).
const QUEUES: [usize; 3] = [10_000, 100_000, 1_000_000];
/// Shard-count axis.
const SHARDS: [usize; 4] = [1, 2, 4, 8];
/// Commit attempts per measured iteration (fixed across the whole grid
/// so medians are directly comparable; throughput = attempts / median).
const DECISIONS_PER_ITER: usize = 64;
/// Decisions in the separate instrumented (p99 + conflict-rate) pass.
const INSTRUMENTED_DECISIONS: usize = 256;
/// Cluster size backing every case (a realistic control-plane fan-in:
/// queue counts outgrow node counts by orders of magnitude).
const NODES: usize = 64;
/// Per-dispatch demand. Seven fit per node, so an eight-shard staging
/// batch converging on the same most-free node genuinely overflows it —
/// the conflict path is exercised, not hypothesised.
const DEMAND: Resources = Resources::new(2, 1);
/// In-flight dispatch cap: completions (FIFO release) keep the cluster
/// at this occupancy, below the 64 × 7 slot capacity.
const IN_FLIGHT_CAP: usize = 384;
/// Steady-state pending queues (conserved: each commit drains one queue
/// and activates another through a striding cursor).
const PENDING: usize = 1_024;

/// Azure-trace window replayed per full-mode sample, minutes. At the
/// trace's ~2.5k arrivals/min this crosses one million invocations
/// (asserted below); the rate sits just under the paper cluster's
/// capacity so the backlog plateaus instead of growing.
const REPLAY_MINUTES_FULL: usize = 400;
/// Smoke-mode trace window: same labels and per-invocation metric,
/// CI-sized work.
const REPLAY_MINUTES_SMOKE: usize = 20;
/// Constant-memory ceiling for a replay, in arena entries / pending
/// events. Live state tracks the steady-state backlog (~1k invocations
/// plus burst spikes), never the replay length — a millionfold replay
/// must stay under the same fixed bound as a smoke run.
const REPLAY_MEMORY_CEILING: usize = 32_768;

/// One replay case: event-queue backend plus round-driver sharding.
struct ReplayCase {
    label: &'static str,
    kind: EventQueueKind,
    shards: usize,
}

const REPLAY_CASES: [ReplayCase; 3] = [
    ReplayCase {
        label: "scale/replay/heap",
        kind: EventQueueKind::Heap,
        shards: 1,
    },
    ReplayCase {
        label: "scale/replay/wheel",
        kind: EventQueueKind::Wheel,
        shards: 1,
    },
    ReplayCase {
        label: "scale/replay/wheel-s4",
        kind: EventQueueKind::Wheel,
        shards: 4,
    },
];

/// The Azure-shaped replay workload: diurnal cycle, rare 3× bursts,
/// lognormal-ish dispersion, mean pinned below cluster capacity.
fn replay_trace() -> AzureLikeTrace {
    AzureLikeTrace {
        mean_per_minute: 2_500.0,
        period_minutes: 120.0,
        burst_probability: 0.02,
        seed: 42,
        ..AzureLikeTrace::default()
    }
}

/// Result of one timed replay sample.
struct ReplaySample {
    wall_ns: u64,
    arrivals: u64,
    completed: u64,
    shed: u64,
    footprint: MemoryFootprint,
}

/// Streams `minutes` of the Azure trace through the full platform with
/// the ESG scheduler on the given backend/shard configuration.
fn run_replay(case: &ReplayCase, minutes: usize) -> ReplaySample {
    let env = SimEnv::standard(SloClass::Moderate);
    let cfg = SimConfig {
        seed: 42,
        event_queue: case.kind,
        shards: case.shards,
        force_sharded: case.shards > 1,
        ..SimConfig::default()
    };
    let stream = replay_trace().stream(esg_model::standard_app_ids(), Some(minutes));
    let mut sched = EsgScheduler::new();
    let t0 = Instant::now();
    let (r, footprint) =
        Simulation::from_stream(&env, cfg, &mut sched, stream).run_with_footprint();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    ReplaySample {
        wall_ns,
        arrivals: r.arrivals,
        completed: r.total_completed(),
        shed: r.shed_invocations,
        footprint,
    }
}

/// O(1) probe scheduler: the measured cost is the driver itself — scan,
/// view build, staging, commit — not a placement search.
struct Probe;

impl Scheduler for Probe {
    fn name(&self) -> &'static str {
        "scale-probe"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            gpu_sharing: true,
            inter_function_relation: false,
            adaptive: false,
            data_locality: false,
            pre_warming: false,
        }
    }

    fn schedule(&mut self, _ctx: &SchedCtx<'_>) -> Outcome {
        Outcome::single(Config::MIN, 1)
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        ctx.cluster.most_free(config.resources())
    }
}

/// One staged decision: a queue picked by the shard's round plus the
/// placement it chose from its generation-stamped snapshot.
struct Staged {
    qi: usize,
    node: NodeId,
    staged_gen: u64,
}

/// The platform-shaped synthetic driver: `Q` queues partitioned across
/// `N` shards over a shared 64-node [`ClusterState`].
struct ScaleDriver {
    keys: Vec<QueueKey>,
    ctl: ShardedController,
    /// Jobs pending per queue; `> 0` marks the queue eligible.
    depth: Vec<u32>,
    state: ClusterState,
    env: SimEnv,
    jobs: Vec<JobView>,
    /// FIFO of uncompleted dispatches; popping one models a completion.
    in_flight: VecDeque<NodeId>,
    activate_cursor: usize,
    probe: Probe,
    commits: u64,
    conflicts: u64,
}

impl ScaleDriver {
    fn new(queues: usize, shards: usize) -> ScaleDriver {
        let keys: Vec<QueueKey> = (0..queues)
            .map(|i| QueueKey {
                app: AppId(i as u32),
                stage: 0,
            })
            .collect();
        let ctl = ShardedController::new(shards, &keys, None);
        let mut depth = vec![0u32; queues];
        let stride = (queues / PENDING).max(1);
        for p in 0..PENDING.min(queues) {
            depth[p * stride] = 1;
        }
        let nodes: Vec<NodeView> = (0..NODES)
            .map(|i| NodeView::idle(NodeId(i as u32), Resources::new(16, 7)))
            .collect();
        let jobs = vec![JobView {
            invocation: InvocationId(0),
            ready_at_ms: 5.0,
            invocation_arrival_ms: 0.0,
            slack_ms: 500.0,
            pred_node: None,
        }];
        ScaleDriver {
            keys,
            ctl,
            depth,
            state: ClusterState::from_views(nodes),
            env: SimEnv::standard(SloClass::Moderate),
            jobs,
            in_flight: VecDeque::with_capacity(IN_FLIGHT_CAP + 1),
            activate_cursor: 1, // off the initial pending stride
            probe: Probe,
            commits: 0,
            conflicts: 0,
        }
    }

    /// Marks another queue pending (the arrival feed), striding across
    /// the key space so every shard keeps a populated partition.
    fn activate(&mut self) {
        self.activate_cursor = (self.activate_cursor + 7_919) % self.keys.len();
        self.depth[self.activate_cursor] += 1;
    }

    /// One shard's staging round: scan the partition for eligible
    /// queues, build their views, stage through the controller, and
    /// stamp the decision with the state generation — the platform's
    /// staging phase over synthetic queues.
    fn stage_shard(&mut self, shard: usize) -> Option<Staged> {
        let eligible: Vec<usize> = self
            .ctl
            .members(shard)
            .iter()
            .copied()
            .filter(|&qi| self.depth[qi] > 0)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let mut queues: Vec<QueueView<'_>> = Vec::with_capacity(eligible.len());
        for &qi in &eligible {
            queues.push(QueueView {
                key: self.keys[qi],
                jobs: &self.jobs,
                function: FnId((qi % 6) as u32),
                slo_ms: 1_000.0,
                base_latency_ms: 200.0,
                queue_interval_ms: None,
            });
        }
        let ctx = RoundCtx {
            now_ms: 10.0,
            queues: &queues,
            cluster: &self.state,
            profiles: &self.env.profiles,
            apps: &self.env.apps,
            catalog: &self.env.catalog,
            price: &self.env.price,
            transfer: &self.env.transfer,
            noise: &self.env.noise,
            dataplane: None,
            servers: None,
        };
        let decisions = self.ctl.stage(shard, &mut self.probe, &ctx);
        let key = decisions.first()?.0;
        // The placement the shard would hand the dispatcher, chosen from
        // its snapshot; the commit step re-validates it.
        let node = self.state.most_free(DEMAND)?;
        Some(Staged {
            // Keys are built with `app == index`, so the decision maps
            // straight back to its queue slot.
            qi: key.app.0 as usize,
            node,
            staged_gen: self.state.generation(),
        })
    }

    /// Ordered-commit step for one staged decision: re-validate against
    /// the live state; a failure after the generation moved is a
    /// cross-shard conflict (the queue stays pending and is re-staged).
    fn commit(&mut self, st: Staged) {
        let moved = self.state.moved_since(st.staged_gen);
        if self.state.try_commit(st.node, DEMAND) {
            self.commits += 1;
            self.depth[st.qi] = self.depth[st.qi].saturating_sub(1);
            self.activate();
            self.in_flight.push_back(st.node);
            if self.in_flight.len() > IN_FLIGHT_CAP {
                // Completion: the oldest dispatch releases its resources
                // (and bumps the generation, as platform completions do).
                let done = self.in_flight.pop_front().expect("non-empty");
                let v = self.state.node_mut(done);
                v.free += DEMAND;
            }
        } else {
            debug_assert!(moved, "a commit can only fail after the state moved");
            self.conflicts += 1;
        }
    }

    /// Runs `target` commit attempts through staged batches: every shard
    /// stages one decision against the same snapshot epoch, then the
    /// batch commits in shard order — the platform's two-phase loop.
    fn run_decisions(&mut self, target: usize) {
        let shards = self.ctl.shards();
        let mut done = 0usize;
        while done < target {
            let staged: Vec<Staged> = (0..shards).filter_map(|s| self.stage_shard(s)).collect();
            if staged.is_empty() {
                for _ in 0..shards {
                    self.activate();
                }
                continue;
            }
            for st in staged {
                self.commit(st);
                done += 1;
            }
        }
    }

    /// Instrumented variant: per-decision wall latency (its shard's
    /// staging plus its own commit), nanoseconds.
    fn run_instrumented(&mut self, target: usize) -> Vec<u64> {
        let shards = self.ctl.shards();
        let mut lat = Vec::with_capacity(target);
        while lat.len() < target {
            let mut staged: Vec<(Staged, u64)> = Vec::with_capacity(shards);
            for s in 0..shards {
                let t0 = Instant::now();
                let st = self.stage_shard(s);
                let stage_ns = t0.elapsed().as_nanos() as u64;
                if let Some(st) = st {
                    staged.push((st, stage_ns));
                }
            }
            if staged.is_empty() {
                for _ in 0..shards {
                    self.activate();
                }
                continue;
            }
            for (st, stage_ns) in staged {
                let t0 = Instant::now();
                self.commit(st);
                lat.push(stage_ns + t0.elapsed().as_nanos() as u64);
            }
        }
        lat
    }

    fn stats(&self) -> ShardStats {
        let mut s = self.ctl.stats();
        s.commits = self.commits;
        s.conflicts = self.conflicts;
        s.retries = self.conflicts; // every conflicted queue is re-staged
        s
    }
}

/// Case coordinates recorded next to each criterion report.
struct CaseMeta {
    label: String,
    queues: usize,
    shards: usize,
    p99_ns: u64,
    conflict_rate: f64,
    commits: u64,
    conflicts: u64,
}

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    // Smoke cuts samples only: per-iteration work and labels match the
    // committed full-run baseline the perf gate compares against.
    let samples = if smoke { 15 } else { 40 };
    section(if smoke {
        "Control-plane scale: dispatch throughput vs shard count (smoke mode)"
    } else {
        "Control-plane scale: dispatch throughput vs shard count"
    });

    let mut c = Criterion::default().sample_size(samples);
    let mut metas: Vec<CaseMeta> = Vec::new();

    {
        let mut group = c.benchmark_group("scale");
        for &q in &QUEUES {
            for &n in &SHARDS {
                let mut driver = ScaleDriver::new(q, n);
                // Reach steady state: saturate the in-flight window so
                // measured iterations include completions and conflicts.
                driver.run_decisions(IN_FLIGHT_CAP + 128);
                let param = format!("q{q}/s{n}");
                group.bench_with_input(BenchmarkId::new("driver", &param), &(), |b, _| {
                    b.iter(|| {
                        driver.run_decisions(DECISIONS_PER_ITER);
                        black_box(driver.commits)
                    })
                });
                // Instrumented pass on the same warmed driver: p99
                // per-decision latency and the commit/conflict split.
                driver.commits = 0;
                driver.conflicts = 0;
                let mut lat = driver.run_instrumented(INSTRUMENTED_DECISIONS);
                lat.sort_unstable();
                let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
                let stats = driver.stats();
                metas.push(CaseMeta {
                    label: format!("scale/driver/{param}"),
                    queues: q,
                    shards: n,
                    p99_ns: p99,
                    conflict_rate: stats.conflict_rate(),
                    commits: stats.commits,
                    conflicts: stats.conflicts,
                });
            }
        }
        group.finish();
    }

    // End-to-end streaming replay: ≥1M Azure-shaped invocations per
    // full-mode sample through the real platform. Timed outside
    // criterion (a sample is tens of seconds, not microseconds); the
    // reported median is normalized *per invocation* so smoke and full
    // runs compare under the same case labels.
    let replay_samples = if smoke { 1 } else { 3 };
    let replay_minutes = if smoke {
        REPLAY_MINUTES_SMOKE
    } else {
        REPLAY_MINUTES_FULL
    };
    println!("\nbench group: scale/replay ({replay_minutes} trace minutes per sample)");
    let mut replay_cases: Vec<serde_json::Value> = Vec::new();
    let mut replay_arrivals: Vec<u64> = Vec::new();
    for case in &REPLAY_CASES {
        let mut samples_ns: Vec<f64> = Vec::new();
        let mut last: Option<ReplaySample> = None;
        for _ in 0..replay_samples {
            let s = run_replay(case, replay_minutes);
            assert_eq!(
                s.arrivals,
                s.completed + s.shed,
                "{}: replay stranded work",
                case.label
            );
            if !smoke {
                assert!(
                    s.arrivals >= 1_000_000,
                    "{}: full replay must cross one million invocations (got {})",
                    case.label,
                    s.arrivals
                );
            }
            // The constant-memory promise: live state tracks the
            // backlog, never the replay length.
            let fp = s.footprint;
            for (what, n) in [
                ("invocation arena", fp.invocation_slots),
                ("task arena", fp.task_slots),
                ("event queue", fp.peak_pending_events),
            ] {
                assert!(
                    n < REPLAY_MEMORY_CEILING,
                    "{}: {what} grew past the replay memory ceiling ({n} >= {REPLAY_MEMORY_CEILING})",
                    case.label
                );
            }
            samples_ns.push(s.wall_ns as f64 / s.arrivals as f64);
            last = Some(s);
        }
        let last = last.expect("at least one replay sample");
        samples_ns.sort_by(f64::total_cmp);
        let median_ns = samples_ns[samples_ns.len() / 2];
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min_ns = samples_ns[0];
        println!(
            "  {:<28} {:>8.0} ns/invocation  {:>9.0} inv/s  ({} invocations, peak {} live)",
            case.label,
            median_ns,
            1e9 / median_ns,
            last.arrivals,
            last.footprint.peak_live_invocations,
        );
        replay_arrivals.push(last.arrivals);
        replay_cases.push(json!({
            "case": (case.label),
            "kind": "replay",
            "event_queue": (format!("{:?}", case.kind).to_lowercase()),
            "shards": (case.shards),
            "invocations": (last.arrivals),
            "trace_minutes": replay_minutes,
            "median_ns": median_ns,
            "mean_ns": mean_ns,
            "min_ns": min_ns,
            "samples": replay_samples,
            "invocations_per_sec": (1e9 / median_ns),
            "peak_live_invocations": (last.footprint.peak_live_invocations),
            "invocation_slots": (last.footprint.invocation_slots),
            "task_slots": (last.footprint.task_slots),
            "peak_pending_events": (last.footprint.peak_pending_events),
            "completed": (last.completed),
            "shed": (last.shed),
        }));
    }
    // Every backend/shard combination replays the same stream: identical
    // arrival counts are the cheap cross-check (full trace equivalence
    // is pinned by tests/replay_equivalence.rs).
    assert!(
        replay_arrivals.windows(2).all(|w| w[0] == w[1]),
        "replay cases diverged on arrival count: {replay_arrivals:?}"
    );

    // Assemble the artifact from the collected reports.
    let median = |label: &str| {
        c.reports()
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.median_ns)
            .unwrap_or(0.0)
    };
    let throughput = |m: &CaseMeta| {
        let med = median(&m.label);
        if med <= 0.0 {
            return 0.0;
        }
        DECISIONS_PER_ITER as f64 * (1.0 - m.conflict_rate) / (med * 1e-9)
    };
    let mut cases: Vec<serde_json::Value> = metas
        .iter()
        .map(|m| {
            let r = c
                .reports()
                .iter()
                .find(|r| r.label == m.label)
                .unwrap_or_else(|| panic!("no report for case {}", m.label));
            json!({
                "case": (m.label.clone()),
                "kind": "driver",
                "queues": (m.queues),
                "shards": (m.shards),
                "median_ns": (r.median_ns),
                "mean_ns": (r.mean_ns),
                "min_ns": (r.min_ns),
                "samples": (r.samples),
                "decisions_per_iter": DECISIONS_PER_ITER,
                "dispatches_per_sec": (throughput(m)),
                "p99_decision_ns": (m.p99_ns),
                "conflict_rate": (m.conflict_rate),
                "commits": (m.commits),
                "conflicts": (m.conflicts),
            })
        })
        .collect();
    cases.extend(replay_cases);
    let doc = json!({
        "suite": "scale",
        "samples": samples,
        "smoke": smoke,
        "cases": cases,
    });
    write_json("BENCH_scale", &doc);
    if smoke {
        eprintln!("[md] smoke mode: skipping EXPERIMENTS.md update");
    } else {
        update_experiments_md("scale", &render_scale_markdown(&doc));
    }

    // Headline + acceptance: dispatches/sec must rise monotonically with
    // the shard count at 100k+ queues, and the best shard count must
    // clear 2× the single-shard driver (full runs only; smoke medians on
    // loaded CI boxes are guarded by the perf gate instead).
    for &q in &QUEUES {
        let row: Vec<(usize, f64, f64)> = SHARDS
            .iter()
            .map(|&n| {
                let m = metas
                    .iter()
                    .find(|m| m.queues == q && m.shards == n)
                    .expect("measured case");
                (n, throughput(m), m.conflict_rate)
            })
            .collect();
        let base = row[0].1;
        let best = row.iter().map(|r| r.1).fold(0.0, f64::max);
        println!(
            "\nqueues {q}: 1-shard {base:.0} dispatches/s, best {best:.0} ({:.2}×)",
            best / base
        );
        for (n, tput, rate) in &row {
            println!(
                "  s{n}: {tput:>12.0} dispatches/s  conflict rate {:.2}%",
                rate * 100.0
            );
        }
        if !smoke && q >= 100_000 {
            for w in row.windows(2) {
                assert!(
                    // 2% grace: adjacent shard counts at small Q can sit
                    // within wall-clock noise of each other.
                    w[1].1 >= w[0].1 * 0.98,
                    "dispatch throughput not monotone in shard count at {q} queues: \
s{} {:.0}/s → s{} {:.0}/s",
                    w[0].0,
                    w[0].1,
                    w[1].0,
                    w[1].1
                );
            }
            assert!(
                best >= base * 2.0,
                "sharding won less than 2× at {q} queues (best {best:.0}/s vs {base:.0}/s)"
            );
        }
    }
}
