//! §5.4 — the function group size `g`.
//!
//! "The default maximal group size is set to 3 because when the size
//! increases to 4, the search time jumps to 1201ms (for 256 configurations
//! per function) due to the exponential growth of the configuration
//! space." This target sweeps g ∈ {1,2,3,4,5} on the expanded image
//! classification pipeline (5 stages) and reports search effort and the
//! end-to-end quality of the resulting runs (the latter as a sweep over
//! `esg-g<g>` scheduler variants).

use esg_bench::{section, write_csv, ExperimentSuite, ScenarioMatrix, SchedSpec};
use esg_core::{astar_search, EsgScheduler, StageTable};
use esg_model::{standard_apps, standard_catalog, ConfigGrid, PriceModel, Scenario};
use esg_profile::ProfileTable;
use esg_sim::OverheadModel;
use std::time::Instant;

fn main() {
    section("§5.4: function group size sweep");
    // Isolated search cost on a single group of g stages at ~256 configs.
    let catalog = standard_catalog();
    let grid = ConfigGrid::with_total_configs(256);
    let profiles = ProfileTable::build(&catalog, &grid, &PriceModel::default());
    let app = &standard_apps()[3]; // 5 stages
    let model = OverheadModel::default();
    println!(
        "{:<4} {:>14} {:>16} {:>12}",
        "g", "expansions", "modelled (ms)", "wall (ms)"
    );
    let mut csv = Vec::new();
    for g in 1..=5usize {
        let stages: Vec<_> = app.nodes[..g].to_vec();
        let table = StageTable::build(&stages, &profiles, 8);
        let gslo = table.min_total_time() * 1.35;
        let t0 = Instant::now();
        let r = astar_search(&table, gslo, 5);
        let wall = t0.elapsed().as_secs_f64() * 1000.0;
        let modelled = model.decision_time(r.expansions).as_ms();
        println!(
            "{:<4} {:>14} {:>16.1} {:>12.3}",
            g, r.expansions, modelled, wall
        );
        csv.push(format!("{g},{},{modelled:.2},{wall:.4}", r.expansions));
    }
    println!("\npaper: g=3 by default; g=4 jumps to 1201 ms at 256 configs/function.");

    // End-to-end effect of the group size (moderate-normal).
    let gs: [usize; 4] = [1, 2, 3, 4];
    let sweep = ExperimentSuite::new(
        "sec5_4_groupsize",
        ScenarioMatrix::new()
            .schedulers(gs.map(|g| {
                SchedSpec::new(format!("esg-g{g}"), move || {
                    Box::new(EsgScheduler::new().with_group_size(g))
                })
            }))
            .scenarios([Scenario::MODERATE_NORMAL]),
    )
    .run();
    sweep.write_artifacts();

    println!();
    println!(
        "{:<4} {:>10} {:>16} {:>16}",
        "g", "hit %", "cost (¢/inv)", "mean ovh (ms)"
    );
    let mut csv2 = Vec::new();
    for (&g, cell) in gs.iter().zip(&sweep.results) {
        let r = &cell.result;
        let searches: Vec<f64> = r
            .overhead_ms
            .iter()
            .copied()
            .filter(|&o| o > 0.25)
            .collect();
        let ovh = searches.iter().sum::<f64>() / searches.len().max(1) as f64;
        println!(
            "{:<4} {:>9.1}% {:>16.4} {:>16.2}",
            g,
            r.avg_hit_rate() * 100.0,
            r.cost_per_invocation_cents(),
            ovh
        );
        csv2.push(format!(
            "{g},{:.4},{:.6},{ovh:.4}",
            r.avg_hit_rate(),
            r.cost_per_invocation_cents()
        ));
    }
    write_csv(
        "sec5_4_groupsize_search",
        "g,expansions,modelled_ms,wall_ms",
        &csv,
    );
    write_csv(
        "sec5_4_groupsize_e2e",
        "g,avg_hit_rate,cost_per_invocation_cents,mean_overhead_ms",
        &csv2,
    );
}
