//! Table 1 — feature comparison of the five serverless systems.
//!
//! The rows come from each scheduler's `capabilities()` (encoding the
//! published systems, not our §4.2-extended variants).

use esg_bench::{section, write_csv, SchedKind};

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn main() {
    section("Table 1: comparison of serverless systems");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "feature", "INFless", "Fast-GShare", "Orion", "Aquatope", "ESG"
    );
    let order = [
        SchedKind::Infless,
        SchedKind::FastGShare,
        SchedKind::Orion,
        SchedKind::Aquatope,
        SchedKind::Esg,
    ];
    let caps: Vec<_> = order.iter().map(|k| k.build().capabilities()).collect();
    type CapFn = fn(&esg_sim::Capabilities) -> bool;
    let rows: [(&str, CapFn); 5] = [
        ("GPU sharing", |c| c.gpu_sharing),
        ("Inter-function relation", |c| c.inter_function_relation),
        ("Adaptive sched.", |c| c.adaptive),
        ("Data locality", |c| c.data_locality),
        ("Pre-warming", |c| c.pre_warming),
    ];
    let mut csv = Vec::new();
    for (name, f) in &rows {
        let vals: Vec<&str> = caps.iter().map(|c| tick(f(c))).collect();
        println!(
            "{:<24} {:>12} {:>12} {:>12} {:>12} {:>12}",
            name, vals[0], vals[1], vals[2], vals[3], vals[4]
        );
        csv.push(format!(
            "{name},{},{},{},{},{}",
            vals[0], vals[1], vals[2], vals[3], vals[4]
        ));
    }
    write_csv(
        "table1",
        "feature,INFless,FaST-GShare,Orion,Aquatope,ESG",
        &csv,
    );
}
