//! Figure 8 — per-application SLO hit rates and cost for all five
//! schedulers in all three scenarios (12 panels). A thin declaration over
//! the sweep engine's paper grid.

use esg_bench::{section, write_csv, ExperimentSuite, ScenarioMatrix, SchedKind};
use esg_model::Scenario;

fn main() {
    section("Figure 8: per-application SLO hit rate and cost");
    let sweep = ExperimentSuite::new("fig8", ScenarioMatrix::paper()).run();
    sweep.write_artifacts();

    let apps = esg_model::standard_apps();
    let mut csv = Vec::new();
    for scenario in Scenario::all() {
        for (ai, app) in apps.iter().enumerate() {
            println!("\n--- {scenario} / {} ---", app.name);
            println!(
                "{:<12} {:>9} {:>14} {:>14}",
                "scheduler", "hit %", "cost (¢)", "¢/invocation"
            );
            let esg_cost = sweep
                .find(SchedKind::Esg.name(), scenario)
                .map(|c| {
                    let m = &c.result.apps[ai];
                    m.cost_cents / m.completed.max(1) as f64
                })
                .expect("ESG cell");
            for cell in sweep.for_scenario(scenario) {
                let m = &cell.result.apps[ai];
                let per_inv = m.cost_cents / m.completed.max(1) as f64;
                println!(
                    "{:<12} {:>8.1}% {:>14.2} {:>11.4} ({:.2}x ESG)",
                    cell.scheduler,
                    m.hit_rate() * 100.0,
                    m.cost_cents,
                    per_inv,
                    per_inv / esg_cost
                );
                csv.push(format!(
                    "{scenario},{},{},{:.4},{:.4},{:.4}",
                    app.name,
                    cell.scheduler,
                    m.hit_rate(),
                    m.cost_cents,
                    per_inv
                ));
            }
        }
    }
    println!(
        "\npaper shape: ESG has the highest per-app hit rate at lower cost in every\n\
         panel; INFless consumes the most resources."
    );
    write_csv(
        "fig8",
        "scenario,app,scheduler,hit_rate,cost_cents,cost_per_invocation_cents",
        &csv,
    );
}
