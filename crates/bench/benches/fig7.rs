//! Figure 7 — end-to-end latency of each application in the relaxed-heavy
//! setting, per scheduler (the paper plots the full series over finished
//! jobs; we print summary percentiles and dump the series as CSV). A thin
//! declaration over the sweep engine.

use esg_bench::{section, write_csv, ExperimentSuite, ScenarioMatrix, SchedKind};
use esg_model::Scenario;

fn main() {
    section("Figure 7: end-to-end latency per application (relaxed-heavy)");
    let sweep = ExperimentSuite::new(
        "fig7",
        ScenarioMatrix::new()
            .schedulers(SchedKind::all())
            .scenarios([Scenario::RELAXED_HEAVY]),
    )
    .run();
    sweep.write_artifacts();

    let mut csv = Vec::new();
    let apps = esg_model::standard_apps();
    for (ai, app) in apps.iter().enumerate() {
        println!("\n--- {} ---", app.name);
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
            "scheduler", "SLO(ms)", "p25", "p50", "p75", "p95", "hit %"
        );
        for cell in &sweep.results {
            let m = &cell.result.apps[ai];
            let p = |q: f64| m.latency_percentile(q).unwrap_or(0.0);
            println!(
                "{:<12} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>7.1}%",
                cell.scheduler,
                m.slo_ms,
                p(25.0),
                p(50.0),
                p(75.0),
                p(95.0),
                m.hit_rate() * 100.0
            );
            for (j, lat) in m.latencies_ms.iter().enumerate() {
                csv.push(format!("{},{},{j},{lat:.2}", app.name, cell.scheduler));
            }
        }
    }
    println!(
        "\npaper shape: ESG sits below-but-close to each SLO line; FaST-GShare and\n\
         INFless run the largest latencies on the expanded pipeline; cold-start\n\
         strikes appear as spikes in the series CSV."
    );
    write_csv("fig7", "app,scheduler,finished_job,latency_ms", &csv);
}
