//! Static-pinning sweep: the hybrid scheduler (PinPlanner + zero-search
//! pinned tier in front of ESG_1Q) vs pure ESG across Zipf-skewed
//! popularity mixes × server topologies.
//!
//! The clusters group the paper's 16 A100s into servers behind narrow
//! top-of-rack uplinks, with the contended GPU data plane on: intra-
//! server hand-offs ride the wide endpoint pools, cross-server ones
//! additionally squeeze through the ToR. Under a skewed popularity mix
//! the planner pins each hot workflow's stages onto one server, so the
//! head of the distribution completes without ever touching a ToR pool
//! — while pure ESG's locality-first placement happily scatters stages
//! across the server boundary whenever a remote node looks freer.
//!
//! Under uniform popularity no application clears the planner's
//! popularity bar, the pin plan comes out empty, and the hybrid runs
//! ESG's exact decision sequence — those cells are the in-bench
//! regression guard (and `tests/pinning_equivalence.rs` pins the
//! bit-identity itself).
//!
//! Artifacts: `BENCH_pinning.{json,csv}` under `bench_results/`, plus
//! the Markdown tables spliced into `EXPERIMENTS.md` between the
//! `<!-- BENCH:pinning:begin/end -->` markers.
//!
//! `ESG_SMOKE=1` shortens the arrival window for CI smoke runs.

use esg_bench::{
    section, standard_config, ClusterCase, ExperimentSuite, ScenarioMatrix, SchedKind, SchedSpec,
    SweepResult, RUN_SECONDS, WARMUP_SECONDS,
};
use esg_core::HybridScheduler;
use esg_model::{ClusterSpec, Scenario};
use esg_sim::{DataPlaneConfig, PinPlan, PinnedStats, PinningConfig, SimConfig};
use esg_workload::Popularity;

/// The static tier's knobs: a quarter of the cluster's 112 vGPUs may be
/// pinned, across at most three hot applications. The popularity bar
/// (1.25× the uniform share) is what keeps the uniform cells inert.
const PIN_CFG: PinningConfig = PinningConfig {
    budget_vgpus: 28,
    min_share_factor: 1.25,
    max_pinned_apps: 3,
};

/// The topology axis: the paper testbed grouped 4 or 8 GPUs per server,
/// each server behind a 0.05 MB/ms ToR uplink — two orders of magnitude
/// narrower than the endpoint pools, the serving-scale regime where the
/// shared uplink is the contended resource and crossing a server
/// boundary is what a transfer pays for.
fn cluster_cases() -> [ClusterCase; 2] {
    [
        ClusterCase::new(ClusterSpec::paper().with_topology(4, 0.05)),
        ClusterCase::new(ClusterSpec::paper().with_topology(8, 0.05)),
    ]
}

/// Pure ESG vs the hybrid static-pinning tier. The hybrid spec is
/// contextual: its planner analyses the exact workload and cluster of
/// each cell before the run starts.
fn variants() -> [SchedSpec; 2] {
    [
        SchedKind::Esg.into(),
        SchedSpec::contextual("Hybrid", |ctx| {
            let Some(cluster) = ctx.cluster else {
                return Box::new(HybridScheduler::new(PinPlan::empty()));
            };
            Box::new(HybridScheduler::planned(
                PIN_CFG,
                ctx.env,
                cluster,
                ctx.workload,
            ))
        }),
    ]
}

/// The paired pure-ESG row of a hybrid cell.
fn esg_twin<'a>(sweep: &'a [SweepResult], cell: &SweepResult) -> &'a SweepResult {
    sweep
        .iter()
        .find(|c| {
            c.scheduler == "ESG"
                && c.cluster == cell.cluster
                && c.traffic == cell.traffic
                && c.popularity == cell.popularity
        })
        .expect("paired ESG row exists for every hybrid cell")
}

fn main() {
    let smoke = std::env::var("ESG_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let run_seconds = if smoke { 3.0 } else { RUN_SECONDS };
    section(if smoke {
        "Static pinning: hybrid tier vs pure ESG across popularity skews (smoke mode)"
    } else {
        "Static pinning: hybrid tier vs pure ESG across popularity skews"
    });

    let matrix = ScenarioMatrix::new()
        .schedulers(variants())
        .scenarios([Scenario::MODERATE_NORMAL])
        .clusters(cluster_cases())
        .popularity([
            Popularity::Uniform,
            Popularity::Zipf { s: 1.2 },
            Popularity::Zipf { s: 2.0 },
        ]);
    assert_eq!(
        matrix.len(),
        2 * 2 * 3,
        "2 schedulers × 2 topologies × 3 skews"
    );

    let warmup_seconds = WARMUP_SECONDS * run_seconds / RUN_SECONDS;
    let sweep = ExperimentSuite::new("pinning", matrix)
        .with_sim_config(SimConfig {
            warmup_exclude_ms: warmup_seconds * 1000.0,
            data_plane: Some(DataPlaneConfig::default()),
            pinning: Some(PIN_CFG),
            ..standard_config()
        })
        .with_run_seconds(run_seconds)
        .run();
    sweep.write_artifacts();
    if smoke {
        eprintln!("[md] smoke mode: skipping EXPERIMENTS.md update");
    } else {
        sweep.write_experiments_section();
    }

    for case in cluster_cases() {
        println!("\n--- cluster {} ---", case.name);
        println!(
            "{:<8} {:>9} {:>10} {:>11} {:>10} {:>9} {:>8} {:>7}",
            "sched",
            "skew",
            "SLO hit %",
            "cross (MB)",
            "moved (MB)",
            "pin hits",
            "misses",
            "repins"
        );
        for cell in sweep.results.iter().filter(|c| c.cluster == case.name) {
            let r = &cell.result;
            let p = &r.scheduler_stats.pinned;
            println!(
                "{:<8} {:>9} {:>9.1}% {:>11.0} {:>10.0} {:>9} {:>8} {:>7}",
                cell.scheduler,
                cell.popularity,
                r.avg_hit_rate() * 100.0,
                r.transfers.cross_server_mb,
                r.transfers.total_mb,
                p.hits,
                p.misses,
                p.repins,
            );
        }
    }

    // Structural guards, smoke included: the data plane really carried
    // bytes across ToR pools, flows were delayed but never dropped, and
    // the uniform cells' hybrid rows never armed the static tier.
    for cell in &sweep.results {
        assert!(
            cell.result.transfers.started > 0,
            "cell {}/{}/{} started no transfers",
            cell.scheduler,
            cell.cluster,
            cell.popularity
        );
        assert_eq!(
            cell.result.transfers.started, cell.result.transfers.completed,
            "transfers may be delayed, never dropped"
        );
        if cell.popularity == "uniform" {
            assert_eq!(
                cell.result.scheduler_stats.pinned,
                PinnedStats::default(),
                "uniform popularity must leave the pin plan empty"
            );
        }
    }

    // Acceptance guards (full runs only; 3 s smoke cells are too noisy):
    // the uniform cells are empty-plan runs and must match pure ESG to
    // the bit — as must any skewed cell whose planner declined to pin
    // (rate too hot or budget too tight for that topology); the pinned
    // tier must have fired somewhere; and the hybrid must strictly win
    // at least one high-skew cell on GSLO hit rate while moving fewer
    // bytes across servers.
    let mut best: f64 = f64::NEG_INFINITY;
    let mut best_cell = String::new();
    let mut fired = false;
    for cell in sweep.results.iter().filter(|c| c.scheduler == "Hybrid") {
        let esg = esg_twin(&sweep.results, cell);
        let gain = cell.result.avg_hit_rate() - esg.result.avg_hit_rate();
        let inert = cell.result.scheduler_stats.pinned == PinnedStats::default();
        if cell.popularity == "uniform" || inert {
            assert_eq!(
                cell.result.avg_hit_rate(),
                esg.result.avg_hit_rate(),
                "empty-plan hybrid diverged from ESG on {}/{}",
                cell.cluster,
                cell.popularity
            );
            assert_eq!(
                cell.result.transfers.cross_server_mb, esg.result.transfers.cross_server_mb,
                "empty-plan hybrid moved different bytes on {}/{}",
                cell.cluster, cell.popularity
            );
            continue;
        }
        fired = fired || cell.result.scheduler_stats.pinned.hits > 0;
        let fewer_cross =
            cell.result.transfers.cross_server_mb < esg.result.transfers.cross_server_mb;
        if gain > best && fewer_cross {
            best = gain;
            best_cell = format!("{}/{}", cell.cluster, cell.popularity);
        }
    }
    if !smoke {
        assert!(fired, "pinned tier never fired on any skewed cell");
    }
    println!(
        "\nhybrid vs pure ESG: best skewed-cell gain {:+.2} pp (at {})",
        best * 100.0,
        if best_cell.is_empty() {
            "none"
        } else {
            &best_cell
        }
    );
    if !smoke {
        assert!(
            best > 0.0,
            "hybrid never strictly beat ESG with reduced cross-server traffic \
on any skewed cell — the pinning tier is not paying for itself"
        );
    }
}
