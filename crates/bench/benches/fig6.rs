//! Figure 6 — average SLO hit rate and normalized cost for the five
//! schedulers under the three SLO/workload settings.

use esg_bench::{run_matrix, section, write_csv, SchedKind};
use esg_model::Scenario;

fn main() {
    section("Figure 6: average SLO hit rate and normalized cost (ESG = 1)");
    let results = run_matrix(&SchedKind::all(), &Scenario::all());
    let mut csv = Vec::new();
    for scenario in Scenario::all() {
        println!("\n--- {scenario} ---");
        println!(
            "{:<12} {:>10} {:>14} {:>16}",
            "scheduler", "SLO hit %", "cost (¢/inv)", "cost vs ESG"
        );
        let esg_cost = results
            .iter()
            .find(|(s, k, _)| *s == scenario && *k == SchedKind::Esg)
            .map(|(_, _, r)| r.cost_per_invocation_cents())
            .expect("ESG cell present");
        for (s, k, r) in results.iter().filter(|(s, _, _)| *s == scenario) {
            let norm = r.cost_per_invocation_cents() / esg_cost;
            println!(
                "{:<12} {:>9.1}% {:>14.4} {:>15.2}x",
                k.name(),
                r.avg_hit_rate() * 100.0,
                r.cost_per_invocation_cents(),
                norm
            );
            csv.push(format!(
                "{s},{},{:.4},{:.6},{:.4}",
                k.name(),
                r.avg_hit_rate(),
                r.cost_per_invocation_cents(),
                norm
            ));
        }
    }
    println!(
        "\npaper shape: ESG highest hit rate in every scenario at the lowest cost;\n\
         INFless/FaST-GShare trail by 36-61% in strict-light; Orion and Aquatope\n\
         lose 46-80%; baseline costs run 1.47-2.87x ESG."
    );
    write_csv(
        "fig6",
        "scenario,scheduler,avg_hit_rate,cost_per_invocation_cents,cost_vs_esg",
        &csv,
    );
}
