//! Figure 6 — average SLO hit rate and normalized cost for the five
//! schedulers under the three SLO/workload settings. A thin declaration
//! over the sweep engine: the paper grid, printed per scenario.

use esg_bench::{section, write_csv, ExperimentSuite, ScenarioMatrix, SchedKind};
use esg_model::Scenario;

fn main() {
    section("Figure 6: average SLO hit rate and normalized cost (ESG = 1)");
    let sweep = ExperimentSuite::new("fig6", ScenarioMatrix::paper()).run();
    sweep.write_artifacts();

    let mut csv = Vec::new();
    for scenario in Scenario::all() {
        println!("\n--- {scenario} ---");
        println!(
            "{:<12} {:>10} {:>14} {:>16}",
            "scheduler", "SLO hit %", "cost (¢/inv)", "cost vs ESG"
        );
        let esg_cost = sweep
            .find(SchedKind::Esg.name(), scenario)
            .map(|c| c.result.cost_per_invocation_cents())
            .expect("ESG cell present");
        for cell in sweep.for_scenario(scenario) {
            let r = &cell.result;
            let norm = r.cost_per_invocation_cents() / esg_cost;
            println!(
                "{:<12} {:>9.1}% {:>14.4} {:>15.2}x",
                cell.scheduler,
                r.avg_hit_rate() * 100.0,
                r.cost_per_invocation_cents(),
                norm
            );
            csv.push(format!(
                "{scenario},{},{:.4},{:.6},{:.4}",
                cell.scheduler,
                r.avg_hit_rate(),
                r.cost_per_invocation_cents(),
                norm
            ));
        }
    }
    println!(
        "\npaper shape: ESG highest hit rate in every scenario at the lowest cost;\n\
         INFless/FaST-GShare trail by 36-61% in strict-light; Orion and Aquatope\n\
         lose 46-80%; baseline costs run 1.47-2.87x ESG."
    );
    write_csv(
        "fig6",
        "scenario,scheduler,avg_hit_rate,cost_per_invocation_cents,cost_vs_esg",
        &csv,
    );
}
