//! The plan cache: memoised ESG_1Q searches keyed on what the search
//! actually depends on.
//!
//! §5.3's headline is that pipeline-conscious scheduling stays cheap
//! enough to run per request; this module makes that cheaper still by
//! never re-running a search whose inputs were just solved. A search is a
//! pure function of `(stage table, effective GSLO, K, premium, variant)`,
//! and the stage table is itself a pure function of `(window functions,
//! batch cap)` over the immutable profile table — so a [`PlanKey`] built
//! from those coordinates plus the reduced-DAG fingerprint
//! (`esg_dag::Hierarchy::fingerprint`) identifies the result exactly.
//!
//! The effective GSLO is continuous (it is derived from live slack), so
//! exact keys would never repeat. [`quantize_gslo`] therefore buckets it:
//! the scheduler *searches with the bucket's representative* (the budget
//! rounded down by at most one part in 2^[`GSLO_MANTISSA_BITS`], i.e.
//! tightened, never loosened — the SLO-safe direction), which makes the
//! memo semantically invisible: cached and uncached dispatch are
//! bit-identical because both quantize (`tests/plan_cache_equivalence.rs`
//! pins this across a churn-heavy sweep).
//!
//! The cache is LRU-bounded, counts hits/misses/evictions (surfaced as
//! `esg_sim::SchedulerStats` through `ExperimentResult`), and is
//! invalidated wholesale on cluster-churn notifications. Because keys
//! capture every search input (the node-class speed factor included),
//! invalidation is a memory/robustness bound rather than a correctness
//! requirement: a regime change re-populates the cache with the keys the
//! new cluster actually produces instead of letting a dead regime's
//! entries squat in the LRU.

use crate::search::SearchResult;
use esg_model::FnId;
use std::collections::HashMap;

/// Explicit mantissa bits kept by [`quantize_gslo`]: buckets are ~0.8%
/// wide (2^-7), tight enough that the tightened budget is within profile
/// noise, wide enough that per-request GSLOs repeat across requests.
pub const GSLO_MANTISSA_BITS: u32 = 7;

/// Rounds a search budget down onto the plan-cache bucket grid by
/// clearing all but the top [`GSLO_MANTISSA_BITS`] mantissa bits.
/// Monotone, deterministic, and never larger than the input (for
/// non-negative finite inputs), so a path feasible under the quantized
/// budget is feasible under the real one. Non-finite or non-positive
/// budgets collapse to 0 (the search then falls back to the fastest
/// path, exactly as it would unquantized).
pub fn quantize_gslo(gslo_ms: f64) -> f64 {
    if !gslo_ms.is_finite() || gslo_ms <= 0.0 {
        return 0.0;
    }
    const DROP: u64 = (1u64 << (52 - GSLO_MANTISSA_BITS as u64)) - 1;
    f64::from_bits(gslo_ms.to_bits() & !DROP)
}

/// Everything an ESG_1Q invocation depends on, collapsed to a hashable
/// key. Two dispatches with equal keys would run byte-identical searches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Reduced-DAG fingerprint of the application
    /// (`esg_dag::Hierarchy::fingerprint`, falling back to
    /// `esg_dag::Dag::fingerprint` for non-reducible DAGs).
    pub dag_fp: u64,
    /// FNV over the search window's function ids and the first-stage
    /// batch cap — identifies the stage table within the app.
    pub window_fp: u64,
    /// Bit pattern of the *quantized* effective GSLO (the value the
    /// search actually runs with).
    pub gslo_bits: u64,
    /// Bit pattern of the node-class speed factor the budget was scaled
    /// by (redundant with `gslo_bits` in the common path, but it keys the
    /// scheduler's post-search feasibility arithmetic too).
    pub speed_bits: u64,
    /// Solution count K of the search.
    pub k: u32,
    /// Bit pattern of the premium band (0.0 for probes, 0.5 for
    /// dispatch-quality searches).
    pub premium_bits: u64,
    /// Search-variant tag (0 = A*, 1 = stage-wise).
    pub variant: u8,
}

impl PlanKey {
    /// FNV-1a over a window's function ids plus the batch cap (the
    /// `window_fp` component) — the same `esg_dag::Fnv` the DAG
    /// fingerprints use.
    pub fn window_fingerprint(fns: &[FnId], batch_cap: u32) -> u64 {
        let mut h = esg_dag::Fnv::new();
        h.write_u64(fns.len() as u64);
        for f in fns {
            h.write_u64(f.0 as u64);
        }
        h.write_u64(batch_cap as u64);
        h.finish()
    }
}

/// A memoised search result plus the table aggregate the scheduler needs
/// when the result is infeasible (the "winnable race" check), so a cache
/// hit skips the table build entirely.
#[derive(Clone, Debug)]
pub struct CachedPlan {
    /// The search result, exactly as the search produced it.
    pub result: SearchResult,
    /// `StageTable::min_total_time()` of the searched table.
    pub min_total_ms: f64,
}

/// Hit/miss accounting of one [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that fell through to a real search.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Wholesale invalidations (churn notifications).
    pub invalidations: u64,
}

struct Slot {
    plan: CachedPlan,
    last_used: u64,
}

/// A bounded LRU memo of [`CachedPlan`]s keyed by [`PlanKey`].
///
/// Recency is tracked with a monotone tick (unique per operation), so the
/// eviction victim is deterministic regardless of `HashMap` iteration
/// order — sweep determinism depends on this.
pub struct PlanCache {
    map: HashMap<PlanKey, Slot>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl PlanCache {
    /// Default entry bound: comfortably covers the standard environment's
    /// (app, stage, bucket, class) population while capping memory at a
    /// few hundred K-path results.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// An empty cache at [`Self::DEFAULT_CAPACITY`].
    pub fn new() -> PlanCache {
        PlanCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Looks up `key`, refreshing its recency on a hit. Counts a miss on
    /// `None` (the caller is expected to search and [`insert`](Self::insert)).
    pub fn get(&mut self, key: &PlanKey) -> Option<CachedPlan> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.stats.hits += 1;
                Some(slot.plan.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Memoises `plan` under `key`, evicting the least-recently-used
    /// entry when the bound is reached.
    pub fn insert(&mut self, key: PlanKey, plan: CachedPlan) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // Unique ticks make the minimum unique, so HashMap iteration
            // order cannot influence which entry goes.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.stats.insertions += 1;
        self.map.insert(
            key,
            Slot {
                plan,
                last_used: self.tick,
            },
        );
    }

    /// Drops every entry (cluster-membership churn: the speed landscape
    /// that shaped recent keys is gone, so let the new regime repopulate).
    pub fn invalidate(&mut self) {
        self.map.clear();
        self.stats.invalidations += 1;
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the memo holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accumulated counters (they survive invalidation).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.map.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::PathCandidate;
    use esg_model::Config;

    fn key(i: u64) -> PlanKey {
        PlanKey {
            dag_fp: i,
            window_fp: i.wrapping_mul(31),
            gslo_bits: 0,
            speed_bits: 1f64.to_bits(),
            k: 5,
            premium_bits: 0.5f64.to_bits(),
            variant: 0,
        }
    }

    fn plan(cost: f64) -> CachedPlan {
        CachedPlan {
            result: SearchResult {
                paths: vec![PathCandidate {
                    configs: vec![Config::MIN],
                    time_ms: 1.0,
                    cost_cents: cost,
                }],
                expansions: 10,
                feasible: true,
            },
            min_total_ms: 1.0,
        }
    }

    #[test]
    fn quantize_rounds_down_within_one_bucket() {
        for &v in &[0.37, 1.0, 12.345, 400.0, 1e6] {
            let q = quantize_gslo(v);
            assert!(q <= v, "{q} > {v}");
            assert!(
                q >= v * (1.0 - 2.0f64.powi(-(GSLO_MANTISSA_BITS as i32))),
                "{q} more than one bucket below {v}"
            );
            // Idempotent: a representative maps to itself.
            assert_eq!(quantize_gslo(q).to_bits(), q.to_bits());
        }
        assert_eq!(quantize_gslo(0.0), 0.0);
        assert_eq!(quantize_gslo(-5.0), 0.0);
        assert_eq!(quantize_gslo(f64::INFINITY), 0.0);
        assert_eq!(quantize_gslo(f64::NAN), 0.0);
    }

    #[test]
    fn quantize_buckets_nearby_values_together() {
        // Values within a fraction of a bucket share a representative…
        assert_eq!(
            quantize_gslo(400.0).to_bits(),
            quantize_gslo(400.0 * (1.0 + 2.0f64.powi(-10))).to_bits()
        );
        // …and clearly distinct budgets do not.
        assert_ne!(
            quantize_gslo(400.0).to_bits(),
            quantize_gslo(430.0).to_bits()
        );
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = PlanCache::with_capacity(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), plan(1.0));
        let got = c.get(&key(1)).expect("hit");
        assert_eq!(got.result.paths[0].cost_cents, 1.0);
        assert!(c.get(&key(2)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 2, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PlanCache::with_capacity(2);
        c.insert(key(1), plan(1.0));
        c.insert(key(2), plan(2.0));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(3), plan(3.0));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(2)).is_none(), "LRU entry must be gone");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut c = PlanCache::with_capacity(2);
        c.insert(key(1), plan(1.0));
        c.insert(key(2), plan(2.0));
        c.insert(key(2), plan(20.0)); // overwrite in place
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(
            c.get(&key(2)).expect("hit").result.paths[0].cost_cents,
            20.0
        );
    }

    #[test]
    fn invalidation_clears_entries_but_keeps_counters() {
        let mut c = PlanCache::with_capacity(8);
        c.insert(key(1), plan(1.0));
        c.insert(key(2), plan(2.0));
        assert!(c.get(&key(1)).is_some());
        c.invalidate();
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none(), "churn must drop cached plans");
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.hits, 1, "counters survive invalidation");
        assert_eq!(s.insertions, 2);
    }

    #[test]
    fn window_fingerprint_is_order_and_cap_sensitive() {
        let a = PlanKey::window_fingerprint(&[FnId(0), FnId(1)], 8);
        let b = PlanKey::window_fingerprint(&[FnId(1), FnId(0)], 8);
        let c = PlanKey::window_fingerprint(&[FnId(0), FnId(1)], 4);
        assert_ne!(a, b, "stage order is part of the table identity");
        assert_ne!(a, c, "batch cap is part of the table identity");
        assert_eq!(a, PlanKey::window_fingerprint(&[FnId(0), FnId(1)], 8));
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut c = PlanCache::with_capacity(0);
        assert_eq!(c.capacity(), 1);
        c.insert(key(1), plan(1.0));
        c.insert(key(2), plan(2.0));
        assert_eq!(c.len(), 1);
    }
}
