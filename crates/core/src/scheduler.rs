//! [`EsgScheduler`]: ESG plugged into the simulation platform.
//!
//! Per decision (§3.1, Fig. 2d):
//!
//! 1. look up the queue's stage in the app's dominator-based SLO plan;
//! 2. convert the oldest queued invocation's *current slack* into the
//!    group target `GSLO` (re-deriving the quota from live state is what
//!    makes ESG adaptive: delays upstream shrink the budget downstream,
//!    head-room upstream relaxes it);
//! 3. run ESG_1Q over the remaining stages of the group, with the first
//!    stage's batch capped at the live queue length;
//! 4. return the configuration priority queue (first-stage configs of the
//!    K cheapest paths);
//! 5. place with locality first (§3.4): predecessor invoker, home invoker,
//!    warm invokers, freest cold invoker.

use crate::bounds::StageTable;
use crate::cache::{quantize_gslo, CachedPlan, PlanCache, PlanKey};
use crate::plan::AppPlans;
use crate::policy::{BandwidthAwarePacking, EsgCrossQueuePacking};
use crate::search::{astar_search_with, stagewise_search, SearchScratch};
use esg_model::{Config, FnId, NodeId};
use esg_sim::{
    place_locality_first, Capabilities, Outcome, PolicySpec, PolicyStack, SchedCtx, Scheduler,
    SchedulerEvent, SchedulerStats, SloAdmission,
};

/// Which published ESG_1Q formulation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SearchVariant {
    /// A* best-first with dual-blade pruning (the paper's headline design).
    #[default]
    AStar,
    /// The stage-wise Algorithm-1 form (Appendix B).
    StageWise,
}

/// The ESG scheduling algorithm.
#[derive(Debug)]
pub struct EsgScheduler {
    group_size: usize,
    k: usize,
    variant: SearchVariant,
    plans: Option<AppPlans>,
    /// Queues currently holding for batch formation:
    /// `(app, stage) → (hold until ms, target batch)`. Re-checks while
    /// holding are cheap (no full search).
    waiting: std::collections::HashMap<(u32, usize), (f64, u32)>,
    /// Memoised searches (None = caching disabled; the search budget is
    /// quantized either way, so disabling the cache cannot change
    /// decisions — see `crate::cache`).
    cache: Option<PlanCache>,
    /// Reused A* allocations (arena, open list, Pareto fronts).
    scratch: SearchScratch,
    /// Full searches actually executed.
    searches: u64,
    /// The round-policy stack driving `schedule_round` (classic/empty by
    /// default — bit-identical to the pre-policy contract).
    policy: PolicyStack,
}

impl Default for EsgScheduler {
    fn default() -> Self {
        EsgScheduler::new()
    }
}

impl EsgScheduler {
    /// ESG with the paper's defaults: group size 3, K = 5, A* search,
    /// plan cache on.
    pub fn new() -> EsgScheduler {
        EsgScheduler {
            group_size: 3,
            k: 5,
            variant: SearchVariant::AStar,
            plans: None,
            waiting: std::collections::HashMap::new(),
            cache: Some(PlanCache::new()),
            scratch: SearchScratch::new(),
            searches: 0,
            policy: PolicyStack::classic(),
        }
    }

    /// Replaces the round-policy stack (e.g. `PolicyStack::new()
    /// .with(SloAdmission::default()).with(EsgCrossQueuePacking::default())`).
    pub fn with_policy(mut self, policy: PolicyStack) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the maximum function-group size (§5.4 sensitivity).
    pub fn with_group_size(mut self, g: usize) -> Self {
        assert!(g >= 1);
        self.group_size = g;
        self
    }

    /// Overrides the solution count K (§5.4 sensitivity, Fig. 11).
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.k = k;
        self
    }

    /// Selects the search variant (ablation).
    pub fn with_variant(mut self, v: SearchVariant) -> Self {
        self.variant = v;
        self
    }

    /// Bounds the plan cache to `capacity` entries.
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Some(PlanCache::with_capacity(capacity));
        self
    }

    /// Disables the plan cache (every dispatch searches from scratch).
    /// Decisions are unchanged — the cache is a pure memo — which
    /// `tests/plan_cache_equivalence.rs` pins bit-for-bit.
    pub fn without_plan_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// The configured K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// One memoised ESG_1Q invocation over the window `(fns, cap)`.
    ///
    /// The effective budget is quantized onto the cache's bucket grid
    /// first (cache on or off — quantization is what makes the memo
    /// semantically invisible), then the cache is consulted before a real
    /// search runs. `probe` selects the cheap K=1 exact form used for
    /// wait-target evaluation; dispatch-quality searches use K with a 50%
    /// premium band (alternates far above the optimum never beat
    /// re-running the search).
    #[allow(clippy::too_many_arguments)] // the seven are the key's coordinates
    fn plan_window(
        &mut self,
        ctx: &SchedCtx<'_>,
        dag_fp: u64,
        fns: &[FnId],
        cap: u32,
        gslo_eff: f64,
        speed: f64,
        probe: bool,
    ) -> CachedPlan {
        let gslo_q = quantize_gslo(gslo_eff);
        let (k, premium): (usize, f64) = if probe { (1, 0.0) } else { (self.k, 0.5) };
        let key = PlanKey {
            dag_fp,
            window_fp: PlanKey::window_fingerprint(fns, cap),
            gslo_bits: gslo_q.to_bits(),
            speed_bits: speed.to_bits(),
            k: k as u32,
            premium_bits: premium.to_bits(),
            variant: match self.variant {
                SearchVariant::AStar => 0,
                SearchVariant::StageWise => 1,
            },
        };
        if let Some(cache) = &mut self.cache {
            if let Some(hit) = cache.get(&key) {
                return hit;
            }
        }
        let table = StageTable::build(fns, ctx.profiles, cap);
        self.searches += 1;
        let result = match self.variant {
            SearchVariant::AStar => {
                astar_search_with(&table, gslo_q, k, premium, &mut self.scratch)
            }
            SearchVariant::StageWise => stagewise_search(&table, gslo_q, k),
        };
        let plan = CachedPlan {
            result,
            min_total_ms: table.min_total_time(),
        };
        if let Some(cache) = &mut self.cache {
            cache.insert(key, plan.clone());
        }
        plan
    }
}

impl Scheduler for EsgScheduler {
    fn name(&self) -> &'static str {
        "ESG"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            gpu_sharing: true,
            inter_function_relation: true,
            adaptive: true,
            data_locality: true,
            pre_warming: true,
        }
    }

    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome {
        if ctx.jobs.is_empty() {
            return Outcome::skip();
        }
        let group_size = self.group_size;
        let plans = self
            .plans
            .get_or_insert_with(|| AppPlans::build(ctx.apps, ctx.profiles, group_size));
        let plan = plans.plan(ctx.key.app.index());
        let dag_fp = plan.fingerprint;
        let stage = ctx.key.stage;

        // Remaining stages of this stage's group, as functions.
        let app = ctx.app_spec();
        let window = plan.search_window(stage);
        let fns: Vec<FnId> = window.iter().map(|&v| app.nodes[v]).collect();

        // GSLO from live slack: the oldest invocation's remaining time,
        // scaled by the window's share of all remaining work, minus the
        // overheads the profile does not model — input transfers for the
        // window's stages (locality-dependent) and a dispatch/queueing
        // margin per stage. Without this margin the search fills the whole
        // budget with execution time and the hand-off costs push the
        // end-to-end latency just past the SLO.
        let slack = ctx
            .jobs
            .iter()
            .map(|j| j.slack_ms)
            .fold(f64::INFINITY, f64::min);
        let transfer_est: f64 = window
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let input = ctx.catalog.get(app.nodes[v]).input_mb;
                let local = if i == 0 {
                    // First stage: entry inputs come from the gateway.
                    ctx.jobs.first().is_some_and(|j| j.pred_node.is_some())
                } else {
                    true // later window stages co-locate under ESG_Dispatch
                };
                ctx.transfer.ms(input, local)
            })
            .sum();
        const DISPATCH_MARGIN_MS: f64 = 5.0;
        let margin = transfer_est + DISPATCH_MARGIN_MS * window.len() as f64;
        let window_share = plan.window_share(stage);
        let gslo = ((slack - margin) * window_share).max(0.0);

        // Plan against the noise tail, not the mean: a path whose *mean*
        // time equals the budget misses half the time. Scaling the target
        // by 1/P95 makes the selected path's 95th percentile fit (the same
        // device Orion uses, §4.2; ESG lands "below but close to the SLO").
        let p95 = ctx.noise.p95_factor();

        // Heterogeneity: the stage tables hold baseline-class latencies,
        // but this batch will run `speed ×` slower on the node ESG_Dispatch
        // is about to pick. Probe the dispatch policy with a minimal
        // demand to learn that node's class, then shrink the search budget
        // by its factor — dividing the budget is equivalent to scaling
        // every stage-table latency by the class (Appendix A). The probe
        // is refined after the search: see below.
        let preferred = ctx.jobs.iter().find_map(|j| j.pred_node);
        let speed_at = |demand: esg_model::Resources| {
            place_locality_first(ctx, demand, preferred)
                .map(|n| ctx.cluster.speed_of(n))
                .unwrap_or(1.0)
        };
        let mut speed = speed_at(Config::MIN.resources());
        let mut gslo_eff = gslo / (p95 * speed);

        let qlen = ctx.jobs.len() as u32;
        let key = (ctx.key.app.0, ctx.key.stage);

        // Cheap path while holding this queue for batch formation.
        if let Some(&(until, target)) = self.waiting.get(&key) {
            if qlen < target && ctx.now_ms < until {
                return Outcome {
                    candidates: Vec::new(),
                    expansions: 16, // timer re-check, not a search
                    planned_batch: None,
                    ..Outcome::default()
                };
            }
            self.waiting.remove(&key);
        }

        // First search without a batch cap: ESG_1Q explores the full
        // (batch, vCPUs, vGPUs) space (§3.1 — "ESG_1Q does not consider
        // current resource availability constraints"). The plan cache is
        // consulted before any table is built or search run; a hit replays
        // the memoised result (same expansions, so the simulated overhead
        // accounting is cache-oblivious).
        let max_batch = ctx.profiles.grid().max_batch();
        let mut planned = self.plan_window(ctx, dag_fp, &fns, max_batch, gslo_eff, speed, false);
        let mut expansions = planned.result.expansions;

        // Refine the class probe: the MIN-demand probe can land on a fast
        // node that lacks room for the *chosen* config's real demand, in
        // which case dispatch falls through to a slower class and the
        // planned latency is optimistic. Re-probe with the winning
        // config's demand; if the refined class is slower, re-run the
        // search once under the tighter budget (bounded: one extra pass,
        // only in the SLO-dangerous direction).
        if planned.result.feasible {
            let refined = speed_at(planned.result.paths[0].configs[0].resources());
            if refined > speed + 1e-9 {
                speed = refined;
                gslo_eff = gslo / (p95 * speed);
                let p2 = self.plan_window(ctx, dag_fp, &fns, max_batch, gslo_eff, speed, false);
                expansions += p2.result.expansions;
                planned = p2;
            }
        }

        let min_total_ms = planned.min_total_ms;
        let result = planned.result;

        if !result.feasible {
            // No path fits the conservative (tail- and margin-adjusted)
            // budget. Two very different situations hide here:
            //
            // * *Borderline*: the raw slack still covers the window's
            //   fastest path — race for the deadline with the fastest
            //   configurations (`setDefaultPaths` semantics).
            // * *Hopeless*: the deadline is already lost. Draining with
            //   resource-maximal configs would steal capacity from
            //   invocations that can still win; drain cost-efficiently
            //   instead (largest affordable batch, cheapest per job).
            // "Winnable" is judged at the *fastest* class any feasible
            // node offers — a borderline deadline may still be met by
            // racing on a fast node even when the locality pick is slow.
            let best_speed = ctx
                .cluster
                .fastest_fit(Config::MIN.resources())
                .map(|n| ctx.cluster.speed_of(n))
                .unwrap_or(speed);
            let winnable = min_total_ms * best_speed <= slack.max(0.0) * window_share;
            let candidates: Vec<Config> = if winnable {
                result
                    .first_stage_candidates()
                    .into_iter()
                    .map(|c| c.clamp_batch(qlen))
                    .collect()
            } else {
                let profile = ctx.profiles.profile(ctx.function);
                profile
                    .entries_by_cost()
                    .find(|e| e.config.batch <= qlen)
                    .map(|e| vec![e.config])
                    .unwrap_or_else(|| {
                        result
                            .first_stage_candidates()
                            .into_iter()
                            .map(|c| c.clamp_batch(qlen))
                            .collect()
                    })
            };
            return Outcome {
                candidates,
                expansions,
                planned_batch: None,
                ..Outcome::default()
            };
        }

        let best_batch = result.paths[0].configs[0].batch;
        if best_batch > qlen {
            // The cost-optimal batch needs more jobs than are queued. Try
            // batch targets in descending order: hold the queue for the
            // largest batch whose formation wait plus (tail-adjusted) path
            // time still fits the budget; otherwise adapt to the live
            // queue (the adaptation Table 4 credits ESG with —
            // pre-planned schedulers clamp and miss instead).
            if let Some(interval) = ctx.queue_interval_ms {
                let mut batches: Vec<u32> = ctx
                    .profiles
                    .grid()
                    .batches
                    .iter()
                    .copied()
                    .filter(|&b| b > qlen && b <= best_batch)
                    .collect();
                batches.sort_unstable_by(|a, b| b.cmp(a));
                let mut cached = Some(result);
                for b in batches {
                    let r = if b == best_batch {
                        cached.take().expect("first iteration only")
                    } else {
                        let r = self
                            .plan_window(ctx, dag_fp, &fns, b, gslo_eff, speed, true)
                            .result;
                        expansions += r.expansions;
                        r
                    };
                    if !r.feasible {
                        continue;
                    }
                    let actual = r.paths[0].configs[0].batch;
                    if actual <= qlen {
                        // The cap pushed the optimum inside the queue.
                        return Outcome {
                            candidates: r.first_stage_candidates(),
                            expansions,
                            planned_batch: None,
                            ..Outcome::default()
                        };
                    }
                    let wait = (actual - qlen) as f64 * interval;
                    if r.paths[0].time_ms * p95 * speed + wait <= gslo {
                        self.waiting.insert(key, (ctx.now_ms + wait, actual));
                        return Outcome {
                            candidates: Vec::new(),
                            expansions,
                            planned_batch: None,
                            ..Outcome::default()
                        };
                    }
                }
            }
            let capped_result = self
                .plan_window(ctx, dag_fp, &fns, qlen, gslo_eff, speed, false)
                .result;
            expansions += capped_result.expansions;
            return Outcome {
                candidates: capped_result.first_stage_candidates(),
                expansions,
                planned_batch: None,
                ..Outcome::default()
            };
        }

        // Clamp cheaper K-th alternatives that still over-batch.
        let candidates: Vec<Config> = result
            .first_stage_candidates()
            .into_iter()
            .map(|c| c.clamp_batch(qlen))
            .collect();
        Outcome {
            candidates,
            expansions,
            planned_batch: None,
            ..Outcome::default()
        }
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        // Prefer the predecessor invoker of the jobs that will form the
        // batch (§3.4); the oldest job decides on disagreement.
        let preferred = ctx
            .jobs
            .iter()
            .take(config.batch as usize)
            .find_map(|j| j.pred_node);
        place_locality_first(ctx, config.resources(), preferred)
    }

    fn on_event(&mut self, event: &SchedulerEvent<'_>) {
        match event {
            // Membership changed: recent keys were shaped by a speed
            // landscape that no longer exists. Entries are never *wrong*
            // (keys capture every search input), but letting a dead
            // regime squat in the LRU wastes the bound, so drop
            // everything and repopulate.
            SchedulerEvent::Churn { .. } => {
                if let Some(cache) = &mut self.cache {
                    cache.invalidate();
                }
            }
            // A shed emptied the queue (directly or via sibling purge):
            // any batch-formation hold was computed for the killed jobs,
            // and fresh arrivals must not wait out a dead timer.
            SchedulerEvent::QueueShed { key, .. } => {
                self.waiting.remove(&(key.app.0, key.stage));
            }
            _ => {}
        }
    }

    fn round_policy(&mut self) -> Option<&mut PolicyStack> {
        Some(&mut self.policy)
    }

    fn adopt_policy(&mut self, spec: &PolicySpec) -> bool {
        self.policy = match *spec {
            PolicySpec::Classic => PolicyStack::classic(),
            PolicySpec::SloAdmission(cfg) => PolicyStack::new().with(SloAdmission::new(cfg)),
            PolicySpec::CrossQueuePacking(cfg) => {
                PolicyStack::new().with(EsgCrossQueuePacking::new(cfg))
            }
            PolicySpec::PackingWithAdmission(adm, pack) => PolicyStack::new()
                .with(SloAdmission::new(adm))
                .with(EsgCrossQueuePacking::new(pack)),
            PolicySpec::BandwidthPacking(cfg) => {
                PolicyStack::new().with(BandwidthAwarePacking::new(cfg))
            }
        };
        true
    }

    fn stats(&self) -> SchedulerStats {
        let c = self.cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        SchedulerStats {
            searches: self.searches,
            plan_cache_hits: c.hits,
            plan_cache_misses: c.misses,
            plan_cache_evictions: c.evictions,
            plan_cache_invalidations: c.invalidations,
            ..SchedulerStats::default()
        }
        .with_policy(self.policy.policy_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{AppId, Resources, SloClass};

    use esg_sim::{ClusterState, NodeView, QueueKey, SimEnv};

    fn env() -> SimEnv {
        SimEnv::standard(SloClass::Moderate)
    }

    fn idle_cluster(n: usize) -> ClusterState {
        ClusterState::from_views(
            (0..n as u32)
                .map(|i| NodeView::idle(NodeId(i), Resources::new(16, 7)))
                .collect(),
        )
    }

    fn ctx<'a>(
        env: &'a SimEnv,
        cluster: &'a ClusterState,
        jobs: &'a [esg_sim::JobView],
        app: u32,
        stage: usize,
    ) -> SchedCtx<'a> {
        let key = QueueKey {
            app: AppId(app),
            stage,
        };
        SchedCtx {
            now_ms: 100.0,
            key,
            jobs,
            function: env.apps[app as usize].nodes[stage],
            slo_ms: env.slo_ms(AppId(app)),
            base_latency_ms: env.base_latency_ms(AppId(app)),
            queue_interval_ms: None,
            cluster,
            profiles: &env.profiles,
            apps: &env.apps,
            catalog: &env.catalog,
            price: &env.price,
            transfer: &env.transfer,
            noise: &env.noise,
        }
    }

    fn job(slack: f64, pred: Option<NodeId>) -> esg_sim::JobView {
        esg_sim::JobView {
            invocation: esg_model::InvocationId(0),
            ready_at_ms: 90.0,
            invocation_arrival_ms: 50.0,
            slack_ms: slack,
            pred_node: pred,
        }
    }

    #[test]
    fn produces_candidates_within_queue_batch() {
        let env = env();
        let cluster = idle_cluster(4);
        let jobs = vec![job(500.0, None), job(480.0, None)];
        let mut s = EsgScheduler::new();
        let out = s.schedule(&ctx(&env, &cluster, &jobs, 0, 0));
        assert!(!out.candidates.is_empty());
        assert!(out.expansions > 0);
        assert!(out.candidates.iter().all(|c| c.batch <= 2));
        assert!(out.planned_batch.is_none());
    }

    #[test]
    fn empty_queue_skips() {
        let env = env();
        let cluster = idle_cluster(4);
        let mut s = EsgScheduler::new();
        let out = s.schedule(&ctx(&env, &cluster, &[], 0, 0));
        assert!(out.candidates.is_empty());
    }

    #[test]
    fn tight_slack_prefers_faster_configs() {
        let env = env();
        let cluster = idle_cluster(4);
        let mut s = EsgScheduler::new();
        let generous = vec![job(2000.0, None)];
        let tight = vec![job(300.0, None)];
        let out_g = s.schedule(&ctx(&env, &cluster, &generous, 0, 0));
        let out_t = s.schedule(&ctx(&env, &cluster, &tight, 0, 0));
        let p = &env.profiles;
        let lat = |c: Config| {
            p.profile(env.apps[0].nodes[0])
                .find(c)
                .expect("grid config")
                .latency_ms
        };
        assert!(
            lat(out_t.candidates[0]) <= lat(out_g.candidates[0]),
            "tight slack should not pick a slower config"
        );
    }

    #[test]
    fn expired_slack_still_yields_candidates() {
        let env = env();
        let cluster = idle_cluster(4);
        let mut s = EsgScheduler::new();
        let out = s.schedule(&ctx(&env, &cluster, &[job(-100.0, None)], 0, 0));
        // Deadline already blown: fall back to the fastest path (best
        // effort) rather than stalling the queue.
        assert_eq!(out.candidates.len(), 1);
    }

    #[test]
    fn placement_prefers_predecessor_node() {
        let env = env();
        let cluster = idle_cluster(8);
        let jobs = vec![job(800.0, Some(NodeId(5)))];
        let mut s = EsgScheduler::new();
        let c = ctx(&env, &cluster, &jobs, 0, 1);
        let out = s.schedule(&c);
        let node = s.place(&c, out.candidates[0]).expect("idle cluster fits");
        assert_eq!(node, NodeId(5));
    }

    #[test]
    fn placement_falls_back_when_pred_full() {
        let env = env();
        let mut cluster = idle_cluster(8);
        cluster.node_mut(NodeId(5)).free = Resources::new(0, 0);
        let jobs = vec![job(800.0, Some(NodeId(5)))];
        let mut s = EsgScheduler::new();
        let c = ctx(&env, &cluster, &jobs, 0, 1);
        let out = s.schedule(&c);
        let node = s.place(&c, out.candidates[0]).expect("others fit");
        assert_ne!(node, NodeId(5));
    }

    #[test]
    fn variants_agree_on_best_candidate_cost() {
        let env = env();
        let cluster = idle_cluster(4);
        let jobs = vec![job(900.0, None), job(900.0, None), job(850.0, None)];
        let mut astar = EsgScheduler::new();
        let mut sw = EsgScheduler::new().with_variant(SearchVariant::StageWise);
        let c = ctx(&env, &cluster, &jobs, 1, 0);
        let a = astar.schedule(&c);
        let s = sw.schedule(&c);
        assert_eq!(a.candidates[0], s.candidates[0]);
    }

    #[test]
    fn k_controls_candidate_count() {
        let env = env();
        let cluster = idle_cluster(4);
        let jobs = vec![job(1500.0, None)];
        let mut k1 = EsgScheduler::new().with_k(1);
        let mut k8 = EsgScheduler::new().with_k(8);
        let c = ctx(&env, &cluster, &jobs, 2, 0);
        let o1 = k1.schedule(&c);
        let o8 = k8.schedule(&c);
        assert_eq!(o1.candidates.len(), 1);
        assert!(o8.candidates.len() >= o1.candidates.len());
    }

    #[test]
    fn slow_node_class_tightens_the_chosen_config() {
        let env = env();
        let fast = idle_cluster(4);
        let mut slow = idle_cluster(4);
        for i in 0..4u32 {
            slow.node_mut(NodeId(i)).speed = 2.5;
        }
        let jobs = vec![job(900.0, None)];
        let mut a = EsgScheduler::new();
        let mut b = EsgScheduler::new();
        let out_fast = a.schedule(&ctx(&env, &fast, &jobs, 0, 0));
        let out_slow = b.schedule(&ctx(&env, &slow, &jobs, 0, 0));
        assert!(!out_fast.candidates.is_empty());
        assert!(!out_slow.candidates.is_empty());
        let p = &env.profiles;
        let lat = |c: Config| {
            p.profile(env.apps[0].nodes[0])
                .find(c)
                .expect("grid config")
                .latency_ms
        };
        // The slow class eats the budget: ESG must pick a config at least
        // as fast (in baseline profile terms) as on the fast cluster.
        assert!(
            lat(out_slow.candidates[0]) <= lat(out_fast.candidates[0]),
            "slow cluster chose a slower config"
        );
    }

    #[test]
    fn capabilities_match_table1() {
        let s = EsgScheduler::new();
        let c = s.capabilities();
        assert!(c.gpu_sharing);
        assert!(c.inter_function_relation);
        assert!(c.adaptive);
        assert!(c.data_locality);
        assert!(c.pre_warming);
    }
}
