//! Per-application SLO plans.
//!
//! Caches, for each application, the dominator-based SLO distribution
//! (`esg-dag`): the group partition (max size `g`), each stage's share of
//! the end-to-end SLO, and the reachability-weighted remaining share used
//! to turn an invocation's *current slack* into a group target — the
//! quantity ESG_1Q receives as `GSLO` (§3.3, Algorithm 1).

use esg_dag::{average_normalized_length, Dag, Hierarchy, SloPlan};
use esg_model::AppSpec;
use esg_profile::ProfileTable;

/// The cached plan of one application.
#[derive(Clone, Debug)]
pub struct AppPlan {
    /// The dominator-based SLO distribution.
    pub plan: SloPlan,
    /// Reduced-DAG fingerprint (`Hierarchy::fingerprint`, falling back to
    /// the raw `Dag::fingerprint` when the DAG is not reducible) — the
    /// application component of the scheduler's plan-cache key.
    pub fingerprint: u64,
    /// Each stage's individual share of the end-to-end SLO
    /// (`group fraction × ANL(stage)/ANL(group)`).
    pub stage_fraction: Vec<f64>,
    /// For each stage, the summed share of the stage and all its DAG
    /// descendants — the denominator when re-distributing remaining slack.
    pub remaining_fraction: Vec<f64>,
}

impl AppPlan {
    fn build(app: &AppSpec, profiles: &ProfileTable, group_size: usize) -> AppPlan {
        let dag = Dag::from_app(app).expect("app specs are validated DAGs");
        let fingerprint = Hierarchy::build(&dag)
            .map(|h| h.fingerprint())
            .unwrap_or_else(|_| dag.fingerprint());
        let times = profiles.stage_times(app);
        let anl = average_normalized_length(&times);
        let plan = SloPlan::build(&dag, &anl, group_size).unwrap_or_else(|_| {
            // Non-reducible DAGs fall back to per-stage groups with ANL
            // shares: always valid, just group-free.
            let per_stage = SloPlan::build(&dag, &anl, 1);
            per_stage.unwrap_or_else(|_| SloPlan::single_group(app.num_stages()))
        });

        let n = app.num_stages();
        let mut stage_fraction = vec![0.0; n];
        for g in plan.groups() {
            let group_anl: f64 = g.members.iter().map(|&m| anl[m]).sum();
            for &m in &g.members {
                stage_fraction[m] = if group_anl > 0.0 {
                    g.fraction * anl[m] / group_anl
                } else {
                    g.fraction / g.members.len() as f64
                };
            }
        }

        let remaining_fraction: Vec<f64> = (0..n)
            .map(|s| {
                let rf: f64 = (0..n)
                    .filter(|&v| dag.reaches(s, v))
                    .map(|v| stage_fraction[v])
                    .sum();
                debug_assert!(rf > 0.0);
                rf
            })
            .collect();

        AppPlan {
            plan,
            fingerprint,
            stage_fraction,
            remaining_fraction,
        }
    }

    /// The stages ESG_1Q should search when `stage` is about to dispatch:
    /// `stage` and the rest of its group, in execution order.
    pub fn search_window(&self, stage: usize) -> &[usize] {
        self.plan.remaining_in_group(stage)
    }

    /// The share of remaining slack owned by the search window of `stage`:
    /// `Σ stage_fraction(window) / Σ stage_fraction(descendants)`.
    pub fn window_share(&self, stage: usize) -> f64 {
        let window: f64 = self
            .search_window(stage)
            .iter()
            .map(|&v| self.stage_fraction[v])
            .sum();
        (window / self.remaining_fraction[stage]).clamp(0.0, 1.0)
    }
}

/// Plans for every application of an environment.
#[derive(Clone, Debug)]
pub struct AppPlans {
    plans: Vec<AppPlan>,
    group_size: usize,
}

impl AppPlans {
    /// Builds plans for all `apps` with group size `g` (ESG default 3).
    pub fn build(apps: &[AppSpec], profiles: &ProfileTable, group_size: usize) -> AppPlans {
        AppPlans {
            plans: apps
                .iter()
                .map(|a| AppPlan::build(a, profiles, group_size))
                .collect(),
            group_size,
        }
    }

    /// The plan of one app.
    #[inline]
    pub fn plan(&self, app: usize) -> &AppPlan {
        &self.plans[app]
    }

    /// The group size the plans were built with.
    #[inline]
    pub fn group_size(&self) -> usize {
        self.group_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{standard_apps, standard_catalog, ConfigGrid, FnId, PriceModel};

    fn plans(g: usize) -> AppPlans {
        let profiles = ProfileTable::build(
            &standard_catalog(),
            &ConfigGrid::default(),
            &PriceModel::default(),
        );
        AppPlans::build(&standard_apps(), &profiles, g)
    }

    #[test]
    fn stage_fractions_sum_to_one_on_linear_apps() {
        let p = plans(3);
        for (i, app) in standard_apps().iter().enumerate() {
            let sum: f64 = p.plan(i).stage_fraction.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", app.name);
        }
    }

    #[test]
    fn remaining_fraction_decreases_along_pipeline() {
        let p = plans(3);
        let plan = p.plan(3); // 5-stage expanded image classification
        for w in plan.remaining_fraction.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!((plan.remaining_fraction[0] - 1.0).abs() < 1e-9);
        // Last stage's remaining share is its own share.
        assert!((plan.remaining_fraction[4] - plan.stage_fraction[4]).abs() < 1e-12);
    }

    #[test]
    fn search_window_respects_groups() {
        let p = plans(3);
        let plan = p.plan(3); // 5 stages, groups [0,1,2] and [3,4]
        assert_eq!(plan.search_window(0), &[0, 1, 2]);
        assert_eq!(plan.search_window(1), &[1, 2]);
        assert_eq!(plan.search_window(2), &[2]);
        assert_eq!(plan.search_window(3), &[3, 4]);
        assert_eq!(plan.search_window(4), &[4]);
    }

    #[test]
    fn window_share_is_sane() {
        let p = plans(3);
        for app in 0..4 {
            let plan = p.plan(app);
            let n = plan.stage_fraction.len();
            for s in 0..n {
                let share = plan.window_share(s);
                assert!(share > 0.0 && share <= 1.0, "app {app} stage {s}: {share}");
            }
            // At stage 0 of a <=3-stage app the window covers everything.
            if n <= 3 {
                assert!((plan.window_share(0) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fingerprints_are_stable_and_shape_sensitive() {
        let a = plans(3);
        let b = plans(3);
        for (i, app) in standard_apps().iter().enumerate() {
            assert_eq!(
                a.plan(i).fingerprint,
                b.plan(i).fingerprint,
                "{}: fingerprint must be deterministic",
                app.name
            );
        }
        // The 3-stage and 5-stage chains must not collide.
        assert_ne!(a.plan(0).fingerprint, a.plan(3).fingerprint);
    }

    #[test]
    fn group_size_one_gives_single_stage_windows() {
        let p = plans(1);
        let plan = p.plan(0);
        for s in 0..3 {
            assert_eq!(plan.search_window(s), &[s]);
        }
    }

    #[test]
    fn heavier_stages_get_bigger_fractions() {
        let p = plans(3);
        // Image classification: super_resolution (86ms) vs segmentation
        // (293ms): segmentation must own a bigger share.
        let plan = p.plan(0);
        assert!(plan.stage_fraction[1] > plan.stage_fraction[0]);
    }

    #[test]
    fn diamond_app_plan() {
        let apps = vec![AppSpec::dag(
            "diamond",
            vec![FnId(0), FnId(1), FnId(2), FnId(3)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )];
        let profiles = ProfileTable::build(
            &standard_catalog(),
            &ConfigGrid::default(),
            &PriceModel::default(),
        );
        let plans = AppPlans::build(&apps, &profiles, 3);
        let plan = plans.plan(0);
        // Branch stages share the parallel quota; every fraction positive.
        assert!(plan.stage_fraction.iter().all(|&f| f > 0.0));
        // Stage 0 reaches everything: remaining fraction counts one branch
        // fully (fractions of both branches counted — remaining is a
        // conservative denominator on DAGs).
        assert!(plan.remaining_fraction[0] >= plan.stage_fraction[0]);
        assert!(plan.window_share(3) > 0.0);
    }
}
