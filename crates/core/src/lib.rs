//! The ESG scheduling algorithm (the paper's primary contribution).
//!
//! ESG treats the shareable GPU as a first-order scheduling factor and
//! searches the three-dimensional configuration space `(batch, vCPUs,
//! vGPUs)` of a pipeline's stages as a path-finding problem (§3.3):
//!
//! * [`bounds`] — the per-stage aggregates behind *dual-blade pruning*:
//!   `tLow` (time lower bound), `rscLow` (cost lower bound) and
//!   `rscFastest` (an achievable cost upper bound used to tighten the
//!   cost blade);
//! * [`search`] — ESG_1Q in both published forms: the stage-wise
//!   Algorithm-1 variant and the A* best-first variant (allocation-free
//!   inner loop over a reusable [`SearchScratch`] arena), each returning
//!   the configuration priority queue of the K cheapest SLO-feasible
//!   paths;
//! * [`cache`] — the [`PlanCache`]: memoised search results keyed on the
//!   reduced-DAG fingerprint, the quantized effective GSLO, and the
//!   node-class speed factor, LRU-bounded and churn-invalidated;
//! * [`brute`] — exhaustive search, the §5.3 baseline and the oracle for
//!   optimality tests;
//! * [`plan`] — per-application dominator-based SLO distribution
//!   (`esg-dag`) with per-stage quota fractions;
//! * [`scheduler`] — [`EsgScheduler`], the adapter that plugs ESG into the
//!   `esg-sim` platform: optimality-guided *adaptive* scheduling (the
//!   search re-runs before every stage dispatch) plus the locality-first
//!   ESG_Dispatch placement (§3.4);
//! * [`policy`] — ESG's stages for the composable round-policy pipeline:
//!   [`EsgCrossQueuePacking`] ranks a whole round's queues by GSLO
//!   tightness under one shared search budget, preferring warm
//!   co-location (stacks with `esg_sim::SloAdmission`);
//! * [`hybrid`] — the static-pinning tier: [`PinPlanner`] packs the
//!   popularity head of a workload onto whole servers, and
//!   [`HybridScheduler`] routes pinned queues to their slice with zero
//!   search while the tail falls through to the full ESG search.

#![warn(missing_docs)]

pub mod bounds;
pub mod brute;
pub mod cache;
pub mod hybrid;
pub mod plan;
pub mod policy;
pub mod scheduler;
pub mod search;

pub use bounds::StageTable;
pub use brute::brute_force;
pub use cache::{quantize_gslo, CacheStats, CachedPlan, PlanCache, PlanKey};
pub use hybrid::{HybridScheduler, PinPlanner};
pub use plan::AppPlans;
pub use policy::{BandwidthAwarePacking, EsgCrossQueuePacking};
pub use scheduler::{EsgScheduler, SearchVariant};
pub use search::{
    astar_search, astar_search_bounded, astar_search_with, stagewise_search, PathCandidate,
    SearchResult, SearchScratch,
};
