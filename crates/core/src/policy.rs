//! [`EsgCrossQueuePacking`]: ESG's cross-queue ranking stage for the
//! round-policy pipeline.
//!
//! The classic contract decides queues in controller scan order — an
//! accident of queue numbering. This stage ranks every admitted queue of
//! a round so the per-queue ESG search (the dispatch stage) is spent
//! where it matters most:
//!
//! * **GSLO tightness first** — queues are ordered by their oldest job's
//!   remaining slack normalised by the application SLO, tightest first:
//!   the queue closest to blowing its group SLO gets the next search and
//!   the freshest view of the cluster.
//! * **Warm co-location bias** — a queue whose predecessor node still
//!   holds a warm container for the queue's function is boosted by
//!   [`PackingConfig::warm_bias`]: dispatching it *now* lets
//!   ESG_Dispatch's locality-first placement land the batch next to its
//!   input while the warm slot is free, co-locating sibling stages
//!   instead of racing other queues onto the node.
//! * **Shared search budget** — all decisions at one controller instant
//!   share [`PackingConfig::round_budget`] expanded configurations,
//!   metered through [`RoundPolicy::observe`]. Once a round's decisions
//!   have spent it, the stage defers the remaining queues by
//!   [`PackingConfig::defer_ms`] instead of admitting further searches —
//!   bounding worst-case controller occupancy under a queue storm (the
//!   pipeline analogue of Orion's cut-off time, but round-global rather
//!   than per-decision).
//!
//! The stage is pure ranking/admission: dispatch still runs
//! `EsgScheduler::schedule` per queue, so plan-cache equivalence and the
//! §3.1 semantics are untouched.

use esg_sim::{
    AdmissionDecision, AdmissionPlan, BandwidthPackingConfig, Outcome, PackingConfig, QueueKey,
    RankedQueues, RoundCtx, RoundPolicy,
};

/// Cross-queue packing for [`EsgScheduler`](crate::EsgScheduler); see
/// the module docs. Install it with
/// `EsgScheduler::new().with_policy(PolicyStack::new().with(EsgCrossQueuePacking::default()))`
/// or declaratively via `SimBuilder::policy(PolicySpec::packing())`.
#[derive(Clone, Debug)]
pub struct EsgCrossQueuePacking {
    cfg: PackingConfig,
    /// The controller instant the current budget window belongs to.
    round_now: f64,
    /// Expansions spent by decisions at `round_now`.
    spent: u64,
}

impl Default for EsgCrossQueuePacking {
    fn default() -> Self {
        EsgCrossQueuePacking::new(PackingConfig::default())
    }
}

impl EsgCrossQueuePacking {
    /// A packing stage with explicit knobs.
    pub fn new(cfg: PackingConfig) -> EsgCrossQueuePacking {
        EsgCrossQueuePacking {
            cfg,
            round_now: f64::NEG_INFINITY,
            spent: 0,
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> PackingConfig {
        self.cfg
    }

    /// Expansions spent in the current budget window.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    fn roll_window(&mut self, now_ms: f64) {
        if now_ms != self.round_now {
            self.round_now = now_ms;
            self.spent = 0;
        }
    }

    /// The ranking score of queue `i`: normalised slack, minus the warm
    /// co-location bias. Lower is more urgent.
    fn score(&self, ctx: &RoundCtx<'_>, i: usize) -> f64 {
        let q = &ctx.queues[i];
        let slack = q
            .jobs
            .iter()
            .map(|j| j.slack_ms)
            .fold(f64::INFINITY, f64::min);
        let tightness = slack / q.slo_ms.max(f64::MIN_POSITIVE);
        let warm = q.jobs.iter().filter_map(|j| j.pred_node).any(|n| {
            n.index() < ctx.cluster.len() && {
                let view = ctx.cluster.node(n);
                view.online && view.has_warm(q.function)
            }
        });
        if warm {
            tightness - self.cfg.warm_bias
        } else {
            tightness
        }
    }
}

impl RoundPolicy for EsgCrossQueuePacking {
    fn name(&self) -> &'static str {
        "esg-packing"
    }

    fn admit(&mut self, ctx: &RoundCtx<'_>) -> AdmissionPlan {
        self.roll_window(ctx.now_ms);
        if self.spent >= self.cfg.round_budget {
            // Budget exhausted at this instant: defer the whole round
            // (deferred queues re-enter with a fresh budget window; the
            // owning PolicyStack tallies the FINAL deferred decisions,
            // since a verdict here may be out-severitied by a shed).
            AdmissionPlan::defer_all(ctx.queues.len(), ctx.now_ms + self.cfg.defer_ms)
        } else {
            AdmissionPlan::admit_all(ctx.queues.len())
        }
    }

    fn rank(&mut self, ctx: &RoundCtx<'_>, admitted: &[usize]) -> RankedQueues {
        let mut scored: Vec<(f64, usize)> =
            admitted.iter().map(|&i| (self.score(ctx, i), i)).collect();
        // Deterministic: ties broken by queue index (controller scan
        // order), scores are pure functions of the round context.
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        RankedQueues::from_order(scored.into_iter().map(|(_, i)| i).collect())
    }

    fn observe(&mut self, ctx: &RoundCtx<'_>, decisions: &[(QueueKey, Outcome)]) {
        self.roll_window(ctx.now_ms);
        self.spent += decisions.iter().map(|(_, o)| o.expansions).sum::<u64>();
    }

    fn clone_box(&self) -> Box<dyn RoundPolicy> {
        Box::new(self.clone())
    }
}

/// Bandwidth-aware cross-queue packing: [`EsgCrossQueuePacking`]'s
/// ranking, corrected by the live data-plane occupancy in
/// `RoundCtx::dataplane`.
///
/// Warm-affinity bias alone is provably wrong in transfer-bound
/// regimes: co-locating a stage next to its input is a *loss* when the
/// predecessor node's PCIe ingress pool is already saturated — the
/// batch's own input tensors then crawl in at a fraction of the link
/// while an idle node would have taken them at full rate. Two
/// corrections:
///
/// * **Estimated contention** — every job whose predecessor node has
///   flows active or queued on its ingress path drags the owning
///   queue's rank down by
///   [`BandwidthPackingConfig::contention_bias`] per contending flow
///   (the worst predecessor decides), opposing the warm bias once a
///   link is busy.
/// * **Staging backpressure defer** — a queue whose predecessor node
///   has at least [`BandwidthPackingConfig::defer_queue_depth`]
///   transfers queued for staging is deferred outright: its input
///   cannot even start moving, so spending search budget on it now buys
///   nothing.
///
/// Without a data plane (`ctx.dataplane == None`) both corrections
/// vanish and the stage behaves exactly like plain cross-queue packing.
#[derive(Clone, Debug)]
pub struct BandwidthAwarePacking {
    cfg: BandwidthPackingConfig,
    inner: EsgCrossQueuePacking,
}

impl Default for BandwidthAwarePacking {
    fn default() -> Self {
        BandwidthAwarePacking::new(BandwidthPackingConfig::default())
    }
}

impl BandwidthAwarePacking {
    /// A bandwidth-aware packing stage with explicit knobs.
    pub fn new(cfg: BandwidthPackingConfig) -> BandwidthAwarePacking {
        BandwidthAwarePacking {
            cfg,
            inner: EsgCrossQueuePacking::new(cfg.packing),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> BandwidthPackingConfig {
        self.cfg
    }

    /// Expansions spent in the current budget window.
    pub fn spent(&self) -> u64 {
        self.inner.spent()
    }

    /// The worst (largest) ingress contention among the queue's
    /// predecessor nodes, in flows; 0 without a data plane.
    fn pred_contention(&self, ctx: &RoundCtx<'_>, i: usize) -> u32 {
        let Some(dp) = ctx.dataplane else { return 0 };
        ctx.queues[i]
            .jobs
            .iter()
            .filter_map(|j| j.pred_node)
            .filter(|n| n.index() < dp.len())
            .map(|n| dp.contending_flows(n.index()))
            .max()
            .unwrap_or(0)
    }

    /// The worst staging queue depth among the queue's predecessor
    /// nodes; 0 without a data plane.
    fn pred_staging_queue(&self, ctx: &RoundCtx<'_>, i: usize) -> u32 {
        let Some(dp) = ctx.dataplane else { return 0 };
        ctx.queues[i]
            .jobs
            .iter()
            .filter_map(|j| j.pred_node)
            .filter(|n| n.index() < dp.len())
            .map(|n| dp.node(n.index()).queued)
            .max()
            .unwrap_or(0)
    }
}

impl RoundPolicy for BandwidthAwarePacking {
    fn name(&self) -> &'static str {
        "esg-bw-packing"
    }

    fn admit(&mut self, ctx: &RoundCtx<'_>) -> AdmissionPlan {
        let mut plan = self.inner.admit(ctx);
        // On top of the budget gate: defer queues whose input is stuck
        // behind a full staging buffer.
        if self.cfg.defer_queue_depth > 0 {
            for i in 0..ctx.queues.len() {
                if matches!(plan.decisions()[i], AdmissionDecision::Admit)
                    && self.pred_staging_queue(ctx, i) >= self.cfg.defer_queue_depth
                {
                    plan.set(
                        i,
                        AdmissionDecision::Defer {
                            until_ms: ctx.now_ms + self.cfg.packing.defer_ms,
                        },
                    );
                }
            }
        }
        plan
    }

    fn rank(&mut self, ctx: &RoundCtx<'_>, admitted: &[usize]) -> RankedQueues {
        let mut scored: Vec<(f64, usize)> = admitted
            .iter()
            .map(|&i| {
                let base = self.inner.score(ctx, i);
                let contention = self.pred_contention(ctx, i) as f64;
                (base + self.cfg.contention_bias * contention, i)
            })
            .collect();
        // Deterministic: same total order contract as the inner stage.
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        RankedQueues::from_order(scored.into_iter().map(|(_, i)| i).collect())
    }

    fn observe(&mut self, ctx: &RoundCtx<'_>, decisions: &[(QueueKey, Outcome)]) {
        self.inner.observe(ctx, decisions);
    }

    fn clone_box(&self) -> Box<dyn RoundPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{AppId, InvocationId, NodeId, Resources, SloClass};
    use esg_sim::{AdmissionDecision, ClusterState, JobView, NodeView, QueueView, SimEnv};

    fn job(slack: f64, pred: Option<NodeId>) -> JobView {
        JobView {
            invocation: InvocationId(0),
            ready_at_ms: 0.0,
            invocation_arrival_ms: 0.0,
            slack_ms: slack,
            pred_node: pred,
        }
    }

    fn queue_view<'a>(
        env: &'a SimEnv,
        jobs: &'a [JobView],
        app: u32,
        stage: usize,
    ) -> QueueView<'a> {
        QueueView {
            key: QueueKey {
                app: AppId(app),
                stage,
            },
            jobs,
            function: env.apps[app as usize].nodes[stage],
            slo_ms: env.slo_ms(AppId(app)),
            base_latency_ms: env.base_latency_ms(AppId(app)),
            queue_interval_ms: None,
        }
    }

    fn round_ctx<'a>(
        env: &'a SimEnv,
        cluster: &'a ClusterState,
        queues: &'a [QueueView<'a>],
        now_ms: f64,
    ) -> RoundCtx<'a> {
        RoundCtx {
            now_ms,
            queues,
            cluster,
            profiles: &env.profiles,
            apps: &env.apps,
            catalog: &env.catalog,
            price: &env.price,
            transfer: &env.transfer,
            noise: &env.noise,
            dataplane: None,
            servers: None,
        }
    }

    fn idle_cluster(n: usize) -> ClusterState {
        ClusterState::from_views(
            (0..n as u32)
                .map(|i| NodeView::idle(NodeId(i), Resources::new(16, 7)))
                .collect(),
        )
    }

    #[test]
    fn ranks_tightest_gslo_first() {
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(4);
        let loose = [job(5_000.0, None)];
        let tight = [job(50.0, None)];
        let medium = [job(800.0, None)];
        let queues = [
            queue_view(&env, &loose, 0, 0),
            queue_view(&env, &tight, 1, 0),
            queue_view(&env, &medium, 2, 0),
        ];
        let ctx = round_ctx(&env, &cluster, &queues, 100.0);
        let mut pack = EsgCrossQueuePacking::default();
        let order = pack.rank(&ctx, &[0, 1, 2]).into_order();
        assert_eq!(order[0], 1, "tightest slack first, got {order:?}");
        // Normalisation: relative tightness, not raw slack, decides. The
        // queues share comparable SLOs here so medium before loose.
        assert_eq!(order[2], 0);
    }

    #[test]
    fn warm_predecessor_boosts_a_queue() {
        let env = SimEnv::standard(SloClass::Moderate);
        let mut cluster = idle_cluster(4);
        let f1 = env.apps[0].nodes[1];
        cluster.node_mut(NodeId(2)).warm = vec![f1];
        // Same slack everywhere; queue 1's input sits on the warm node.
        let cold_jobs = [job(500.0, None)];
        let warm_jobs = [job(500.0, Some(NodeId(2)))];
        let queues = [
            queue_view(&env, &cold_jobs, 0, 0),
            queue_view(&env, &warm_jobs, 0, 1),
        ];
        let ctx = round_ctx(&env, &cluster, &queues, 100.0);
        let mut pack = EsgCrossQueuePacking::default();
        let order = pack.rank(&ctx, &[0, 1]).into_order();
        assert_eq!(order[0], 1, "warm co-location must win the tie");
        // Without the bias the tie breaks on queue index.
        let mut flat = EsgCrossQueuePacking::new(PackingConfig {
            warm_bias: 0.0,
            ..PackingConfig::default()
        });
        assert_eq!(flat.rank(&ctx, &[0, 1]).into_order()[0], 0);
    }

    #[test]
    fn budget_exhaustion_defers_and_resets_per_instant() {
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(2);
        let jobs = [job(500.0, None)];
        let queues = [queue_view(&env, &jobs, 0, 0)];
        let ctx = round_ctx(&env, &cluster, &queues, 100.0);
        let mut pack = EsgCrossQueuePacking::new(PackingConfig {
            round_budget: 10,
            defer_ms: 3.0,
            warm_bias: 0.25,
        });
        // Fresh window: admitted.
        assert!(matches!(
            pack.admit(&ctx).decisions()[0],
            AdmissionDecision::Admit
        ));
        // A decision spends past the budget…
        pack.observe(
            &ctx,
            &[(
                QueueKey {
                    app: AppId(0),
                    stage: 0,
                },
                Outcome {
                    expansions: 50,
                    ..Outcome::default()
                },
            )],
        );
        assert_eq!(pack.spent(), 50);
        // …so the same instant defers the rest of the round.
        let plan = pack.admit(&ctx);
        assert_eq!(
            plan.decisions()[0],
            AdmissionDecision::Defer { until_ms: 103.0 }
        );
        // A later instant opens a fresh window.
        let later = round_ctx(&env, &cluster, &queues, 200.0);
        assert!(matches!(
            pack.admit(&later).decisions()[0],
            AdmissionDecision::Admit
        ));
        assert_eq!(pack.spent(), 0);
    }

    #[test]
    fn contention_on_the_pred_node_cancels_the_warm_bias() {
        use esg_sim::{DataPlaneView, NodeLoad};
        let env = SimEnv::standard(SloClass::Moderate);
        let mut cluster = idle_cluster(4);
        let f1 = env.apps[0].nodes[1];
        cluster.node_mut(NodeId(2)).warm = vec![f1];
        let cold_jobs = [job(500.0, None)];
        let warm_jobs = [job(500.0, Some(NodeId(2)))];
        let queues = [
            queue_view(&env, &cold_jobs, 0, 0),
            queue_view(&env, &warm_jobs, 0, 1),
        ];
        // Node 2's ingress pool carries 4 contending flows: at the
        // default contention_bias (0.1/flow) the 0.25 warm bonus flips
        // into a net penalty, so the cold queue must now rank first —
        // while plain packing (blind to the link) still boosts queue 1.
        let mut loads = vec![NodeLoad::default(); 4];
        loads[2].active_in = 3;
        loads[2].queued = 1;
        let view = DataPlaneView::from_loads(loads);
        let ctx = RoundCtx {
            dataplane: Some(&view),
            servers: None,
            ..round_ctx(&env, &cluster, &queues, 100.0)
        };
        let mut bw = BandwidthAwarePacking::default();
        assert_eq!(bw.rank(&ctx, &[0, 1]).into_order()[0], 0);
        let mut blind = EsgCrossQueuePacking::default();
        assert_eq!(blind.rank(&ctx, &[0, 1]).into_order()[0], 1);
        // Idle link: the warm bonus stands and both stages agree.
        let idle = DataPlaneView::from_loads(vec![NodeLoad::default(); 4]);
        let idle_ctx = RoundCtx {
            dataplane: Some(&idle),
            servers: None,
            ..round_ctx(&env, &cluster, &queues, 100.0)
        };
        assert_eq!(bw.rank(&idle_ctx, &[0, 1]).into_order()[0], 1);
    }

    #[test]
    fn without_a_data_plane_bandwidth_packing_degrades_to_plain_packing() {
        let env = SimEnv::standard(SloClass::Moderate);
        let mut cluster = idle_cluster(4);
        let f1 = env.apps[0].nodes[1];
        cluster.node_mut(NodeId(2)).warm = vec![f1];
        let cold_jobs = [job(500.0, None)];
        let warm_jobs = [job(500.0, Some(NodeId(2)))];
        let queues = [
            queue_view(&env, &cold_jobs, 0, 0),
            queue_view(&env, &warm_jobs, 0, 1),
        ];
        let ctx = round_ctx(&env, &cluster, &queues, 100.0);
        let mut bw = BandwidthAwarePacking::default();
        let mut plain = EsgCrossQueuePacking::default();
        assert_eq!(
            bw.rank(&ctx, &[0, 1]).into_order(),
            plain.rank(&ctx, &[0, 1]).into_order()
        );
        assert!(matches!(
            bw.admit(&ctx).decisions()[0],
            AdmissionDecision::Admit
        ));
    }

    #[test]
    fn staging_backpressure_defers_the_starved_queue() {
        use esg_sim::{BandwidthPackingConfig, DataPlaneView, NodeLoad};
        let env = SimEnv::standard(SloClass::Moderate);
        let cluster = idle_cluster(4);
        let free_jobs = [job(500.0, None)];
        let stuck_jobs = [job(500.0, Some(NodeId(1)))];
        let queues = [
            queue_view(&env, &free_jobs, 0, 0),
            queue_view(&env, &stuck_jobs, 0, 1),
        ];
        let mut loads = vec![NodeLoad::default(); 4];
        loads[1].queued = 4;
        let view = DataPlaneView::from_loads(loads);
        let ctx = RoundCtx {
            dataplane: Some(&view),
            servers: None,
            ..round_ctx(&env, &cluster, &queues, 100.0)
        };
        let mut bw = BandwidthAwarePacking::new(BandwidthPackingConfig::default());
        let plan = bw.admit(&ctx);
        assert!(matches!(plan.decisions()[0], AdmissionDecision::Admit));
        assert_eq!(
            plan.decisions()[1],
            AdmissionDecision::Defer {
                until_ms: 100.0 + BandwidthPackingConfig::default().packing.defer_ms
            }
        );
    }

    #[test]
    fn offline_or_foreign_pred_nodes_get_no_bonus() {
        let env = SimEnv::standard(SloClass::Moderate);
        let mut cluster = idle_cluster(2);
        let f = env.apps[0].nodes[0];
        cluster.node_mut(NodeId(1)).warm = vec![f];
        cluster.node_mut(NodeId(1)).online = false;
        let offline_pred = [job(500.0, Some(NodeId(1)))];
        let foreign_pred = [job(500.0, Some(NodeId(9)))];
        let queues = [
            queue_view(&env, &offline_pred, 0, 0),
            queue_view(&env, &foreign_pred, 0, 0),
        ];
        let ctx = round_ctx(&env, &cluster, &queues, 0.0);
        let pack = EsgCrossQueuePacking::default();
        assert_eq!(pack.score(&ctx, 0), pack.score(&ctx, 1));
    }
}
