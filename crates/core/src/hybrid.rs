//! The hybrid static+dynamic tier: [`PinPlanner`] and
//! [`HybridScheduler`].
//!
//! ESG searches the configuration space per queue at dispatch time
//! (§3). That search is what makes ESG adaptive — and what every
//! dispatch of a *predictably hot* workflow pays for again and again.
//! Production schedulers over the same shareable-GPU substrate put a
//! *static tier* in front of the search: an offline pattern-analysis
//! pass pins the popularity head onto specific servers, so hot
//! dispatches route straight to a pre-decided `(config, node)` slice —
//! zero search, warm by construction, whole workflows completing
//! intra-server — while the cold tail still flows through the full
//! dynamic search.
//!
//! * [`PinPlanner`] — the analysis pass. It ranks applications by
//!   observed invocation share (`esg_workload::PopularityProfile`),
//!   keeps the head whose share clears the configured multiple of the
//!   uniform share, and packs each hot workflow's stages — workflow
//!   co-occurrence is structural: stage *i* always feeds stage *i+1* —
//!   onto the nodes of a single server, hottest app first, within the
//!   vGPU pin budget. A stage whose share of the arrival rate outruns
//!   one slice gets several *replica* slices on distinct nodes of the
//!   pinned server, sized so the set sustains the head with headroom.
//! * [`HybridScheduler`] — the routing tier. Pinned queues dispatch to
//!   a free replica of their slice set with zero search effort (a
//!   *hit*); when every replica is mid-batch the round flows through
//!   the dynamic search instead (a *miss*) so a queue never waits
//!   behind its own running batches. Everything else delegates verbatim
//!   to the wrapped [`EsgScheduler`]. Churn is handled lazily: when a
//!   replica's node has drained, it moves to a sibling node of the same
//!   server (a *re-pin*) or drops; when the last replica is gone, the
//!   queue is demoted to the dynamic tier for good — a drained server
//!   never strands its functions.
//!
//! The contract that keeps the tier safe to deploy: with an **empty
//! plan the hybrid scheduler is dispatch-trace bit-identical to its
//! inner ESG scheduler** (`tests/pinning_equivalence.rs` pins this
//! property across the heterogeneous grid). Uniform traffic produces an
//! empty plan by construction, so the static tier can only ever change
//! behaviour where there is skew to exploit.

use crate::scheduler::EsgScheduler;
use esg_model::{ClusterSpec, Config, NodeId, Resources};
use esg_sim::{
    Capabilities, NodeView, Outcome, Pin, PinPlan, PinnedStats, PinningConfig, PolicySpec,
    PolicyStack, QueueKey, SchedCtx, Scheduler, SchedulerEvent, SchedulerStats, ServerMap, SimEnv,
};
use esg_workload::{PopularityProfile, Workload};

/// The weighting [`ClusterState::most_free`](esg_sim::ClusterState)
/// uses; re-used here so pin packing and dynamic cold placement agree
/// on what "freest" means.
const VGPU_WEIGHT: f64 = 16.0 / 7.0;

/// Throughput headroom a pinned stage's replica set must carry over the
/// app's observed arrival rate. Per-slice utilisation ≈ 1/headroom, so
/// 1.5× keeps some replica usually *free* when the next round arrives,
/// while the dynamic tier absorbs the bursts that catch the whole set
/// mid-batch. Without that slack the pins become the bottleneck the
/// dynamic tier's spreading would avoid, so the planner refuses to pin
/// apps it cannot over-provision.
const PIN_HEADROOM: f64 = 1.5;

/// Share of an app's SLO the pinned tier may spend on compute. Stage
/// latency budgets are scaled by this before configurations are
/// filtered, so a pinned workflow keeps the remainder of its SLO as
/// slack for queueing, transfers and noise — a pick that fits the SLO
/// exactly would violate it on the first queued round.
const PIN_SLO_SHARE: f64 = 0.8;

/// The offline pattern-analysis pass: workload popularity in, a
/// server-packed [`PinPlan`] out.
#[derive(Clone, Copy, Debug)]
pub struct PinPlanner {
    cfg: PinningConfig,
}

impl PinPlanner {
    /// A planner with the given knobs (validated by
    /// `SimBuilder::pinning` when the run goes through the builder).
    pub fn new(cfg: PinningConfig) -> PinPlanner {
        PinPlanner { cfg }
    }

    /// The planner's knobs.
    pub fn config(&self) -> PinningConfig {
        self.cfg
    }

    /// Analyses `workload` and packs the popularity head onto
    /// `cluster`'s servers.
    ///
    /// An app qualifies when its observed invocation share is at least
    /// `min_share_factor / num_apps` — uniform traffic clears that bar
    /// for nobody (factor > 1), so the returned plan is empty and the
    /// hybrid tier stays inert. Qualifying apps are pinned hottest
    /// first: every stage of the workflow goes onto one server (so the
    /// whole hot pipeline completes intra-server), greedily onto the
    /// freest nodes that fit, subject to per-node capacity and the
    /// global vGPU budget. Each stage gets as many replica slices as its
    /// share of the arrival rate demands (see `pick_config`), so a hot
    /// app whose slowest stage outruns one slice is replicated rather
    /// than saturated. An app whose slices cannot all be packed onto one
    /// server is skipped whole — a half-pinned workflow would pay the
    /// cross-server hop the tier exists to avoid. So is an app whose
    /// rate no affordable replica set can sustain with `PIN_HEADROOM`
    /// slack: pinning it would funnel the head of the distribution
    /// through saturated slices the dynamic tier could have spread.
    pub fn plan(&self, env: &SimEnv, cluster: &ClusterSpec, workload: &Workload) -> PinPlan {
        let mut plan = PinPlan::empty();
        if env.apps.is_empty() || cluster.nodes.is_empty() {
            return plan;
        }
        let profile = PopularityProfile::of(workload);
        let min_share = self.cfg.min_share_factor / env.apps.len() as f64;
        let hot = profile.hot_apps(min_share, self.cfg.max_pinned_apps);
        if hot.is_empty() {
            return plan;
        }

        let servers = ServerMap::from_spec(cluster);
        let mut free: Vec<Resources> = cluster.nodes.iter().map(|c| c.resources()).collect();
        let mut budget = self.cfg.budget_vgpus;
        let span_ms = workload.span_ms().max(1.0);

        for app in hot {
            let spec = &env.apps[app.index()];
            // Every invocation passes through every stage once, so each
            // stage's replica set must sustain the app's whole arrival
            // rate. The compute share of the SLO is split across stages
            // in proportion to their base execution times, so slow
            // stages get the slack they need rather than an even (and
            // unmeetable) share.
            let rate_per_ms = profile.share(app) * profile.total() as f64 / span_ms;
            let slo_ms = PIN_SLO_SHARE * env.slo_ms(app);
            let exec_total: f64 = spec.nodes.iter().map(|&f| env.catalog.get(f).exec_ms).sum();
            if exec_total <= 0.0 {
                continue;
            }
            let Some(stages) = spec
                .nodes
                .iter()
                .map(|&f| {
                    let budget_ms = slo_ms * env.catalog.get(f).exec_ms / exec_total;
                    pick_config(env, f, budget_ms, rate_per_ms)
                })
                .collect::<Option<Vec<(Config, u32)>>>()
            else {
                continue;
            };
            let needed: u64 = stages
                .iter()
                .map(|(c, k)| u64::from(c.vgpus) * u64::from(*k))
                .sum();
            if needed > budget {
                continue;
            }
            // One slot per replica slice, tagged with its stage so each
            // packed node can be pinned back to the right queue.
            let slots: Vec<(usize, Config)> = stages
                .iter()
                .enumerate()
                .flat_map(|(stage, &(config, k))| (0..k).map(move |_| (stage, config)))
                .collect();
            let slot_configs: Vec<Config> = slots.iter().map(|&(_, c)| c).collect();
            // Server candidates, freest (by weighted remaining
            // resources) first; a flat cluster is one big pseudo-server.
            let groups: Vec<(Option<usize>, Vec<NodeId>)> = match &servers {
                Some(map) => {
                    let mut g: Vec<(Option<usize>, Vec<NodeId>)> = (0..map.num_servers())
                        .map(|s| (Some(s), map.nodes_of(s).collect()))
                        .collect();
                    g.sort_by(|a, b| {
                        weight_of(&free, &b.1)
                            .total_cmp(&weight_of(&free, &a.1))
                            .then(a.0.cmp(&b.0))
                    });
                    g
                }
                None => vec![(None, (0..free.len() as u32).map(NodeId).collect())],
            };
            for (server, nodes) in groups {
                if let Some(placed) = pack(&slot_configs, &nodes, &free) {
                    for (&(stage, config), &node) in slots.iter().zip(&placed) {
                        free[node.index()] -= config.resources();
                        plan.push(Pin {
                            key: QueueKey { app, stage },
                            function: spec.nodes[stage],
                            config,
                            node,
                            server,
                        });
                    }
                    budget -= needed;
                    break;
                }
            }
        }
        plan
    }
}

/// How many replica slices one pinned stage may use before the planner
/// gives up on the app — a backstop against plans that would swallow a
/// whole server for one stage.
const MAX_PIN_REPLICAS: u32 = 8;

/// The configuration and replica count for one pinned stage: among
/// entries whose full-batch task latency fits the stage's SLO share
/// (`budget_ms`), the one whose replica set sustains `rate_per_ms`
/// arrivals (`batch / latency` per slice, [`PIN_HEADROOM`] slack) for
/// the smallest weighted resource footprint — vCPUs plus
/// [`VGPU_WEIGHT`]-scaled vGPUs, the same weighting packing uses, so
/// the picks are the ones a server can actually hold — then fewest
/// replicas, then fastest. A pin serves the head of the popularity
/// distribution, so it is provisioned for latency headroom, not cost —
/// the dynamic tier's cost search still covers the tail. `None` when no
/// affordable replica set can carry the load — the caller then leaves
/// the app to the dynamic tier, which can spread it.
fn pick_config(
    env: &SimEnv,
    f: esg_model::FnId,
    budget_ms: f64,
    rate_per_ms: f64,
) -> Option<(Config, u32)> {
    let p = env.profiles.profile(f);
    let need = rate_per_ms * PIN_HEADROOM;
    let mut best: Option<(f64, u32, f64, Config)> = None;
    // Entries ascend by task latency: everything past the budget is out.
    for e in p.entries().iter().take_while(|e| e.latency_ms <= budget_ms) {
        let thr = f64::from(e.config.batch) / e.latency_ms;
        let k = (need / thr).ceil().max(1.0);
        if k > f64::from(MAX_PIN_REPLICAS) {
            continue;
        }
        let k = k as u32;
        let footprint = f64::from(k) * e.config.resources().weighted(1.0, VGPU_WEIGHT);
        let better = match &best {
            None => true,
            Some((bf, bk, bl, _)) => footprint
                .total_cmp(bf)
                .then(k.cmp(bk))
                .then(e.latency_ms.total_cmp(bl))
                .is_lt(),
        };
        if better {
            best = Some((footprint, k, e.latency_ms, e.config));
        }
    }
    best.map(|(_, k, _, config)| (config, k))
}

/// Total weighted free resources across `nodes`.
fn weight_of(free: &[Resources], nodes: &[NodeId]) -> f64 {
    nodes
        .iter()
        .map(|n| free[n.index()].weighted(1.0, VGPU_WEIGHT))
        .sum()
}

/// Greedily assigns one replica slot after another to the freest node
/// of the group that fits it, against a *copy* of the free table.
/// Freest-first placement naturally spreads same-stage replicas across
/// the server's nodes; when the server has fewer nodes than a stage has
/// replicas, the extras land where capacity remains and the plan's
/// `(key, node)` upsert merges them — the reserved capacity still
/// carries the replica's share of the load, since dispatch concurrency
/// is capacity-gated, not entry-gated. `None` when any slot finds no
/// room (the caller then tries the next server).
fn pack(configs: &[Config], nodes: &[NodeId], free: &[Resources]) -> Option<Vec<NodeId>> {
    let mut free = free.to_vec();
    let mut placed: Vec<NodeId> = Vec::with_capacity(configs.len());
    for config in configs {
        let demand = config.resources();
        let node = nodes
            .iter()
            .copied()
            .filter(|n| free[n.index()].contains(demand))
            .max_by(|a, b| {
                free[a.index()]
                    .weighted(1.0, VGPU_WEIGHT)
                    .total_cmp(&free[b.index()].weighted(1.0, VGPU_WEIGHT))
                    .then(b.0.cmp(&a.0))
            })?;
        free[node.index()] -= demand;
        placed.push(node);
    }
    Some(placed)
}

/// ESG with a static-pinning tier in front: pinned queues route to
/// their pre-decided slice with zero search, the tail falls through to
/// the full dynamic search. See the module docs for the contract.
#[derive(Debug)]
pub struct HybridScheduler {
    inner: EsgScheduler,
    plan: PinPlan,
    servers: Option<ServerMap>,
    pinned: PinnedStats,
}

impl HybridScheduler {
    /// A hybrid over a default [`EsgScheduler`] and `plan`. Without a
    /// [`ServerMap`] (see [`with_servers`](Self::with_servers)) churn
    /// re-pins consider every node instead of the pinned server's
    /// siblings.
    pub fn new(plan: PinPlan) -> HybridScheduler {
        HybridScheduler {
            inner: EsgScheduler::new(),
            plan,
            servers: None,
            pinned: PinnedStats::default(),
        }
    }

    /// Runs the full pipeline — analyse `workload`, pack the head onto
    /// `cluster` — and wraps the resulting plan around a default ESG
    /// scheduler with the matching server map.
    pub fn planned(
        cfg: PinningConfig,
        env: &SimEnv,
        cluster: &ClusterSpec,
        workload: &Workload,
    ) -> HybridScheduler {
        let plan = PinPlanner::new(cfg).plan(env, cluster, workload);
        let mut h = HybridScheduler::new(plan);
        h.servers = ServerMap::from_spec(cluster);
        h
    }

    /// Replaces the inner dynamic scheduler (ablations tune its knobs).
    pub fn with_inner(mut self, inner: EsgScheduler) -> Self {
        self.inner = inner;
        self
    }

    /// Installs the server topology map used to find re-pin targets
    /// after churn.
    pub fn with_servers(mut self, map: ServerMap) -> Self {
        self.servers = Some(map);
        self
    }

    /// The live pin plan (re-pins and demotions mutate it).
    pub fn plan(&self) -> &PinPlan {
        &self.plan
    }

    /// The pinned-tier counters so far.
    pub fn pinned_stats(&self) -> PinnedStats {
        self.pinned
    }

    /// The best re-pin target for a replica whose node drained: an
    /// online node of the same server with the capacity to ever host
    /// `demand` and not already hosting a sibling replica (`taken`),
    /// freest first. Falls back to the whole cluster when the server is
    /// unknown (flat cluster or no map).
    fn repin_target(
        &self,
        ctx: &SchedCtx<'_>,
        server: Option<usize>,
        demand: Resources,
        taken: &[NodeId],
    ) -> Option<NodeId> {
        let candidates: Vec<NodeId> = match (&self.servers, server) {
            (Some(map), Some(s)) => map.nodes_of(s).collect(),
            _ => (0..ctx.cluster.len() as u32).map(NodeId).collect(),
        };
        candidates
            .into_iter()
            .filter(|id| !taken.contains(id))
            .filter_map(|id| ctx.cluster.nodes().get(id.index()).map(|v| (id, v)))
            .filter(|(_, v)| v.online && v.total.contains(demand))
            .max_by(|a, b| cmp_free(a.1, b.1, demand).then(b.0 .0.cmp(&a.0 .0)))
            .map(|(id, _)| id)
    }
}

/// Orders node views for re-pinning: nodes that fit `demand` *right
/// now* beat merely-capable ones, then more weighted free space wins.
fn cmp_free(a: &NodeView, b: &NodeView, demand: Resources) -> std::cmp::Ordering {
    (a.fits(demand) as u8).cmp(&(b.fits(demand) as u8)).then(
        a.free
            .weighted(1.0, VGPU_WEIGHT)
            .total_cmp(&b.free.weighted(1.0, VGPU_WEIGHT)),
    )
}

impl Scheduler for HybridScheduler {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome {
        let replicas: Vec<Pin> = self.plan.replicas(ctx.key).copied().collect();
        if replicas.is_empty() || ctx.jobs.is_empty() {
            return self.inner.schedule(ctx);
        }
        let qlen = ctx.jobs.len() as u32;
        let demand = replicas[0].config.resources();
        // Repair churn first: a replica whose node drained (or a join
        // table mismatch shrank it) moves to a sibling of the same
        // server, or drops when no sibling can ever host it.
        let mut live: Vec<Pin> = Vec::with_capacity(replicas.len());
        for pin in &replicas {
            let view = ctx.cluster.nodes().get(pin.node.index());
            if view.is_some_and(|v| v.online && v.total.contains(demand)) {
                live.push(*pin);
                continue;
            }
            let taken: Vec<NodeId> = self.plan.replicas(ctx.key).map(|p| p.node).collect();
            match self.repin_target(ctx, pin.server, demand, &taken) {
                Some(node) => {
                    self.plan
                        .set_replica_node(pin.key, pin.node, node, pin.server);
                    self.pinned.repins += 1;
                    live.push(Pin { node, ..*pin });
                }
                None => {
                    self.plan.drop_replica(pin.key, pin.node);
                }
            }
        }
        if live.is_empty() {
            // Every replica's node is gone and no sibling can take
            // them: the queue is demoted to the dynamic tier for good.
            self.plan.demote(ctx.key);
            self.pinned.misses += 1;
            return self.inner.schedule(ctx);
        }
        if live.iter().any(|p| {
            ctx.cluster
                .nodes()
                .get(p.node.index())
                .is_some_and(|v| v.fits(demand))
        }) {
            self.pinned.hits += 1;
            return Outcome::single(live[0].config.clamp_batch(qlen), 0);
        }
        // Every replica is mid-batch: this round flows through the
        // dynamic tier (a *miss*) rather than parking the queue in the
        // platform's recheck loop until a forced-minimum dispatch
        // scatters it; the pins stay for the next round.
        self.pinned.misses += 1;
        self.inner.schedule(ctx)
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        // Route only the pinned configuration, and only to a replica
        // with room right now; other configs for the same queue (e.g.
        // the platform's forced-minimum fallback after repeated
        // rechecks) keep the dynamic locality placement, so a
        // temporarily full replica set never strands its queue. Among
        // free replicas, one holding a warm container wins — steady
        // traffic concentrates on warm replicas and the cold ones are
        // paid for once, on bursts, instead of re-paying a cold start
        // every time a round-robin lands on an expired container.
        let demand = config.resources();
        let free: Vec<NodeId> = self
            .plan
            .replicas(ctx.key)
            .filter(|p| config.vcpus == p.config.vcpus && config.vgpus == p.config.vgpus)
            .map(|p| p.node)
            .filter(|n| {
                ctx.cluster
                    .nodes()
                    .get(n.index())
                    .is_some_and(|v| v.fits(demand))
            })
            .collect();
        let warm = free.iter().copied().find(|n| {
            ctx.cluster
                .nodes()
                .get(n.index())
                .is_some_and(|v| v.has_warm(ctx.function))
        });
        match warm.or_else(|| free.first().copied()) {
            Some(node) => Some(node),
            None => self.inner.place(ctx, config),
        }
    }

    fn round_policy(&mut self) -> Option<&mut PolicyStack> {
        self.inner.round_policy()
    }

    fn adopt_policy(&mut self, spec: &PolicySpec) -> bool {
        self.inner.adopt_policy(spec)
    }

    fn on_event(&mut self, event: &SchedulerEvent<'_>) {
        if let SchedulerEvent::Churn { joined: true, .. } = event {
            // Joined nodes are append-only and unassigned: they serve
            // the dynamic tier but are never intra-server for a pin.
            if let Some(map) = &mut self.servers {
                map.note_join();
            }
        }
        self.inner.on_event(event);
    }

    fn stats(&self) -> SchedulerStats {
        self.inner.stats().with_pinned(self.pinned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{AppId, SloClass};
    use esg_sim::ClusterState;
    use esg_workload::{shaped_workload_with, Popularity};

    fn env() -> SimEnv {
        SimEnv::standard(SloClass::Moderate)
    }

    fn workload_with(popularity: Popularity) -> Workload {
        shaped_workload_with(
            esg_model::WorkloadClass::Light,
            esg_model::TrafficShape::Steady,
            &esg_model::standard_app_ids(),
            11,
            popularity,
            60_000.0,
        )
    }

    fn skewed_workload() -> Workload {
        workload_with(Popularity::Zipf { s: 2.0 })
    }

    fn idle_state(n: u32) -> ClusterState {
        ClusterState::from_views(
            (0..n)
                .map(|i| esg_sim::NodeView::idle(NodeId(i), Resources::new(16, 7)))
                .collect(),
        )
    }

    fn job(slack: f64) -> esg_sim::JobView {
        esg_sim::JobView {
            invocation: esg_model::InvocationId(0),
            ready_at_ms: 0.0,
            invocation_arrival_ms: 0.0,
            slack_ms: slack,
            pred_node: None,
        }
    }

    fn mk_ctx<'a>(
        env: &'a SimEnv,
        state: &'a ClusterState,
        jobs: &'a [esg_sim::JobView],
        key: QueueKey,
        function: esg_model::FnId,
    ) -> SchedCtx<'a> {
        SchedCtx {
            now_ms: 10.0,
            key,
            jobs,
            function,
            slo_ms: env.slo_ms(key.app),
            base_latency_ms: env.base_latency_ms(key.app),
            queue_interval_ms: None,
            cluster: state,
            profiles: &env.profiles,
            apps: &env.apps,
            catalog: &env.catalog,
            price: &env.price,
            transfer: &env.transfer,
            noise: &env.noise,
        }
    }

    #[test]
    fn planner_pins_only_the_skewed_head_within_one_server() {
        let env = env();
        let cluster = ClusterSpec::paper().with_topology(4, 10.0);
        let cfg = PinningConfig::default();
        let plan = PinPlanner::new(cfg).plan(&env, &cluster, &skewed_workload());
        assert!(!plan.is_empty(), "zipf-2 traffic must produce pins");
        assert!(plan.total_vgpus() <= cfg.budget_vgpus);
        // Whole workflows, intra-server: every pinned app has all its
        // stages pinned, all on one server.
        let apps: std::collections::BTreeSet<u32> =
            plan.pins().iter().map(|p| p.key.app.0).collect();
        assert!(apps.len() <= cfg.max_pinned_apps);
        for &a in &apps {
            let pins: Vec<&Pin> = plan.pins().iter().filter(|p| p.key.app.0 == a).collect();
            // Every stage is covered (replicas may add extra pins), and
            // replicas of one stage sit on distinct nodes.
            let covered: std::collections::BTreeSet<usize> =
                pins.iter().map(|p| p.key.stage).collect();
            assert_eq!(covered.len(), env.apps[a as usize].num_stages());
            for &stage in &covered {
                let nodes: std::collections::BTreeSet<NodeId> = pins
                    .iter()
                    .filter(|p| p.key.stage == stage)
                    .map(|p| p.node)
                    .collect();
                let count = pins.iter().filter(|p| p.key.stage == stage).count();
                assert_eq!(nodes.len(), count, "replicas share a node");
            }
            let server = pins[0].server.expect("topology declared");
            assert!(pins.iter().all(|p| p.server == Some(server)));
            let map = ServerMap::from_spec(&cluster).expect("topology declared");
            assert!(pins.iter().all(|p| map.server_of(p.node) == Some(server)));
        }
    }

    #[test]
    fn uniform_traffic_yields_an_empty_plan() {
        let env = env();
        let cluster = ClusterSpec::paper().with_topology(4, 10.0);
        let workload = workload_with(Popularity::Uniform);
        let plan = PinPlanner::new(PinningConfig::default()).plan(&env, &cluster, &workload);
        assert!(plan.is_empty(), "factor 1.5 must reject uniform shares");
    }

    #[test]
    fn a_head_too_hot_for_one_slice_is_left_to_the_dynamic_tier() {
        let env = env();
        let cluster = ClusterSpec::paper().with_topology(4, 10.0);
        // The same zipf-2 mix at Heavy density: the head's arrival rate
        // outruns every profiled configuration's batch/latency
        // throughput, so a pin would funnel half the cluster's traffic
        // through one saturated slice. The planner must pass on it.
        let workload = shaped_workload_with(
            esg_model::WorkloadClass::Heavy,
            esg_model::TrafficShape::Steady,
            &esg_model::standard_app_ids(),
            11,
            Popularity::Zipf { s: 2.0 },
            60_000.0,
        );
        let plan = PinPlanner::new(PinningConfig::default()).plan(&env, &cluster, &workload);
        let light =
            PinPlanner::new(PinningConfig::default()).plan(&env, &cluster, &skewed_workload());
        assert!(
            plan.total_vgpus() < light.total_vgpus(),
            "heavy traffic must pin strictly less than light ({} vs {})",
            plan.total_vgpus(),
            light.total_vgpus()
        );
    }

    #[test]
    fn a_tight_budget_skips_whole_apps_not_stages() {
        let env = env();
        let cluster = ClusterSpec::paper().with_topology(4, 10.0);
        let cfg = PinningConfig {
            budget_vgpus: 1,
            ..PinningConfig::default()
        };
        let plan = PinPlanner::new(cfg).plan(&env, &cluster, &skewed_workload());
        // One vGPU cannot hold any multi-stage app: nothing half-pinned.
        assert!(plan.is_empty());
    }

    #[test]
    fn pinned_queues_dispatch_to_the_pin_with_zero_search() {
        let env = env();
        let cluster = ClusterSpec::paper().with_topology(4, 10.0);
        let mut h =
            HybridScheduler::planned(PinningConfig::default(), &env, &cluster, &skewed_workload());
        let pin = *h.plan().pins().first().expect("plan is non-empty");
        let state = idle_state(16);
        let jobs = vec![job(500.0)];
        let ctx = mk_ctx(&env, &state, &jobs, pin.key, pin.function);
        let out = h.schedule(&ctx);
        assert_eq!(out.expansions, 0, "pinned hits never search");
        assert_eq!(out.candidates, vec![pin.config.clamp_batch(1)]);
        let node = h.place(&ctx, out.candidates[0]).expect("idle node fits");
        assert_eq!(node, pin.node);
        assert_eq!(h.stats().pinned.hits, 1);
        assert_eq!(h.stats().pinned.misses, 0);
    }

    #[test]
    fn a_drained_pin_repins_within_the_server_then_demotes() {
        let env = env();
        let cluster = ClusterSpec::paper().with_topology(4, 10.0);
        let mut h =
            HybridScheduler::planned(PinningConfig::default(), &env, &cluster, &skewed_workload());
        let pin = *h.plan().pins().first().expect("plan is non-empty");
        let server = pin.server.expect("topology declared");
        let map = ServerMap::from_spec(&cluster).expect("topology declared");
        let mut state = idle_state(16);
        // Drain the pinned node only: the pin must move to a sibling.
        state.node_mut(pin.node).online = false;
        state.node_mut(pin.node).free = Resources::ZERO;
        let jobs = vec![job(500.0)];
        let out = h.schedule(&mk_ctx(&env, &state, &jobs, pin.key, pin.function));
        assert!(!out.candidates.is_empty());
        let moved = *h.plan().get(pin.key).expect("still pinned");
        assert_ne!(moved.node, pin.node);
        assert_eq!(map.server_of(moved.node), Some(server), "sibling re-pin");
        assert_eq!(h.pinned_stats().repins, 1);
        assert_eq!(h.pinned_stats().hits, 1);
        // Now drain the whole server: the pin demotes, ESG takes over.
        for n in map.nodes_of(server) {
            state.node_mut(n).online = false;
            state.node_mut(n).free = Resources::ZERO;
        }
        let out = h.schedule(&mk_ctx(&env, &state, &jobs, pin.key, pin.function));
        assert!(
            !out.candidates.is_empty(),
            "demoted queue still gets ESG candidates"
        );
        assert!(out.expansions > 0, "the dynamic tier searched");
        assert!(h.plan().get(pin.key).is_none(), "pin demoted");
        assert_eq!(h.pinned_stats().misses, 1);
    }

    #[test]
    fn empty_plan_delegates_everything_to_esg() {
        let env = env();
        let state = idle_state(4);
        let jobs = vec![job(500.0)];
        let key = QueueKey {
            app: AppId(0),
            stage: 0,
        };
        let ctx = mk_ctx(&env, &state, &jobs, key, env.apps[0].nodes[0]);
        let mut hybrid = HybridScheduler::new(PinPlan::empty());
        let mut esg = EsgScheduler::new();
        let ho = hybrid.schedule(&ctx);
        let eo = esg.schedule(&ctx);
        assert_eq!(ho.candidates, eo.candidates);
        assert_eq!(ho.expansions, eo.expansions);
        assert_eq!(
            hybrid.place(&ctx, ho.candidates[0]),
            esg.place(&ctx, eo.candidates[0])
        );
        // Stats gate: all-zero pinned counters print nothing, so the
        // stats Debug rendering matches ESG's exactly.
        assert_eq!(
            format!("{:?}", hybrid.stats()),
            format!("{:?}", esg.stats())
        );
    }
}
