//! ESG_1Q: the configuration-path search (§3.3, Appendix B).
//!
//! Two published variants are implemented over the same [`StageTable`]:
//!
//! * [`stagewise_search`] — Algorithm 1 (Appendix B): stages are expanded
//!   level by level; within a stage, configurations are scanned in
//!   ascending latency so the time blade can `break` (every later
//!   configuration is slower) while the cost blade `continue`s; `minRSC`
//!   keeps the K best `rscFastest` upper bounds and is reset per stage.
//! * [`astar_search`] — the A* formulation the paper builds on: a best-
//!   first priority queue ordered by the admissible cost heuristic
//!   `f = cost(p) + Σ min-cost(uncovered)`, with the same dual-blade
//!   pruning. The first K goals popped are the K cheapest feasible paths.
//!
//! Both return the *configuration priority queue* (§3.1): up to K full
//! paths meeting the target latency, cheapest first, falling back to the
//! fastest path when the target is unreachable (`setDefaultPaths`).

use crate::bounds::{MinRsc, StageTable};
use esg_model::Config;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One full configuration path through the stage group.
#[derive(Clone, Debug, PartialEq)]
pub struct PathCandidate {
    /// Per-stage configurations.
    pub configs: Vec<Config>,
    /// Total estimated time, ms.
    pub time_ms: f64,
    /// Total estimated per-job cost, cents.
    pub cost_cents: f64,
}

/// The result of one ESG_1Q invocation.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Up to K paths, cheapest first (the configuration priority queue).
    pub paths: Vec<PathCandidate>,
    /// Number of configuration expansions examined (drives the simulated
    /// scheduling overhead).
    pub expansions: u64,
    /// False when no path met the target and the fastest path was
    /// substituted.
    pub feasible: bool,
}

impl SearchResult {
    /// First-stage configurations of the K paths, deduplicated, in path
    /// order — the dispatch candidates (ESG re-plans later stages anyway).
    pub fn first_stage_candidates(&self) -> Vec<Config> {
        let mut out: Vec<Config> = Vec::with_capacity(self.paths.len());
        for p in &self.paths {
            let c = p.configs[0];
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

/// Safety valve on the stage-wise frontier: with very loose targets the
/// level-by-level frontier can grow combinatorially before the cost blade
/// tightens; keeping the cheapest prefixes preserves the optimum (they
/// dominate) while bounding memory.
const MAX_FRONTIER: usize = 8192;

#[derive(Clone, Debug)]
struct Partial {
    configs: Vec<Config>,
    time_ms: f64,
    cost_cents: f64,
}

fn fallback(table: &StageTable, expansions: u64) -> SearchResult {
    let (configs, time_ms, cost_cents) = table.fastest_path();
    SearchResult {
        paths: vec![PathCandidate {
            configs,
            time_ms,
            cost_cents,
        }],
        expansions,
        feasible: false,
    }
}

/// Algorithm 1: stage-wise expansion with dual-blade pruning.
pub fn stagewise_search(table: &StageTable, gslo_ms: f64, k: usize) -> SearchResult {
    assert!(k >= 1, "K must be at least 1");
    let n = table.num_stages();
    let mut expansions: u64 = 0;

    let mut frontier = vec![Partial {
        configs: Vec::new(),
        time_ms: 0.0,
        cost_cents: 0.0,
    }];

    for s in 0..n {
        let mut next: Vec<Partial> = Vec::new();
        // Algorithm 1 resets minRSC at every stage.
        let mut min_rsc = MinRsc::new(k);
        for p in &frontier {
            for e in table.entries(s) {
                expansions += 1;
                let time = p.time_ms + e.latency_ms;
                // Time blade: entries are sorted by latency, so everything
                // after the first violation is also infeasible.
                if table.t_low(time, s + 1) > gslo_ms {
                    break;
                }
                let cost = p.cost_cents + e.per_job_cost_cents;
                // Cost blade: a lower bound at/above the K-th best upper
                // bound cannot enter the top K.
                if table.rsc_low(cost, s + 1) >= min_rsc.kth() {
                    continue;
                }
                min_rsc.insert(table.rsc_fastest(cost, s + 1));
                let mut configs = p.configs.clone();
                configs.push(e.config);
                next.push(Partial {
                    configs,
                    time_ms: time,
                    cost_cents: cost,
                });
            }
        }
        next.sort_by(|a, b| a.cost_cents.total_cmp(&b.cost_cents));
        next.truncate(MAX_FRONTIER);
        frontier = next;
        if frontier.is_empty() {
            return fallback(table, expansions);
        }
    }

    frontier.truncate(k);
    SearchResult {
        paths: frontier
            .into_iter()
            .map(|p| PathCandidate {
                configs: p.configs,
                time_ms: p.time_ms,
                cost_cents: p.cost_cents,
            })
            .collect(),
        expansions,
        feasible: true,
    }
}

/// A per-stage Pareto frontier over `(time, cost)` prefixes, keeping up to
/// `k` exact ties per point.
struct ParetoFront {
    k: usize,
    points: Vec<(f64, f64, usize)>, // (time, cost, tie count)
}

impl ParetoFront {
    fn new(k: usize) -> ParetoFront {
        ParetoFront {
            k,
            points: Vec::new(),
        }
    }

    /// Empties the frontier for reuse under a (possibly different) tie
    /// budget, keeping the point allocation.
    fn reset(&mut self, k: usize) {
        self.k = k;
        self.points.clear();
    }

    /// Returns true when a prefix with `(time, cost)` is worth keeping,
    /// recording it; false when an existing prefix dominates it.
    fn admit(&mut self, time: f64, cost: f64) -> bool {
        const EPS: f64 = 1e-9;
        for p in &mut self.points {
            let tie = (p.0 - time).abs() <= EPS && (p.1 - cost).abs() <= EPS;
            if tie {
                if p.2 < self.k {
                    p.2 += 1;
                    return true;
                }
                return false;
            }
            if p.0 <= time + EPS && p.1 <= cost + EPS {
                return false; // strictly dominated (not a tie)
            }
        }
        // Non-dominated: insert and drop points it dominates.
        self.points
            .retain(|p| !(time <= p.0 + EPS && cost <= p.1 + EPS));
        self.points.push((time, cost, 1));
        true
    }
}

/// Ordered heap node for the A* variant. The partial path lives in the
/// [`SearchScratch`] arena; the heap node carries only its index plus the
/// running totals, so pushing a child never clones a configuration vector.
struct AstarNode {
    f: f64, // cost so far + admissible remaining-cost heuristic
    time_ms: f64,
    cost_cents: f64,
    /// Index of this prefix's last arena entry (`u32::MAX` = empty root).
    arena: u32,
    next_stage: u32,
}

impl PartialEq for AstarNode {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for AstarNode {}
impl PartialOrd for AstarNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for AstarNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.f.total_cmp(&other.f)
    }
}

/// One expanded prefix step: the chosen configuration plus a parent
/// pointer into the same arena (`u32::MAX` terminates at the root).
#[derive(Clone, Copy, Debug)]
struct ArenaStep {
    config: Config,
    parent: u32,
}

/// Reusable allocations for [`astar_search_with`]: the parent-pointer
/// arena of expanded prefixes, the open list, and the per-stage Pareto
/// fronts. A long-lived searcher (the scheduler) keeps one scratch and
/// passes it to every search; `reset` clears lengths but keeps capacity,
/// so steady-state dispatch runs the A* inner loop without heap
/// allocation (goal paths are the only per-call allocation, K small).
#[derive(Default)]
pub struct SearchScratch {
    arena: Vec<ArenaStep>,
    heap: BinaryHeap<Reverse<AstarNode>>,
    fronts: Vec<ParetoFront>,
}

impl SearchScratch {
    /// An empty scratch; capacity grows on first use and is retained.
    pub fn new() -> SearchScratch {
        SearchScratch::default()
    }

    /// Clears per-search state, keeping allocations, and sizes the Pareto
    /// fronts for an `n`-stage search with tie budget `k`.
    fn reset(&mut self, n: usize, k: usize) {
        self.arena.clear();
        self.heap.clear();
        for f in &mut self.fronts {
            f.reset(k);
        }
        while self.fronts.len() <= n {
            self.fronts.push(ParetoFront::new(k));
        }
    }

    /// Materialises the `len`-stage path ending at arena index `last`.
    fn path(&self, last: u32, len: usize) -> Vec<Config> {
        let mut configs = vec![Config::MIN; len];
        let mut cur = last;
        for slot in configs.iter_mut().rev() {
            let step = self.arena[cur as usize];
            *slot = step.config;
            cur = step.parent;
        }
        debug_assert_eq!(cur, u32::MAX, "path length must match arena chain");
        configs
    }
}

impl std::fmt::Debug for SearchScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchScratch")
            .field("arena_capacity", &self.arena.capacity())
            .field("fronts", &self.fronts.len())
            .finish()
    }
}

/// The A* formulation: best-first over partial paths with
/// `f(p) = cost(p) + Σ min-cost(uncovered stages)` (admissible and
/// consistent, so the first K goals are the K cheapest feasible paths),
/// pruned by the same dual blades.
pub fn astar_search(table: &StageTable, gslo_ms: f64, k: usize) -> SearchResult {
    astar_search_bounded(table, gslo_ms, k, f64::INFINITY)
}

/// [`astar_search`] with a *premium bound*: once the optimal path is
/// known, alternates costing more than `(1 + premium)` times the optimum
/// are abandoned. Rank-1 optimality is unaffected; ranks 2..K become
/// "K best within the premium band". The scheduler uses this because a
/// dispatch alternate far above the optimum would never be worth its
/// search time, and cost plateaus otherwise make exact K-best exploration
/// degenerate on loose targets.
pub fn astar_search_bounded(
    table: &StageTable,
    gslo_ms: f64,
    k: usize,
    premium: f64,
) -> SearchResult {
    astar_search_with(table, gslo_ms, k, premium, &mut SearchScratch::new())
}

/// [`astar_search_bounded`] over caller-owned [`SearchScratch`] storage.
/// Results are bit-identical to the one-shot form — the scratch only
/// changes where intermediate state lives, not the expansion order (heap
/// ordering keys are unchanged).
pub fn astar_search_with(
    table: &StageTable,
    gslo_ms: f64,
    k: usize,
    premium: f64,
    scratch: &mut SearchScratch,
) -> SearchResult {
    assert!(k >= 1, "K must be at least 1");
    let n = table.num_stages();
    let mut expansions: u64 = 0;
    scratch.reset(n, k);
    let mut min_rsc = MinRsc::new(k);
    let mut goals: Vec<PathCandidate> = Vec::with_capacity(k);
    // Third blade: per-stage Pareto dominance. A prefix that is no faster
    // *and* no cheaper than an existing prefix at the same stage cannot
    // complete into a better path (completions are identical sets). Up to
    // `k` exact ties are kept so alternates survive; rank-1 optimality is
    // preserved because some non-dominated prefix always carries a path of
    // the optimal cost.

    scratch.heap.push(Reverse(AstarNode {
        f: table.rsc_low(0.0, 0),
        time_ms: 0.0,
        cost_cents: 0.0,
        arena: u32::MAX,
        next_stage: 0,
    }));

    while let Some(Reverse(node)) = scratch.heap.pop() {
        if let Some(first) = goals.first() {
            // f is non-decreasing along pops (consistent heuristic): once
            // the frontier exceeds the premium band, no acceptable
            // alternate remains.
            if node.f > first.cost_cents * (1.0 + premium) {
                break;
            }
        }
        if node.next_stage as usize == n {
            goals.push(PathCandidate {
                configs: scratch.path(node.arena, n),
                time_ms: node.time_ms,
                cost_cents: node.cost_cents,
            });
            if goals.len() >= k {
                break;
            }
            continue;
        }
        let s = node.next_stage as usize;
        for e in table.entries(s) {
            expansions += 1;
            let time = node.time_ms + e.latency_ms;
            if table.t_low(time, s + 1) > gslo_ms {
                break; // ascending latency
            }
            let cost = node.cost_cents + e.per_job_cost_cents;
            let f = table.rsc_low(cost, s + 1);
            // Strict comparison: a child whose lower bound ties the K-th
            // distinct upper bound may still *be* that K-th path.
            if f > min_rsc.kth() {
                continue;
            }
            if !scratch.fronts[s + 1].admit(time, cost) {
                continue;
            }
            min_rsc.insert_distinct(table.rsc_fastest(cost, s + 1));
            let idx = scratch.arena.len() as u32;
            scratch.arena.push(ArenaStep {
                config: e.config,
                parent: node.arena,
            });
            scratch.heap.push(Reverse(AstarNode {
                f,
                time_ms: time,
                cost_cents: cost,
                arena: idx,
                next_stage: node.next_stage + 1,
            }));
        }
    }

    if goals.is_empty() {
        return fallback(table, expansions);
    }
    SearchResult {
        paths: goals,
        expansions,
        feasible: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use esg_model::{standard_catalog, ConfigGrid, FnId, PriceModel};
    use esg_profile::ProfileTable;

    fn profiles(grid: ConfigGrid) -> ProfileTable {
        ProfileTable::build(&standard_catalog(), &grid, &PriceModel::default())
    }

    fn small_grid() -> ConfigGrid {
        ConfigGrid::new(vec![1, 2, 4], vec![1, 2, 4], vec![1, 2])
    }

    #[test]
    fn both_variants_match_brute_force_optimum() {
        let p = profiles(small_grid());
        let stages = [FnId(0), FnId(1), FnId(3)]; // image classification
        for cap in [1u32, 2, 8] {
            let table = StageTable::build(&stages, &p, cap);
            for gslo in [300.0, 450.0, 600.0, 900.0, 2000.0] {
                let oracle = brute_force(&table, gslo, 1);
                let sw = stagewise_search(&table, gslo, 1);
                let astar = astar_search(&table, gslo, 1);
                assert_eq!(oracle.feasible, sw.feasible, "gslo={gslo} cap={cap}");
                assert_eq!(oracle.feasible, astar.feasible, "gslo={gslo} cap={cap}");
                if oracle.feasible {
                    let oc = oracle.paths[0].cost_cents;
                    assert!(
                        (sw.paths[0].cost_cents - oc).abs() < 1e-9,
                        "stagewise {} vs oracle {} at gslo={gslo} cap={cap}",
                        sw.paths[0].cost_cents,
                        oc
                    );
                    assert!(
                        (astar.paths[0].cost_cents - oc).abs() < 1e-9,
                        "astar {} vs oracle {} at gslo={gslo} cap={cap}",
                        astar.paths[0].cost_cents,
                        oc
                    );
                }
            }
        }
    }

    #[test]
    fn k_best_costs_match_brute_force() {
        let p = profiles(small_grid());
        let stages = [FnId(2), FnId(0), FnId(5)]; // depth recognition
        let table = StageTable::build(&stages, &p, 8);
        let gslo = 1800.0;
        let k = 5;
        let oracle = brute_force(&table, gslo, k);
        let sw = stagewise_search(&table, gslo, k);
        let astar = astar_search(&table, gslo, k);
        assert!(oracle.feasible);
        // The stage-wise Algorithm-1 form returns the exact K-best ranks.
        for (i, o) in oracle.paths.iter().enumerate() {
            assert!(
                (sw.paths[i].cost_cents - o.cost_cents).abs() < 1e-9,
                "stagewise rank {i}"
            );
        }
        // A* adds Pareto-dominance pruning, so ranks 2..K are the best
        // *surviving* alternates: rank-1 stays exact, later ranks are
        // feasible, sorted, and never better than the oracle's same rank.
        assert!(
            (astar.paths[0].cost_cents - oracle.paths[0].cost_cents).abs() < 1e-9,
            "astar rank 0"
        );
        for (i, path) in astar.paths.iter().enumerate() {
            assert!(path.time_ms <= gslo + 1e-9);
            assert!(
                path.cost_cents + 1e-9 >= oracle.paths[i].cost_cents,
                "astar rank {i} beat the oracle"
            );
        }
        for w in astar.paths.windows(2) {
            assert!(w[0].cost_cents <= w[1].cost_cents + 1e-12);
        }
    }

    #[test]
    fn results_meet_target_latency() {
        let p = profiles(small_grid());
        let table = StageTable::build(&[FnId(0), FnId(1)], &p, 8);
        let gslo = 500.0;
        for search in [stagewise_search, astar_search] {
            let r = search(&table, gslo, 3);
            assert!(r.feasible);
            for path in &r.paths {
                assert!(path.time_ms <= gslo, "{} > {gslo}", path.time_ms);
                assert_eq!(path.configs.len(), 2);
            }
            // Cheapest first.
            for w in r.paths.windows(2) {
                assert!(w[0].cost_cents <= w[1].cost_cents + 1e-12);
            }
        }
    }

    #[test]
    fn infeasible_target_falls_back_to_fastest() {
        let p = profiles(small_grid());
        let table = StageTable::build(&[FnId(4), FnId(5)], &p, 8);
        let impossible = table.min_total_time() * 0.5;
        for search in [stagewise_search, astar_search] {
            let r = search(&table, impossible, 5);
            assert!(!r.feasible);
            assert_eq!(r.paths.len(), 1);
            let (fast_cfgs, fast_time, _) = table.fastest_path();
            assert_eq!(r.paths[0].configs, fast_cfgs);
            assert!((r.paths[0].time_ms - fast_time).abs() < 1e-9);
        }
    }

    #[test]
    fn pruning_reduces_expansions_vs_brute_force() {
        let p = profiles(ConfigGrid::default());
        let stages = [FnId(0), FnId(1), FnId(3)];
        let table = StageTable::build(&stages, &p, 8);
        let total = (table.entries(0).len() as u64)
            * (table.entries(1).len() as u64)
            * (table.entries(2).len() as u64);
        let gslo = table.min_total_time() * 1.3;
        let sw = stagewise_search(&table, gslo, 5);
        let astar = astar_search(&table, gslo, 5);
        assert!(sw.feasible && astar.feasible);
        assert!(
            sw.expansions * 10 < total,
            "stage-wise expanded {} of {total}",
            sw.expansions
        );
        assert!(
            astar.expansions * 10 < total,
            "A* expanded {} of {total}",
            astar.expansions
        );
    }

    #[test]
    fn tighter_slo_prunes_more() {
        // §5.3: "searching overhead increases with more relaxed SLO
        // settings … fewer configurations being pruned".
        let p = profiles(ConfigGrid::default());
        let table = StageTable::build(&[FnId(0), FnId(1), FnId(3)], &p, 8);
        let tight = stagewise_search(&table, table.min_total_time() * 1.05, 5);
        let loose = stagewise_search(&table, table.min_total_time() * 3.0, 5);
        assert!(
            tight.expansions < loose.expansions,
            "tight {} !< loose {}",
            tight.expansions,
            loose.expansions
        );
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        let p = profiles(small_grid());
        let mut scratch = SearchScratch::new();
        // Interleave tables of different widths and targets so stale arena
        // or front state from one search would corrupt the next.
        let windows: [&[FnId]; 3] = [
            &[FnId(0), FnId(1), FnId(3)],
            &[FnId(4)],
            &[FnId(2), FnId(0)],
        ];
        for stages in windows {
            let table = StageTable::build(stages, &p, 8);
            for mult in [0.9, 1.05, 1.5, 3.0] {
                let gslo = table.min_total_time() * mult;
                for k in [1, 5] {
                    for premium in [0.0, 0.5, f64::INFINITY] {
                        let fresh = astar_search_bounded(&table, gslo, k, premium);
                        let reused = astar_search_with(&table, gslo, k, premium, &mut scratch);
                        assert_eq!(fresh.feasible, reused.feasible);
                        assert_eq!(fresh.expansions, reused.expansions);
                        assert_eq!(fresh.paths.len(), reused.paths.len());
                        for (a, b) in fresh.paths.iter().zip(&reused.paths) {
                            assert_eq!(a.configs, b.configs);
                            assert_eq!(a.time_ms.to_bits(), b.time_ms.to_bits());
                            assert_eq!(a.cost_cents.to_bits(), b.cost_cents.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn first_stage_candidates_dedup() {
        let r = SearchResult {
            paths: vec![
                PathCandidate {
                    configs: vec![Config::new(1, 1, 1), Config::new(2, 1, 1)],
                    time_ms: 1.0,
                    cost_cents: 1.0,
                },
                PathCandidate {
                    configs: vec![Config::new(1, 1, 1), Config::new(4, 1, 1)],
                    time_ms: 2.0,
                    cost_cents: 2.0,
                },
                PathCandidate {
                    configs: vec![Config::new(2, 2, 1), Config::new(1, 1, 1)],
                    time_ms: 3.0,
                    cost_cents: 3.0,
                },
            ],
            expansions: 0,
            feasible: true,
        };
        assert_eq!(
            r.first_stage_candidates(),
            vec![Config::new(1, 1, 1), Config::new(2, 2, 1)]
        );
    }

    #[test]
    fn single_stage_group() {
        let p = profiles(small_grid());
        let table = StageTable::build(&[FnId(3)], &p, 4);
        let r = astar_search(&table, 1000.0, 5);
        assert!(r.feasible);
        assert!(r.paths.len() <= 5);
        assert_eq!(r.paths[0].configs.len(), 1);
        // Cheapest feasible single config == brute force.
        let oracle = brute_force(&table, 1000.0, 1);
        assert!((r.paths[0].cost_cents - oracle.paths[0].cost_cents).abs() < 1e-12);
    }

    #[test]
    fn batch_cap_respected_in_results() {
        let p = profiles(small_grid());
        let table = StageTable::build(&[FnId(0), FnId(1)], &p, 2);
        let r = stagewise_search(&table, 2000.0, 5);
        for path in &r.paths {
            assert!(path.configs[0].batch <= 2, "{:?}", path.configs[0]);
        }
    }
}
