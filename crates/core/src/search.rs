//! ESG_1Q: the configuration-path search (§3.3, Appendix B).
//!
//! Two published variants are implemented over the same [`StageTable`]:
//!
//! * [`stagewise_search`] — Algorithm 1 (Appendix B): stages are expanded
//!   level by level; within a stage, configurations are scanned in
//!   ascending latency so the time blade can `break` (every later
//!   configuration is slower) while the cost blade `continue`s; `minRSC`
//!   keeps the K best `rscFastest` upper bounds and is reset per stage.
//! * [`astar_search`] — the A* formulation the paper builds on: a best-
//!   first priority queue ordered by the admissible cost heuristic
//!   `f = cost(p) + Σ min-cost(uncovered)`, with the same dual-blade
//!   pruning. The first K goals popped are the K cheapest feasible paths.
//!
//! Both return the *configuration priority queue* (§3.1): up to K full
//! paths meeting the target latency, cheapest first, falling back to the
//! fastest path when the target is unreachable (`setDefaultPaths`).

use crate::bounds::{MinRsc, StageTable};
use esg_model::Config;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One full configuration path through the stage group.
#[derive(Clone, Debug, PartialEq)]
pub struct PathCandidate {
    /// Per-stage configurations.
    pub configs: Vec<Config>,
    /// Total estimated time, ms.
    pub time_ms: f64,
    /// Total estimated per-job cost, cents.
    pub cost_cents: f64,
}

/// The result of one ESG_1Q invocation.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Up to K paths, cheapest first (the configuration priority queue).
    pub paths: Vec<PathCandidate>,
    /// Number of configuration expansions examined (drives the simulated
    /// scheduling overhead).
    pub expansions: u64,
    /// False when no path met the target and the fastest path was
    /// substituted.
    pub feasible: bool,
}

impl SearchResult {
    /// First-stage configurations of the K paths, deduplicated, in path
    /// order — the dispatch candidates (ESG re-plans later stages anyway).
    pub fn first_stage_candidates(&self) -> Vec<Config> {
        let mut out: Vec<Config> = Vec::with_capacity(self.paths.len());
        for p in &self.paths {
            let c = p.configs[0];
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

/// Safety valve on the stage-wise frontier: with very loose targets the
/// level-by-level frontier can grow combinatorially before the cost blade
/// tightens; keeping the cheapest prefixes preserves the optimum (they
/// dominate) while bounding memory.
const MAX_FRONTIER: usize = 8192;

#[derive(Clone, Debug)]
struct Partial {
    configs: Vec<Config>,
    time_ms: f64,
    cost_cents: f64,
}

fn fallback(table: &StageTable, expansions: u64) -> SearchResult {
    let (configs, time_ms, cost_cents) = table.fastest_path();
    SearchResult {
        paths: vec![PathCandidate {
            configs,
            time_ms,
            cost_cents,
        }],
        expansions,
        feasible: false,
    }
}

/// Algorithm 1: stage-wise expansion with dual-blade pruning.
pub fn stagewise_search(table: &StageTable, gslo_ms: f64, k: usize) -> SearchResult {
    assert!(k >= 1, "K must be at least 1");
    let n = table.num_stages();
    let mut expansions: u64 = 0;

    let mut frontier = vec![Partial {
        configs: Vec::new(),
        time_ms: 0.0,
        cost_cents: 0.0,
    }];

    for s in 0..n {
        let mut next: Vec<Partial> = Vec::new();
        // Algorithm 1 resets minRSC at every stage.
        let mut min_rsc = MinRsc::new(k);
        for p in &frontier {
            for e in table.entries(s) {
                expansions += 1;
                let time = p.time_ms + e.latency_ms;
                // Time blade: entries are sorted by latency, so everything
                // after the first violation is also infeasible.
                if table.t_low(time, s + 1) > gslo_ms {
                    break;
                }
                let cost = p.cost_cents + e.per_job_cost_cents;
                // Cost blade: a lower bound at/above the K-th best upper
                // bound cannot enter the top K.
                if table.rsc_low(cost, s + 1) >= min_rsc.kth() {
                    continue;
                }
                min_rsc.insert(table.rsc_fastest(cost, s + 1));
                let mut configs = p.configs.clone();
                configs.push(e.config);
                next.push(Partial {
                    configs,
                    time_ms: time,
                    cost_cents: cost,
                });
            }
        }
        next.sort_by(|a, b| a.cost_cents.total_cmp(&b.cost_cents));
        next.truncate(MAX_FRONTIER);
        frontier = next;
        if frontier.is_empty() {
            return fallback(table, expansions);
        }
    }

    frontier.truncate(k);
    SearchResult {
        paths: frontier
            .into_iter()
            .map(|p| PathCandidate {
                configs: p.configs,
                time_ms: p.time_ms,
                cost_cents: p.cost_cents,
            })
            .collect(),
        expansions,
        feasible: true,
    }
}

/// A per-stage Pareto frontier over `(time, cost)` prefixes, keeping up to
/// `k` exact ties per point.
struct ParetoFront {
    k: usize,
    points: Vec<(f64, f64, usize)>, // (time, cost, tie count)
}

impl ParetoFront {
    fn new(k: usize) -> ParetoFront {
        ParetoFront {
            k,
            points: Vec::new(),
        }
    }

    /// Returns true when a prefix with `(time, cost)` is worth keeping,
    /// recording it; false when an existing prefix dominates it.
    fn admit(&mut self, time: f64, cost: f64) -> bool {
        const EPS: f64 = 1e-9;
        for p in &mut self.points {
            let tie = (p.0 - time).abs() <= EPS && (p.1 - cost).abs() <= EPS;
            if tie {
                if p.2 < self.k {
                    p.2 += 1;
                    return true;
                }
                return false;
            }
            if p.0 <= time + EPS && p.1 <= cost + EPS {
                return false; // strictly dominated (not a tie)
            }
        }
        // Non-dominated: insert and drop points it dominates.
        self.points
            .retain(|p| !(time <= p.0 + EPS && cost <= p.1 + EPS));
        self.points.push((time, cost, 1));
        true
    }
}

/// Ordered heap node for the A* variant.
struct AstarNode {
    f: f64, // cost so far + admissible remaining-cost heuristic
    partial: Partial,
    next_stage: usize,
}

impl PartialEq for AstarNode {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for AstarNode {}
impl PartialOrd for AstarNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for AstarNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.f.total_cmp(&other.f)
    }
}

/// The A* formulation: best-first over partial paths with
/// `f(p) = cost(p) + Σ min-cost(uncovered stages)` (admissible and
/// consistent, so the first K goals are the K cheapest feasible paths),
/// pruned by the same dual blades.
pub fn astar_search(table: &StageTable, gslo_ms: f64, k: usize) -> SearchResult {
    astar_search_bounded(table, gslo_ms, k, f64::INFINITY)
}

/// [`astar_search`] with a *premium bound*: once the optimal path is
/// known, alternates costing more than `(1 + premium)` times the optimum
/// are abandoned. Rank-1 optimality is unaffected; ranks 2..K become
/// "K best within the premium band". The scheduler uses this because a
/// dispatch alternate far above the optimum would never be worth its
/// search time, and cost plateaus otherwise make exact K-best exploration
/// degenerate on loose targets.
pub fn astar_search_bounded(
    table: &StageTable,
    gslo_ms: f64,
    k: usize,
    premium: f64,
) -> SearchResult {
    assert!(k >= 1, "K must be at least 1");
    let n = table.num_stages();
    let mut expansions: u64 = 0;
    let mut heap: BinaryHeap<Reverse<AstarNode>> = BinaryHeap::new();
    let mut min_rsc = MinRsc::new(k);
    let mut goals: Vec<PathCandidate> = Vec::with_capacity(k);
    // Third blade: per-stage Pareto dominance. A prefix that is no faster
    // *and* no cheaper than an existing prefix at the same stage cannot
    // complete into a better path (completions are identical sets). Up to
    // `k` exact ties are kept so alternates survive; rank-1 optimality is
    // preserved because some non-dominated prefix always carries a path of
    // the optimal cost.
    let mut fronts: Vec<ParetoFront> = (0..=n).map(|_| ParetoFront::new(k)).collect();

    heap.push(Reverse(AstarNode {
        f: table.rsc_low(0.0, 0),
        partial: Partial {
            configs: Vec::new(),
            time_ms: 0.0,
            cost_cents: 0.0,
        },
        next_stage: 0,
    }));

    while let Some(Reverse(node)) = heap.pop() {
        if let Some(first) = goals.first() {
            // f is non-decreasing along pops (consistent heuristic): once
            // the frontier exceeds the premium band, no acceptable
            // alternate remains.
            if node.f > first.cost_cents * (1.0 + premium) {
                break;
            }
        }
        if node.next_stage == n {
            goals.push(PathCandidate {
                configs: node.partial.configs,
                time_ms: node.partial.time_ms,
                cost_cents: node.partial.cost_cents,
            });
            if goals.len() >= k {
                break;
            }
            continue;
        }
        let s = node.next_stage;
        for e in table.entries(s) {
            expansions += 1;
            let time = node.partial.time_ms + e.latency_ms;
            if table.t_low(time, s + 1) > gslo_ms {
                break; // ascending latency
            }
            let cost = node.partial.cost_cents + e.per_job_cost_cents;
            let f = table.rsc_low(cost, s + 1);
            // Strict comparison: a child whose lower bound ties the K-th
            // distinct upper bound may still *be* that K-th path.
            if f > min_rsc.kth() {
                continue;
            }
            if !fronts[s + 1].admit(time, cost) {
                continue;
            }
            min_rsc.insert_distinct(table.rsc_fastest(cost, s + 1));
            let mut configs = node.partial.configs.clone();
            configs.push(e.config);
            heap.push(Reverse(AstarNode {
                f,
                partial: Partial {
                    configs,
                    time_ms: time,
                    cost_cents: cost,
                },
                next_stage: s + 1,
            }));
        }
    }

    if goals.is_empty() {
        return fallback(table, expansions);
    }
    SearchResult {
        paths: goals,
        expansions,
        feasible: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use esg_model::{standard_catalog, ConfigGrid, FnId, PriceModel};
    use esg_profile::ProfileTable;

    fn profiles(grid: ConfigGrid) -> ProfileTable {
        ProfileTable::build(&standard_catalog(), &grid, &PriceModel::default())
    }

    fn small_grid() -> ConfigGrid {
        ConfigGrid::new(vec![1, 2, 4], vec![1, 2, 4], vec![1, 2])
    }

    #[test]
    fn both_variants_match_brute_force_optimum() {
        let p = profiles(small_grid());
        let stages = [FnId(0), FnId(1), FnId(3)]; // image classification
        for cap in [1u32, 2, 8] {
            let table = StageTable::build(&stages, &p, cap);
            for gslo in [300.0, 450.0, 600.0, 900.0, 2000.0] {
                let oracle = brute_force(&table, gslo, 1);
                let sw = stagewise_search(&table, gslo, 1);
                let astar = astar_search(&table, gslo, 1);
                assert_eq!(oracle.feasible, sw.feasible, "gslo={gslo} cap={cap}");
                assert_eq!(oracle.feasible, astar.feasible, "gslo={gslo} cap={cap}");
                if oracle.feasible {
                    let oc = oracle.paths[0].cost_cents;
                    assert!(
                        (sw.paths[0].cost_cents - oc).abs() < 1e-9,
                        "stagewise {} vs oracle {} at gslo={gslo} cap={cap}",
                        sw.paths[0].cost_cents,
                        oc
                    );
                    assert!(
                        (astar.paths[0].cost_cents - oc).abs() < 1e-9,
                        "astar {} vs oracle {} at gslo={gslo} cap={cap}",
                        astar.paths[0].cost_cents,
                        oc
                    );
                }
            }
        }
    }

    #[test]
    fn k_best_costs_match_brute_force() {
        let p = profiles(small_grid());
        let stages = [FnId(2), FnId(0), FnId(5)]; // depth recognition
        let table = StageTable::build(&stages, &p, 8);
        let gslo = 1800.0;
        let k = 5;
        let oracle = brute_force(&table, gslo, k);
        let sw = stagewise_search(&table, gslo, k);
        let astar = astar_search(&table, gslo, k);
        assert!(oracle.feasible);
        // The stage-wise Algorithm-1 form returns the exact K-best ranks.
        for (i, o) in oracle.paths.iter().enumerate() {
            assert!(
                (sw.paths[i].cost_cents - o.cost_cents).abs() < 1e-9,
                "stagewise rank {i}"
            );
        }
        // A* adds Pareto-dominance pruning, so ranks 2..K are the best
        // *surviving* alternates: rank-1 stays exact, later ranks are
        // feasible, sorted, and never better than the oracle's same rank.
        assert!(
            (astar.paths[0].cost_cents - oracle.paths[0].cost_cents).abs() < 1e-9,
            "astar rank 0"
        );
        for (i, path) in astar.paths.iter().enumerate() {
            assert!(path.time_ms <= gslo + 1e-9);
            assert!(
                path.cost_cents + 1e-9 >= oracle.paths[i].cost_cents,
                "astar rank {i} beat the oracle"
            );
        }
        for w in astar.paths.windows(2) {
            assert!(w[0].cost_cents <= w[1].cost_cents + 1e-12);
        }
    }

    #[test]
    fn results_meet_target_latency() {
        let p = profiles(small_grid());
        let table = StageTable::build(&[FnId(0), FnId(1)], &p, 8);
        let gslo = 500.0;
        for search in [stagewise_search, astar_search] {
            let r = search(&table, gslo, 3);
            assert!(r.feasible);
            for path in &r.paths {
                assert!(path.time_ms <= gslo, "{} > {gslo}", path.time_ms);
                assert_eq!(path.configs.len(), 2);
            }
            // Cheapest first.
            for w in r.paths.windows(2) {
                assert!(w[0].cost_cents <= w[1].cost_cents + 1e-12);
            }
        }
    }

    #[test]
    fn infeasible_target_falls_back_to_fastest() {
        let p = profiles(small_grid());
        let table = StageTable::build(&[FnId(4), FnId(5)], &p, 8);
        let impossible = table.min_total_time() * 0.5;
        for search in [stagewise_search, astar_search] {
            let r = search(&table, impossible, 5);
            assert!(!r.feasible);
            assert_eq!(r.paths.len(), 1);
            let (fast_cfgs, fast_time, _) = table.fastest_path();
            assert_eq!(r.paths[0].configs, fast_cfgs);
            assert!((r.paths[0].time_ms - fast_time).abs() < 1e-9);
        }
    }

    #[test]
    fn pruning_reduces_expansions_vs_brute_force() {
        let p = profiles(ConfigGrid::default());
        let stages = [FnId(0), FnId(1), FnId(3)];
        let table = StageTable::build(&stages, &p, 8);
        let total = (table.entries(0).len() as u64)
            * (table.entries(1).len() as u64)
            * (table.entries(2).len() as u64);
        let gslo = table.min_total_time() * 1.3;
        let sw = stagewise_search(&table, gslo, 5);
        let astar = astar_search(&table, gslo, 5);
        assert!(sw.feasible && astar.feasible);
        assert!(
            sw.expansions * 10 < total,
            "stage-wise expanded {} of {total}",
            sw.expansions
        );
        assert!(
            astar.expansions * 10 < total,
            "A* expanded {} of {total}",
            astar.expansions
        );
    }

    #[test]
    fn tighter_slo_prunes_more() {
        // §5.3: "searching overhead increases with more relaxed SLO
        // settings … fewer configurations being pruned".
        let p = profiles(ConfigGrid::default());
        let table = StageTable::build(&[FnId(0), FnId(1), FnId(3)], &p, 8);
        let tight = stagewise_search(&table, table.min_total_time() * 1.05, 5);
        let loose = stagewise_search(&table, table.min_total_time() * 3.0, 5);
        assert!(
            tight.expansions < loose.expansions,
            "tight {} !< loose {}",
            tight.expansions,
            loose.expansions
        );
    }

    #[test]
    fn first_stage_candidates_dedup() {
        let r = SearchResult {
            paths: vec![
                PathCandidate {
                    configs: vec![Config::new(1, 1, 1), Config::new(2, 1, 1)],
                    time_ms: 1.0,
                    cost_cents: 1.0,
                },
                PathCandidate {
                    configs: vec![Config::new(1, 1, 1), Config::new(4, 1, 1)],
                    time_ms: 2.0,
                    cost_cents: 2.0,
                },
                PathCandidate {
                    configs: vec![Config::new(2, 2, 1), Config::new(1, 1, 1)],
                    time_ms: 3.0,
                    cost_cents: 3.0,
                },
            ],
            expansions: 0,
            feasible: true,
        };
        assert_eq!(
            r.first_stage_candidates(),
            vec![Config::new(1, 1, 1), Config::new(2, 2, 1)]
        );
    }

    #[test]
    fn single_stage_group() {
        let p = profiles(small_grid());
        let table = StageTable::build(&[FnId(3)], &p, 4);
        let r = astar_search(&table, 1000.0, 5);
        assert!(r.feasible);
        assert!(r.paths.len() <= 5);
        assert_eq!(r.paths[0].configs.len(), 1);
        // Cheapest feasible single config == brute force.
        let oracle = brute_force(&table, 1000.0, 1);
        assert!((r.paths[0].cost_cents - oracle.paths[0].cost_cents).abs() < 1e-12);
    }

    #[test]
    fn batch_cap_respected_in_results() {
        let p = profiles(small_grid());
        let table = StageTable::build(&[FnId(0), FnId(1)], &p, 2);
        let r = stagewise_search(&table, 2000.0, 5);
        for path in &r.paths {
            assert!(path.configs[0].batch <= 2, "{:?}", path.configs[0]);
        }
    }
}
