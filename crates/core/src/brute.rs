//! Exhaustive configuration-path search.
//!
//! The §5.3 overhead baseline ("the time taken by a brute-force search
//! would be orders of magnitude higher … 7258 ms for 256 configurations
//! per function") and the oracle against which the pruned searches are
//! property-tested.

use crate::bounds::StageTable;
use crate::search::{PathCandidate, SearchResult};
use esg_model::Config;

/// Enumerates every configuration path, returning the K cheapest that meet
/// `gslo_ms` (fastest-path fallback when none does, like the pruned
/// searches).
pub fn brute_force(table: &StageTable, gslo_ms: f64, k: usize) -> SearchResult {
    assert!(k >= 1, "K must be at least 1");
    let n = table.num_stages();
    let mut best: Vec<PathCandidate> = Vec::new();
    let mut expansions: u64 = 0;

    let mut stack: Vec<(usize, Vec<Config>, f64, f64)> = vec![(0, Vec::new(), 0.0, 0.0)];
    while let Some((s, configs, time, cost)) = stack.pop() {
        if s == n {
            if time <= gslo_ms {
                let pos = best.partition_point(|p| p.cost_cents <= cost);
                if pos < k {
                    best.insert(
                        pos,
                        PathCandidate {
                            configs,
                            time_ms: time,
                            cost_cents: cost,
                        },
                    );
                    best.truncate(k);
                }
            }
            continue;
        }
        for e in table.entries(s) {
            expansions += 1;
            let mut c = configs.clone();
            c.push(e.config);
            stack.push((s + 1, c, time + e.latency_ms, cost + e.per_job_cost_cents));
        }
    }

    if best.is_empty() {
        let (configs, time_ms, cost_cents) = table.fastest_path();
        return SearchResult {
            paths: vec![PathCandidate {
                configs,
                time_ms,
                cost_cents,
            }],
            expansions,
            feasible: false,
        };
    }
    SearchResult {
        paths: best,
        expansions,
        feasible: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{standard_catalog, ConfigGrid, FnId, PriceModel};
    use esg_profile::ProfileTable;

    fn table(stages: &[FnId]) -> StageTable {
        let p = ProfileTable::build(
            &standard_catalog(),
            &ConfigGrid::new(vec![1, 2], vec![1, 2], vec![1, 2]),
            &PriceModel::default(),
        );
        StageTable::build(stages, &p, 8)
    }

    #[test]
    fn expansion_count_is_tree_size() {
        let t = table(&[FnId(0), FnId(1)]);
        let r = brute_force(&t, f64::INFINITY, 1);
        // 8 first-stage entries + 8*8 second-stage entries.
        assert_eq!(r.expansions, 8 + 64);
        assert!(r.feasible);
    }

    #[test]
    fn returns_k_cheapest_sorted() {
        let t = table(&[FnId(0), FnId(2)]);
        let r = brute_force(&t, f64::INFINITY, 4);
        assert_eq!(r.paths.len(), 4);
        for w in r.paths.windows(2) {
            assert!(w[0].cost_cents <= w[1].cost_cents);
        }
    }

    #[test]
    fn respects_deadline() {
        let t = table(&[FnId(4), FnId(5)]);
        let gslo = t.min_total_time() * 1.1;
        let r = brute_force(&t, gslo, 8);
        assert!(r.feasible);
        for p in &r.paths {
            assert!(p.time_ms <= gslo);
        }
    }

    #[test]
    fn infeasible_falls_back() {
        let t = table(&[FnId(4)]);
        let r = brute_force(&t, 1.0, 3);
        assert!(!r.feasible);
        assert_eq!(r.paths.len(), 1);
    }
}
