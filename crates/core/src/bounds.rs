//! Per-stage tables and the dual-blade bounds (§3.3).
//!
//! For a partial path `p` over the first stages of a group, ESG_1Q computes:
//!
//! * `tLow(p)` — `time(p)` plus the **minimum latency** of every uncovered
//!   stage: a lower bound on any completion's time. Used by the time blade.
//! * `rscLow(p)` — `cost(p)` plus the **minimum cost** of every uncovered
//!   stage: a lower bound on any completion's cost. Used by the cost blade.
//! * `rscFastest(p)` — `cost(p)` plus the cost of running every uncovered
//!   stage **at its fastest configuration**: the cost of an achievable
//!   completion (the fastest one), hence an upper bound that tightens
//!   `best_full_paths_maxCost`.
//!
//! The table pre-computes suffix sums of the three per-stage aggregates so
//! each bound is O(1) during the search.

use esg_model::{Config, FnId};
use esg_profile::{ProfileEntry, ProfileTable};

/// Pre-processed stage data for one ESG_1Q invocation.
///
/// Entries are *interned* at build time into one flat arena (`entries` +
/// `offsets`) instead of a `Vec<Vec<_>>`: a dispatch-path build performs
/// exactly two allocations for the entry storage regardless of stage
/// count, and the per-stage slices stay contiguous for the search's
/// sequential scans. Profiles arrive pre-sorted ascending by latency
/// (`FunctionProfile::entries`), so build never re-sorts — sortedness is
/// asserted in debug builds only.
#[derive(Clone, Debug)]
pub struct StageTable {
    /// All stages' profile entries, concatenated; each stage's slice is
    /// ascending by latency, with the first stage's batch capped at the
    /// queue length.
    entries: Vec<ProfileEntry>,
    /// Stage boundaries into `entries`: stage `s` is
    /// `entries[offsets[s]..offsets[s+1]]`.
    offsets: Vec<u32>,
    /// Suffix sums over stages `s..` of the minimum latency.
    min_lat_suffix: Vec<f64>,
    /// Suffix sums over stages `s..` of the minimum per-job cost.
    min_cost_suffix: Vec<f64>,
    /// Suffix sums over stages `s..` of the fastest-config per-job cost.
    fastest_cost_suffix: Vec<f64>,
}

impl StageTable {
    /// Builds the table for a stage sequence. `first_stage_max_batch` caps
    /// the batch dimension of stage 0 (ESG adapts the batch to the actual
    /// queue length; later stages are unconstrained).
    pub fn build(
        stages: &[FnId],
        profiles: &ProfileTable,
        first_stage_max_batch: u32,
    ) -> StageTable {
        assert!(!stages.is_empty(), "need at least one stage");
        let n = stages.len();
        let total: usize = stages
            .iter()
            .map(|&f| profiles.profile(f).entries().len())
            .sum();
        let mut entries: Vec<ProfileEntry> = Vec::with_capacity(total);
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        offsets.push(0);
        for (i, &f) in stages.iter().enumerate() {
            let all = profiles.profile(f).entries();
            if i == 0 {
                let start = entries.len();
                entries.extend(
                    all.iter()
                        .filter(|e| e.config.batch <= first_stage_max_batch),
                );
                if entries.len() == start {
                    // Grid without a small-enough batch: keep the smallest
                    // batch available; the dispatcher clamps it to the live
                    // queue length anyway.
                    let min_batch = all
                        .iter()
                        .map(|e| e.config.batch)
                        .min()
                        .expect("non-empty profile");
                    entries.extend(all.iter().filter(|e| e.config.batch == min_batch));
                }
            } else {
                entries.extend_from_slice(all);
            }
            offsets.push(entries.len() as u32);
        }
        debug_assert!(offsets.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(
            (0..n).all(|s| {
                entries[offsets[s] as usize..offsets[s + 1] as usize]
                    .windows(2)
                    .all(|w| w[0].latency_ms <= w[1].latency_ms)
            }),
            "profiles must arrive sorted ascending by latency"
        );

        let mut min_lat_suffix = vec![0.0; n + 1];
        let mut min_cost_suffix = vec![0.0; n + 1];
        let mut fastest_cost_suffix = vec![0.0; n + 1];
        for s in (0..n).rev() {
            let stage = &entries[offsets[s] as usize..offsets[s + 1] as usize];
            let min_lat = stage.first().expect("non-empty").latency_ms;
            let min_cost = stage
                .iter()
                .map(|e| e.per_job_cost_cents)
                .fold(f64::INFINITY, f64::min);
            let fastest_cost = stage.first().expect("non-empty").per_job_cost_cents;
            min_lat_suffix[s] = min_lat_suffix[s + 1] + min_lat;
            min_cost_suffix[s] = min_cost_suffix[s + 1] + min_cost;
            fastest_cost_suffix[s] = fastest_cost_suffix[s + 1] + fastest_cost;
        }
        StageTable {
            entries,
            offsets,
            min_lat_suffix,
            min_cost_suffix,
            fastest_cost_suffix,
        }
    }

    /// Number of stages.
    #[inline]
    pub fn num_stages(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Entries of stage `s`, ascending latency.
    #[inline]
    pub fn entries(&self, s: usize) -> &[ProfileEntry] {
        &self.entries[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }

    /// `tLow`: `time_so_far` plus the minimal remaining latency from stage
    /// `next` on.
    #[inline]
    pub fn t_low(&self, time_so_far: f64, next: usize) -> f64 {
        time_so_far + self.min_lat_suffix[next]
    }

    /// `rscLow`: `cost_so_far` plus the minimal remaining cost.
    #[inline]
    pub fn rsc_low(&self, cost_so_far: f64, next: usize) -> f64 {
        cost_so_far + self.min_cost_suffix[next]
    }

    /// `rscFastest`: `cost_so_far` plus the cost of finishing fastest.
    #[inline]
    pub fn rsc_fastest(&self, cost_so_far: f64, next: usize) -> f64 {
        cost_so_far + self.fastest_cost_suffix[next]
    }

    /// The fastest full path (each stage at its minimum-latency config):
    /// the default when no path meets the target (`setDefaultPaths`).
    pub fn fastest_path(&self) -> (Vec<Config>, f64, f64) {
        let mut configs = Vec::with_capacity(self.num_stages());
        let mut time = 0.0;
        let mut cost = 0.0;
        for s in 0..self.num_stages() {
            let e = &self.entries(s)[0];
            configs.push(e.config);
            time += e.latency_ms;
            cost += e.per_job_cost_cents;
        }
        (configs, time, cost)
    }

    /// The quickest achievable total time — used to detect infeasible
    /// targets up front.
    #[inline]
    pub fn min_total_time(&self) -> f64 {
        self.min_lat_suffix[0]
    }
}

/// A bounded "K smallest values" list: the paper's `minRSC`, tracking the K
/// best `rscFastest` upper bounds; `kth()` is `best_full_paths_maxCost`.
#[derive(Clone, Debug)]
pub struct MinRsc {
    k: usize,
    values: Vec<f64>, // ascending, at most k
}

impl MinRsc {
    /// Creates an empty list of capacity `k >= 1`.
    pub fn new(k: usize) -> MinRsc {
        assert!(k >= 1, "K must be at least 1");
        MinRsc {
            k,
            values: Vec::with_capacity(k + 1),
        }
    }

    /// The K-th smallest value seen (the pruning threshold); infinite until
    /// K values arrive.
    #[inline]
    pub fn kth(&self) -> f64 {
        if self.values.len() < self.k {
            f64::INFINITY
        } else {
            self.values[self.k - 1]
        }
    }

    /// Inserts a value, keeping the K smallest.
    pub fn insert(&mut self, v: f64) {
        let pos = self.values.partition_point(|&x| x <= v);
        if pos >= self.k {
            return;
        }
        self.values.insert(pos, v);
        self.values.truncate(self.k);
    }

    /// Inserts a value unless an (approximately) equal one is present.
    ///
    /// The A* variant accumulates `rscFastest` upper bounds across stages,
    /// where several prefixes of the *same* completion insert the same
    /// value; counting them as distinct paths would inflate the K-th-best
    /// threshold and over-prune. Suppressing near-equal values is safe in
    /// both directions: duplicate same-path bounds are counted once, and
    /// genuinely tied distinct paths merely loosen the blade.
    pub fn insert_distinct(&mut self, v: f64) {
        let near = |x: f64| (x - v).abs() <= 1e-9 * x.abs().max(1.0);
        if self.values.iter().any(|&x| near(x)) {
            return;
        }
        self.insert(v);
    }

    /// Clears the list (Algorithm 1 resets `minRSC` per stage).
    pub fn reset(&mut self) {
        self.values.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{standard_catalog, ConfigGrid, PriceModel};

    fn table(stages: &[FnId], cap: u32) -> StageTable {
        let profiles = ProfileTable::build(
            &standard_catalog(),
            &ConfigGrid::default(),
            &PriceModel::default(),
        );
        StageTable::build(stages, &profiles, cap)
    }

    #[test]
    fn suffix_sums_monotone() {
        let t = table(&[FnId(0), FnId(1), FnId(3)], 8);
        assert_eq!(t.num_stages(), 3);
        assert!(t.t_low(0.0, 0) > t.t_low(0.0, 1));
        assert!(t.t_low(0.0, 2) > 0.0);
        assert_eq!(t.t_low(5.0, 3), 5.0);
        assert!(t.rsc_low(0.0, 0) > t.rsc_low(0.0, 1));
        assert!(t.rsc_fastest(0.0, 0) >= t.rsc_low(0.0, 0));
    }

    #[test]
    fn batch_cap_restricts_first_stage_only() {
        let capped = table(&[FnId(0), FnId(1)], 1);
        assert!(capped.entries(0).iter().all(|e| e.config.batch == 1));
        assert!(capped.entries(1).iter().any(|e| e.config.batch > 1));
        let free = table(&[FnId(0), FnId(1)], 8);
        assert!(free.entries(0).len() > capped.entries(0).len());
    }

    #[test]
    fn fastest_path_is_min_time() {
        let t = table(&[FnId(0), FnId(2)], 8);
        let (configs, time, cost) = t.fastest_path();
        assert_eq!(configs.len(), 2);
        assert!((time - t.min_total_time()).abs() < 1e-9);
        assert!(cost > 0.0);
        // Fastest path cost equals the rscFastest bound of the empty path.
        assert!((cost - t.rsc_fastest(0.0, 0)).abs() < 1e-12);
    }

    #[test]
    fn entries_sorted_ascending_latency() {
        let t = table(&[FnId(4)], 4);
        for w in t.entries(0).windows(2) {
            assert!(w[0].latency_ms <= w[1].latency_ms);
        }
    }

    #[test]
    fn min_rsc_tracks_k_smallest() {
        let mut m = MinRsc::new(3);
        assert_eq!(m.kth(), f64::INFINITY);
        m.insert(5.0);
        m.insert(1.0);
        assert_eq!(m.kth(), f64::INFINITY); // only 2 values
        m.insert(3.0);
        assert_eq!(m.kth(), 5.0);
        m.insert(2.0);
        assert_eq!(m.kth(), 3.0);
        m.insert(10.0); // ignored, too large
        assert_eq!(m.kth(), 3.0);
        m.reset();
        assert_eq!(m.kth(), f64::INFINITY);
    }

    #[test]
    fn min_rsc_k1_tracks_best() {
        let mut m = MinRsc::new(1);
        m.insert(4.0);
        assert_eq!(m.kth(), 4.0);
        m.insert(2.0);
        assert_eq!(m.kth(), 2.0);
        m.insert(3.0);
        assert_eq!(m.kth(), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stage_list_panics() {
        let _ = table(&[], 1);
    }
}
