//! Property tests: dual-blade pruning never sacrifices optimality.
//!
//! Random function specs, grids, batch caps and targets; both ESG_1Q
//! variants must agree with exhaustive search on feasibility and on the
//! cost of every returned rank.

use esg_core::{astar_search, brute_force, stagewise_search, StageTable};
use esg_model::{Catalog, ConfigGrid, FnId, FunctionSpec, PriceModel};
use esg_profile::ProfileTable;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = FunctionSpec> {
    (
        10.0f64..1500.0, // exec_ms
        0.05f64..0.45,   // cpu_fraction
        0.1f64..0.9,     // batch_alpha
        0.1f64..0.9,     // cpu_serial_fraction
        0.0f64..8.0,     // vgpu_overhead_ms
    )
        .prop_map(|(exec, cpu_frac, alpha, serial, vg)| FunctionSpec {
            name: "prop",
            model: "prop",
            exec_ms: exec,
            cold_start_ms: exec * 10.0,
            input_mb: 1.0,
            cpu_fraction: cpu_frac,
            batch_alpha: alpha,
            cpu_serial_fraction: serial,
            vgpu_overhead_ms: vg,
        })
}

fn arb_grid() -> impl Strategy<Value = ConfigGrid> {
    (
        proptest::sample::subsequence(vec![1u32, 2, 4, 8], 1..4),
        proptest::sample::subsequence(vec![1u32, 2, 3, 4], 1..4),
        proptest::sample::subsequence(vec![1u32, 2, 3], 1..3),
    )
        .prop_map(|(b, c, g)| {
            ConfigGrid::new(
                if b.is_empty() { vec![1] } else { b },
                if c.is_empty() { vec![1] } else { c },
                if g.is_empty() { vec![1] } else { g },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn searches_match_brute_force(
        specs in proptest::collection::vec(arb_spec(), 1..4),
        grid in arb_grid(),
        cap in 1u32..9,
        slack_factor in 0.5f64..4.0,
        k in 1usize..6,
    ) {
        let mut catalog = Catalog::new();
        let stages: Vec<FnId> = specs.iter().map(|s| catalog.add(s.clone())).collect();
        let profiles = ProfileTable::build(&catalog, &grid, &PriceModel::default());
        let table = StageTable::build(&stages, &profiles, cap);
        let gslo = table.min_total_time() * slack_factor;

        let oracle = brute_force(&table, gslo, k);
        let sw = stagewise_search(&table, gslo, k);
        let astar = astar_search(&table, gslo, k);

        prop_assert_eq!(oracle.feasible, sw.feasible);
        prop_assert_eq!(oracle.feasible, astar.feasible);
        if oracle.feasible {
            // Rank-1 optimality is exact for both variants.
            prop_assert!((sw.paths[0].cost_cents - oracle.paths[0].cost_cents).abs() < 1e-9,
                "stagewise rank-1: {} vs {}", sw.paths[0].cost_cents, oracle.paths[0].cost_cents);
            prop_assert!((astar.paths[0].cost_cents - oracle.paths[0].cost_cents).abs() < 1e-9,
                "astar rank-1: {} vs {}", astar.paths[0].cost_cents, oracle.paths[0].cost_cents);
            // Every returned path is feasible and within the oracle's range.
            for p in sw.paths.iter().chain(&astar.paths) {
                prop_assert!(p.time_ms <= gslo + 1e-9);
                prop_assert!(p.cost_cents + 1e-9 >= oracle.paths[0].cost_cents);
            }
            // Pruned searches never expand more than brute force.
            prop_assert!(sw.expansions <= oracle.expansions);
            prop_assert!(astar.expansions <= oracle.expansions);
        } else {
            // Fallback path is the fastest one in all three.
            prop_assert_eq!(&sw.paths[0].configs, &oracle.paths[0].configs);
            prop_assert_eq!(&astar.paths[0].configs, &oracle.paths[0].configs);
        }
    }

    #[test]
    fn batch_cap_always_respected(
        specs in proptest::collection::vec(arb_spec(), 1..4),
        cap in 1u32..9,
    ) {
        let mut catalog = Catalog::new();
        let stages: Vec<FnId> = specs.iter().map(|s| catalog.add(s.clone())).collect();
        let grid = ConfigGrid::new(vec![1, 2, 4, 8], vec![1, 2], vec![1, 2]);
        let profiles = ProfileTable::build(&catalog, &grid, &PriceModel::default());
        let table = StageTable::build(&stages, &profiles, cap);
        let r = astar_search(&table, table.min_total_time() * 2.0, 5);
        for p in &r.paths {
            prop_assert!(p.configs[0].batch <= cap);
        }
    }
}
