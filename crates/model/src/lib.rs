//! Domain model for the ESG reproduction.
//!
//! This crate holds the vocabulary types shared by every other crate in the
//! workspace: identifiers, the three-dimensional serverless configuration
//! `(batch size, #vCPUs, #vGPUs)` introduced by the paper (§3.2), the cluster
//! resource vector, the pricing model (§4.1), the Table-3 function catalog,
//! the four evaluated applications, the SLO/workload scenario definitions,
//! the heterogeneous-cluster vocabulary ([`NodeClass`], [`ClusterSpec`],
//! [`ChurnPlan`], [`TrafficShape`]), and small deterministic statistics
//! helpers (Box–Muller Gaussian sampling, summary statistics) used
//! throughout the emulation.
//!
//! Everything here is plain data with no scheduling or simulation logic, so
//! that the algorithm crates (`esg-core`, `esg-baselines`) and the substrate
//! crates (`esg-profile`, `esg-sim`, `esg-workload`) can share it without
//! dependency cycles.

#![warn(missing_docs)]

pub mod apps;
pub mod catalog;
pub mod cluster;
pub mod config;
pub mod ids;
pub mod price;
pub mod resources;
pub mod scenario;
pub mod stats;
pub mod time;

pub use apps::{standard_app_ids, standard_apps, AppSpec};
pub use catalog::{standard_catalog, Catalog, FunctionSpec};
pub use cluster::{ChurnEvent, ChurnPlan, ClusterSpec, GpuFlavor, NodeClass, ServerTopology};
pub use config::{Config, ConfigGrid};
pub use ids::{AppId, FnId, InvocationId, JobId, NodeId};
pub use price::PriceModel;
pub use resources::Resources;
pub use scenario::{Scenario, SloClass, TrafficShape, WorkloadClass};
pub use stats::{percentile, BoxStats, Ewma, Gaussian, Summary};
pub use time::SimTime;
