//! Heterogeneous-cluster vocabulary: node classes, cluster specs, and
//! cluster-churn plans.
//!
//! The paper's testbed is 16 identical invokers (Table 2: 16 vCPUs and an
//! A100 split into 7 MIG vGPUs per node), but Appendix A notes the
//! algorithms tolerate heterogeneous hardware. These types describe such
//! clusters declaratively: a [`NodeClass`] names a GPU flavor, its vGPU
//! slice count, vCPU count, a latency scale factor, and per-flavor
//! pricing; a [`ClusterSpec`] is an ordered multiset of classes; a
//! [`ChurnPlan`] scripts node drains and joins at simulated times.
//!
//! Everything here is plain data — `esg-sim` turns a spec into live nodes
//! and applies churn events inside its event loop.

use crate::ids::NodeId;
use crate::resources::Resources;

/// A GPU flavor a node class can carry.
///
/// Flavors matter only through the scale factors on the owning
/// [`NodeClass`]; the enum exists so reports and axes can name hardware
/// the way the related work does (HAS-GPU's mixed fine-grained GPUs,
/// FaSTube's topology-sensitive transfer paths).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GpuFlavor {
    /// NVIDIA A100 with MIG partitioning — the paper's Table-2 hardware.
    A100,
    /// NVIDIA V100: no MIG; vGPUs model MPS time slices.
    V100,
    /// NVIDIA T4: small inference card, coarse slices.
    T4,
}

impl std::fmt::Display for GpuFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GpuFlavor::A100 => "a100",
            GpuFlavor::V100 => "v100",
            GpuFlavor::T4 => "t4",
        };
        f.write_str(s)
    }
}

/// One class of invoker node in a (possibly heterogeneous) cluster.
#[derive(Clone, PartialEq, Debug)]
pub struct NodeClass {
    /// Display name (axis labels, reports).
    pub name: String,
    /// GPU flavor backing the vGPU slices.
    pub gpu: GpuFlavor,
    /// vGPU slices per node (7 MIG partitions on the paper's A100s).
    pub vgpu_slices: u32,
    /// vCPUs per node.
    pub vcpus: u32,
    /// Execution-latency scale factor relative to the Table-2 A100
    /// baseline: profiles are measured on the baseline, so a task on this
    /// class runs `speed ×` the profiled latency (1.0 = baseline, larger
    /// is slower).
    pub speed: f64,
    /// Scale factor on *remote* transfer latency for hand-offs touching
    /// this node (per-class topology: a T4 box on a slower link pays more
    /// per MB than an A100 box on the fast fabric).
    pub link_scale: f64,
    /// Per-flavor price multiplier on the §4.1 resource prices.
    pub price_scale: f64,
    /// PCIe ingress bandwidth, GB/s (tensors arriving from remote nodes
    /// or the gateway; 1 GB/s ≡ 1 MB/ms). Only the contended data plane
    /// (`esg-sim`'s `dataplane`) reads it; the scalar transfer model
    /// ignores it.
    pub pcie_in_gbps: f64,
    /// PCIe egress bandwidth, GB/s (tensors leaving for remote consumers).
    pub pcie_out_gbps: f64,
    /// Intra-server NVLink-class bandwidth, GB/s (same-node stage
    /// hand-offs between co-located containers).
    pub nvlink_gbps: f64,
    /// Host-memory staging buffer for in-flight inter-stage tensors, MB.
    /// Transfers that cannot reserve staging queue (FIFO) until space
    /// frees; they are never dropped.
    pub staging_mb: f64,
}

impl NodeClass {
    /// The paper's Table-2 node: 16 vCPUs, an A100 in 7 MIG slices,
    /// baseline speed, fabric link, baseline pricing.
    pub fn a100() -> NodeClass {
        NodeClass {
            name: "a100".into(),
            gpu: GpuFlavor::A100,
            vgpu_slices: 7,
            vcpus: 16,
            speed: 1.0,
            link_scale: 1.0,
            price_scale: 1.0,
            pcie_in_gbps: 25.0,
            pcie_out_gbps: 25.0,
            nvlink_gbps: 300.0,
            staging_mb: 32_768.0,
        }
    }

    /// A V100 node: same vCPU count, 4 coarser vGPU slices, ~40% slower
    /// per profiled latency, cheaper per slice.
    pub fn v100() -> NodeClass {
        NodeClass {
            name: "v100".into(),
            gpu: GpuFlavor::V100,
            vgpu_slices: 4,
            vcpus: 16,
            speed: 1.4,
            link_scale: 1.0,
            price_scale: 0.7,
            pcie_in_gbps: 12.0,
            pcie_out_gbps: 12.0,
            nvlink_gbps: 150.0,
            staging_mb: 16_384.0,
        }
    }

    /// A T4 node: 8 vCPUs, 2 big slices, ~2.2× the baseline latency, on a
    /// slower link, at a fraction of the price.
    pub fn t4() -> NodeClass {
        NodeClass {
            name: "t4".into(),
            gpu: GpuFlavor::T4,
            vgpu_slices: 2,
            vcpus: 8,
            speed: 2.2,
            link_scale: 1.25,
            price_scale: 0.35,
            pcie_in_gbps: 8.0,
            pcie_out_gbps: 8.0,
            nvlink_gbps: 32.0,
            staging_mb: 8_192.0,
        }
    }

    /// A custom class over explicit capacities at baseline scale factors
    /// (the shape `Cluster::heterogeneous` historically accepted).
    pub fn custom(resources: Resources) -> NodeClass {
        NodeClass {
            name: format!("custom-{resources}"),
            gpu: GpuFlavor::A100,
            vgpu_slices: resources.vgpus,
            vcpus: resources.vcpus,
            speed: 1.0,
            link_scale: 1.0,
            price_scale: 1.0,
            pcie_in_gbps: 25.0,
            pcie_out_gbps: 25.0,
            nvlink_gbps: 300.0,
            staging_mb: 32_768.0,
        }
    }

    /// Renames the class (distinct axis labels for tweaked variants).
    pub fn named(mut self, name: impl Into<String>) -> NodeClass {
        self.name = name.into();
        self
    }

    /// Overrides the latency scale factor.
    pub fn with_speed(mut self, speed: f64) -> NodeClass {
        assert!(speed > 0.0, "speed factor must be positive");
        self.speed = speed;
        self
    }

    /// Overrides the remote-link scale factor.
    pub fn with_link_scale(mut self, link_scale: f64) -> NodeClass {
        assert!(link_scale > 0.0, "link scale must be positive");
        self.link_scale = link_scale;
        self
    }

    /// Overrides the data-plane bandwidths (PCIe in/out and NVLink-class
    /// intra-server), GB/s.
    pub fn with_bandwidth(mut self, pcie_in: f64, pcie_out: f64, nvlink: f64) -> NodeClass {
        assert!(
            pcie_in > 0.0 && pcie_out > 0.0 && nvlink > 0.0,
            "bandwidths must be positive"
        );
        self.pcie_in_gbps = pcie_in;
        self.pcie_out_gbps = pcie_out;
        self.nvlink_gbps = nvlink;
        self
    }

    /// Overrides the host-memory staging buffer, MB.
    pub fn with_staging_mb(mut self, staging_mb: f64) -> NodeClass {
        assert!(staging_mb > 0.0, "staging buffer must be positive");
        self.staging_mb = staging_mb;
        self
    }

    /// The class's per-node resource vector.
    #[inline]
    pub fn resources(&self) -> Resources {
        Resources::new(self.vcpus, self.vgpu_slices)
    }
}

impl std::fmt::Display for NodeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.name, self.resources())
    }
}

/// The server/rack level of a cluster: consecutive nodes group into
/// physical servers that share a top-of-rack uplink.
///
/// The per-node PCIe/NVLink bandwidths on [`NodeClass`] describe
/// *endpoint* links; `ServerTopology` adds the level above them —
/// `NodeId(i)` lives in server `i / gpus_per_server`, intra-server
/// hand-offs ride the endpoint pools alone, and cross-server hand-offs
/// additionally share the server pair's ToR pools (`tor_gbps` each).
/// The contended data plane (`esg-sim`'s `dataplane`) is the only
/// consumer; without it the topology is inert placement vocabulary for
/// server-aware schedulers.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ServerTopology {
    /// GPUs (nodes) per server; consecutive `NodeId`s group together.
    /// Must be ≥ 1 — `SimBuilder` rejects 0 as an `InvalidKnob`.
    pub gpus_per_server: usize,
    /// Shared top-of-rack uplink bandwidth per server, GB/s
    /// (1 GB/s ≡ 1 MB/ms). Every cross-server flow touching the server —
    /// in either direction — shares this pool fairly.
    pub tor_gbps: f64,
}

impl ServerTopology {
    /// A topology of `gpus_per_server` nodes per server behind a
    /// `tor_gbps` top-of-rack uplink.
    pub fn new(gpus_per_server: usize, tor_gbps: f64) -> ServerTopology {
        ServerTopology {
            gpus_per_server,
            tor_gbps,
        }
    }

    /// The server index hosting `node` (id-order grouping). Callers must
    /// have validated `gpus_per_server > 0`.
    #[inline]
    pub fn server_of(&self, node: usize) -> usize {
        node / self.gpus_per_server.max(1)
    }

    /// Number of servers covering `nodes` nodes (last server may be
    /// partial).
    pub fn num_servers(&self, nodes: usize) -> usize {
        nodes.div_ceil(self.gpus_per_server.max(1))
    }
}

/// A declarative cluster: a name plus one [`NodeClass`] per node, in
/// [`NodeId`] order.
#[derive(Clone, PartialEq, Debug)]
pub struct ClusterSpec {
    /// Display name (sweep-axis labels, reports).
    pub name: String,
    /// One class per node; `NodeId(i)` gets `nodes[i]`.
    pub nodes: Vec<NodeClass>,
    /// Optional server/rack grouping. `None` (the default everywhere) is
    /// the flat pre-topology cluster: no ToR pools, no server locality.
    pub topology: Option<ServerTopology>,
}

impl ClusterSpec {
    /// An empty spec to be filled with [`with`](Self::with).
    pub fn new(name: impl Into<String>) -> ClusterSpec {
        ClusterSpec {
            name: name.into(),
            nodes: Vec::new(),
            topology: None,
        }
    }

    /// Appends `count` nodes of `class`.
    pub fn with(mut self, class: NodeClass, count: usize) -> ClusterSpec {
        self.nodes.extend(std::iter::repeat_n(class, count));
        self
    }

    /// The paper's homogeneous testbed: 16 × [`NodeClass::a100`].
    pub fn paper() -> ClusterSpec {
        ClusterSpec::new("paper-16xa100").with(NodeClass::a100(), 16)
    }

    /// A mixed-MIG cluster: 8 A100s, 4 V100s, 4 T4s — same node count as
    /// the paper, heterogeneous capacity and speed (HAS-GPU's setting).
    pub fn mixed_mig() -> ClusterSpec {
        ClusterSpec::new("mixed-mig")
            .with(NodeClass::a100(), 8)
            .with(NodeClass::v100(), 4)
            .with(NodeClass::t4(), 4)
    }

    /// A skewed cluster: 4 fast A100s carry most capacity, 12 slow T4s on
    /// slower links pad it out — the placement-hostile case FaaSTube's
    /// topology argument targets.
    pub fn skewed() -> ClusterSpec {
        ClusterSpec::new("skewed")
            .with(NodeClass::a100(), 4)
            .with(NodeClass::t4(), 12)
    }

    /// A homogeneous spec of `count` nodes at explicit capacities.
    pub fn homogeneous(count: usize, per_node: Resources) -> ClusterSpec {
        ClusterSpec::new(format!("{count}x{per_node}")).with(NodeClass::custom(per_node), count)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the spec has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total cluster capacity.
    pub fn total_resources(&self) -> Resources {
        self.nodes
            .iter()
            .fold(Resources::ZERO, |acc, c| acc + c.resources())
    }

    /// Groups the nodes into servers of `gpus_per_server` behind a
    /// `tor_gbps` top-of-rack uplink each (appends "/srvN" to the name so
    /// sweep axes distinguish topology variants of the same node mix).
    pub fn with_topology(mut self, gpus_per_server: usize, tor_gbps: f64) -> ClusterSpec {
        self.name = format!("{}/srv{gpus_per_server}", self.name);
        self.topology = Some(ServerTopology::new(gpus_per_server, tor_gbps));
        self
    }

    /// The server hosting `node`, when a topology is set.
    pub fn server_of(&self, node: usize) -> Option<usize> {
        self.topology.map(|t| t.server_of(node))
    }

    /// Number of servers under the spec's topology (0 without one).
    pub fn num_servers(&self) -> usize {
        self.topology.map_or(0, |t| t.num_servers(self.nodes.len()))
    }
}

/// One scripted cluster-membership change.
#[derive(Clone, PartialEq, Debug)]
pub enum ChurnEvent {
    /// Node `node` stops accepting new placements at `at_ms`; tasks
    /// already admitted run to completion.
    Drain {
        /// Simulated time of the drain, ms.
        at_ms: f64,
        /// The node to drain.
        node: NodeId,
    },
    /// A new node of `class` joins the cluster at `at_ms` (cold: no warm
    /// containers).
    Join {
        /// Simulated time of the join, ms.
        at_ms: f64,
        /// The class of the joining node.
        class: NodeClass,
    },
}

impl ChurnEvent {
    /// The event's simulated time, ms.
    pub fn at_ms(&self) -> f64 {
        match self {
            ChurnEvent::Drain { at_ms, .. } | ChurnEvent::Join { at_ms, .. } => *at_ms,
        }
    }
}

/// A scripted sequence of cluster-membership changes for one run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ChurnPlan {
    /// The events, in any order (the simulator's event queue orders them
    /// by time).
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// The empty plan: a static cluster.
    pub fn none() -> ChurnPlan {
        ChurnPlan::default()
    }

    /// True when no churn is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends a drain of `node` at `at_ms`.
    pub fn drain(mut self, at_ms: f64, node: NodeId) -> ChurnPlan {
        self.events.push(ChurnEvent::Drain { at_ms, node });
        self
    }

    /// Appends a join of a `class` node at `at_ms`.
    pub fn join(mut self, at_ms: f64, class: NodeClass) -> ChurnPlan {
        self.events.push(ChurnEvent::Join { at_ms, class });
        self
    }

    /// A rolling-restart-style plan: drain one node and join a same-class
    /// replacement `gap_ms` later, starting at `start_ms`.
    pub fn rolling_replace(
        start_ms: f64,
        gap_ms: f64,
        node: NodeId,
        class: NodeClass,
    ) -> ChurnPlan {
        ChurnPlan::none()
            .drain(start_ms, node)
            .join(start_ms + gap_ms, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_table2() {
        let s = ClusterSpec::paper();
        assert_eq!(s.len(), 16);
        assert!(s
            .nodes
            .iter()
            .all(|c| c.resources() == Resources::new(16, 7)));
        assert!(s
            .nodes
            .iter()
            .all(|c| c.speed == 1.0 && c.price_scale == 1.0));
        assert_eq!(s.total_resources(), Resources::new(256, 112));
    }

    #[test]
    fn presets_are_heterogeneous() {
        let m = ClusterSpec::mixed_mig();
        assert_eq!(m.len(), 16);
        let distinct: std::collections::HashSet<&str> =
            m.nodes.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(distinct.len(), 3);
        let s = ClusterSpec::skewed();
        assert_eq!(s.len(), 16);
        assert!(s.nodes[4].speed > s.nodes[0].speed);
        assert!(s.nodes[4].link_scale > s.nodes[0].link_scale);
    }

    #[test]
    fn class_builders() {
        let fast_t4 = NodeClass::t4().with_speed(1.5).named("t4-oc");
        assert_eq!(fast_t4.name, "t4-oc");
        assert_eq!(fast_t4.speed, 1.5);
        assert_eq!(
            NodeClass::custom(Resources::new(8, 4)).resources(),
            Resources::new(8, 4)
        );
        assert_eq!(NodeClass::a100().to_string(), "a100(16c/7g)");
    }

    #[test]
    fn bandwidth_builders_and_flavor_defaults() {
        // Flavors order the same way on every bandwidth axis as on speed.
        let (a, v, t) = (NodeClass::a100(), NodeClass::v100(), NodeClass::t4());
        assert!(a.pcie_in_gbps > v.pcie_in_gbps && v.pcie_in_gbps > t.pcie_in_gbps);
        assert!(a.nvlink_gbps > v.nvlink_gbps && v.nvlink_gbps > t.nvlink_gbps);
        assert!(a.staging_mb > v.staging_mb && v.staging_mb > t.staging_mb);
        let slow = NodeClass::a100()
            .with_bandwidth(2.0, 3.0, 40.0)
            .with_staging_mb(256.0);
        assert_eq!(slow.pcie_in_gbps, 2.0);
        assert_eq!(slow.pcie_out_gbps, 3.0);
        assert_eq!(slow.nvlink_gbps, 40.0);
        assert_eq!(slow.staging_mb, 256.0);
    }

    #[test]
    fn homogeneous_builder() {
        let s = ClusterSpec::homogeneous(4, Resources::new(8, 2));
        assert_eq!(s.len(), 4);
        assert_eq!(s.total_resources(), Resources::new(32, 8));
    }

    #[test]
    fn server_topology_groups_consecutive_nodes() {
        let flat = ClusterSpec::paper();
        assert!(flat.topology.is_none());
        assert_eq!(flat.num_servers(), 0);
        assert_eq!(flat.server_of(3), None);

        let s = ClusterSpec::paper().with_topology(4, 10.0);
        assert_eq!(s.name, "paper-16xa100/srv4");
        assert_eq!(s.num_servers(), 4);
        assert_eq!(s.server_of(0), Some(0));
        assert_eq!(s.server_of(3), Some(0));
        assert_eq!(s.server_of(4), Some(1));
        assert_eq!(s.server_of(15), Some(3));

        // A partial trailing server still counts.
        let odd = ClusterSpec::new("odd")
            .with(NodeClass::t4(), 5)
            .with_topology(2, 10.0);
        assert_eq!(odd.num_servers(), 3);
        assert_eq!(odd.server_of(4), Some(2));
    }

    #[test]
    fn churn_plan_builders() {
        let p = ChurnPlan::none()
            .drain(1000.0, NodeId(3))
            .join(2000.0, NodeClass::t4());
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.events[0].at_ms(), 1000.0);
        assert!(matches!(p.events[1], ChurnEvent::Join { .. }));
        let r = ChurnPlan::rolling_replace(500.0, 250.0, NodeId(0), NodeClass::a100());
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.events[1].at_ms(), 750.0);
        assert!(ChurnPlan::none().is_empty());
    }
}
