//! Pricing model (paper §4.1).
//!
//! "Following AWS EC2 pricing, we set the price of a vCPU to 0.034$/hour.
//! Based on the pricing of an entire GPU on AWS, we divide it by # of vGPUs
//! and set the price of a vGPU to 0.67$/hour."
//!
//! Costs are tracked in **cents** to match the paper's figure annotations
//! (Fig. 3 reports per-job costs in ¢).

use crate::config::Config;

/// Per-unit-time prices for the two resource kinds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PriceModel {
    /// Price of one vCPU, in cents per second.
    pub vcpu_cents_per_sec: f64,
    /// Price of one vGPU (MIG slice), in cents per second.
    pub vgpu_cents_per_sec: f64,
}

impl Default for PriceModel {
    /// The paper's evaluation prices: vCPU $0.034/h, vGPU $0.67/h.
    fn default() -> Self {
        PriceModel::from_hourly_dollars(0.034, 0.67)
    }
}

impl PriceModel {
    /// Builds a price model from $/hour rates.
    pub fn from_hourly_dollars(vcpu: f64, vgpu: f64) -> Self {
        const CENTS_PER_DOLLAR: f64 = 100.0;
        const SECS_PER_HOUR: f64 = 3600.0;
        PriceModel {
            vcpu_cents_per_sec: vcpu * CENTS_PER_DOLLAR / SECS_PER_HOUR,
            vgpu_cents_per_sec: vgpu * CENTS_PER_DOLLAR / SECS_PER_HOUR,
        }
    }

    /// The illustrative unit costs of the paper's Fig. 3 example
    /// (1 vCPU: 0.04¢/s, 1 vGPU: 0.8¢/s); used by the quickstart example so
    /// its arithmetic matches the figure.
    pub fn figure3_example() -> Self {
        PriceModel {
            vcpu_cents_per_sec: 0.04,
            vgpu_cents_per_sec: 0.8,
        }
    }

    /// Cost in cents of holding `config`'s resources for `duration_ms`.
    #[inline]
    pub fn task_cost_cents(&self, config: Config, duration_ms: f64) -> f64 {
        let per_sec = config.vcpus as f64 * self.vcpu_cents_per_sec
            + config.vgpus as f64 * self.vgpu_cents_per_sec;
        per_sec * duration_ms / 1000.0
    }

    /// Cost in cents attributed to each job of a batched task
    /// (Fig. 3: `(0.04*4+0.8)*0.9/2 = 0.43¢` for batch 2).
    #[inline]
    pub fn per_job_cost_cents(&self, config: Config, duration_ms: f64) -> f64 {
        self.task_cost_cents(config, duration_ms) / config.batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_arithmetic_reproduces_paper() {
        // Red path, function 1.1: batch 2, 4 vCPUs, 1 vGPU, 0.9 s
        // -> (0.04*4 + 0.8) * 0.9 / 2 = 0.432 ¢ (the paper rounds to 0.43¢).
        let p = PriceModel::figure3_example();
        let cost = p.per_job_cost_cents(Config::new(2, 4, 1), 900.0);
        assert!((cost - 0.432).abs() < 1e-9, "got {cost}");
    }

    #[test]
    fn default_prices_match_section_4_1() {
        let p = PriceModel::default();
        // $0.034/h = 3.4 ¢ / 3600 s
        assert!((p.vcpu_cents_per_sec - 3.4 / 3600.0).abs() < 1e-12);
        assert!((p.vgpu_cents_per_sec - 67.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn task_cost_scales_linearly_with_duration_and_resources() {
        let p = PriceModel::default();
        let c1 = p.task_cost_cents(Config::new(1, 1, 1), 1000.0);
        let c2 = p.task_cost_cents(Config::new(1, 2, 2), 1000.0);
        let c3 = p.task_cost_cents(Config::new(1, 1, 1), 2000.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-12);
        assert!((c3 - 2.0 * c1).abs() < 1e-12);
    }

    #[test]
    fn per_job_cost_divides_by_batch() {
        let p = PriceModel::default();
        let task = p.task_cost_cents(Config::new(4, 2, 2), 500.0);
        let per_job = p.per_job_cost_cents(Config::new(4, 2, 2), 500.0);
        assert!((task / 4.0 - per_job).abs() < 1e-12);
    }

    #[test]
    fn gpu_dominates_cpu_cost() {
        // A vGPU is ~20x a vCPU per §4.1; the speed-cost tension (§3.3)
        // depends on this ordering.
        let p = PriceModel::default();
        assert!(p.vgpu_cents_per_sec > 10.0 * p.vcpu_cents_per_sec);
    }
}
