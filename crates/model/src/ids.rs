//! Strongly-typed identifiers.
//!
//! The simulator and schedulers pass many small integer handles around
//! (functions, applications, jobs, nodes). Newtypes prevent mixing them up
//! and keep hot structs small (see the type-size guidance in the Rust
//! performance literature: indices as `u32`, coerced to `usize` at use).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw index value as `usize` for slice indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a serverless function (an entry in the [`crate::Catalog`]).
    FnId,
    u32
);

id_type!(
    /// Identifier of an application (a DAG of serverless functions).
    AppId,
    u32
);

id_type!(
    /// Identifier of a single job: one request flowing through one stage of an
    /// application instance. The paper calls "the inference of one request a
    /// job" (§3.2).
    JobId,
    u64
);

id_type!(
    /// Identifier of one end-to-end application invocation (a workflow
    /// instance). Each invocation spawns one job per pipeline stage.
    InvocationId,
    u64
);

id_type!(
    /// Identifier of an invoker (worker) node in the cluster.
    NodeId,
    u32
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just exercise the API.
        let f = FnId(3);
        let a = AppId(3);
        assert_eq!(f.index(), 3);
        assert_eq!(a.index(), 3);
        assert_eq!(format!("{f:?}"), "FnId(3)");
        assert_eq!(format!("{a}"), "3");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(FnId(1));
        set.insert(FnId(1));
        set.insert(FnId(2));
        assert_eq!(set.len(), 2);
        assert!(FnId(1) < FnId(2));
    }

    #[test]
    fn from_raw() {
        let n: NodeId = 7u32.into();
        assert_eq!(n, NodeId(7));
        let j: JobId = 9u64.into();
        assert_eq!(j.index(), 9);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(FnId::default(), FnId(0));
        assert_eq!(InvocationId::default().0, 0);
    }
}
