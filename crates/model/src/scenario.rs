//! SLO and workload scenario definitions (paper §4.1).
//!
//! The evaluation pairs three SLO strictness levels with three arrival
//! intensities: **strict-light**, **moderate-normal**, **relaxed-heavy**.
//! `L` is the end-to-end time of an application run alone at the minimum
//! configuration; an SLO hit means completing within `factor × L`.

/// SLO strictness (§4.1): deadline factor applied to the base latency `L`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SloClass {
    /// SLO hit when completing within `0.8 × L`.
    Strict,
    /// SLO hit when completing within `1.0 × L`.
    Moderate,
    /// SLO hit when completing within `1.2 × L`.
    Relaxed,
}

impl SloClass {
    /// The deadline multiplier on the base latency `L`.
    #[inline]
    pub fn factor(self) -> f64 {
        match self {
            SloClass::Strict => 0.8,
            SloClass::Moderate => 1.0,
            SloClass::Relaxed => 1.2,
        }
    }

    /// All three classes, paper order.
    pub fn all() -> [SloClass; 3] {
        [SloClass::Strict, SloClass::Moderate, SloClass::Relaxed]
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SloClass::Strict => "strict",
            SloClass::Moderate => "moderate",
            SloClass::Relaxed => "relaxed",
        };
        f.write_str(s)
    }
}

/// Arrival intensity (§4.1): job arrival intervals are drawn uniformly from
/// a class-specific range derived from the Azure traces (Fig. 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkloadClass {
    /// Arrival interval in [10, 16.8] ms.
    Heavy,
    /// Arrival interval in [20, 33.6] ms.
    Normal,
    /// Arrival interval in [40, 67.2] ms.
    Light,
}

impl WorkloadClass {
    /// The `[lo, hi]` arrival-interval range in milliseconds (Fig. 5).
    #[inline]
    pub fn interval_range_ms(self) -> (f64, f64) {
        match self {
            WorkloadClass::Heavy => (10.0, 16.8),
            WorkloadClass::Normal => (20.0, 33.6),
            WorkloadClass::Light => (40.0, 67.2),
        }
    }

    /// All three classes, paper order.
    pub fn all() -> [WorkloadClass; 3] {
        [
            WorkloadClass::Heavy,
            WorkloadClass::Normal,
            WorkloadClass::Light,
        ]
    }
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkloadClass::Heavy => "heavy",
            WorkloadClass::Normal => "normal",
            WorkloadClass::Light => "light",
        };
        f.write_str(s)
    }
}

/// The temporal shape of a workload's arrival process.
///
/// The paper evaluates steady uniform-interval arrivals only (§4.1); the
/// other shapes modulate the same class-determined mean rate the way real
/// serverless traffic does (Azure Functions traces, Shahrad et al.
/// ATC '20): episodic bursts, a diurnal cycle, and a synthetic
/// Azure-trace replay combining both. Generators live in `esg-workload`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TrafficShape {
    /// Uniform intervals from the class range — the paper's §4.1 shape.
    #[default]
    Steady,
    /// Episodic bursts: short windows at a multiple of the class rate,
    /// quiet stretches in between, same long-run mean.
    Bursty,
    /// A sinusoidal (diurnal) rate cycle around the class mean.
    Diurnal,
    /// Synthetic Azure-trace replay: diurnal cycle + random bursts +
    /// lognormal-ish dispersion (the `AzureLikeTrace` generator).
    AzureReplay,
}

impl TrafficShape {
    /// All four shapes, steady first.
    pub fn all() -> [TrafficShape; 4] {
        [
            TrafficShape::Steady,
            TrafficShape::Bursty,
            TrafficShape::Diurnal,
            TrafficShape::AzureReplay,
        ]
    }
}

impl std::fmt::Display for TrafficShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrafficShape::Steady => "steady",
            TrafficShape::Bursty => "bursty",
            TrafficShape::Diurnal => "diurnal",
            TrafficShape::AzureReplay => "azure",
        };
        f.write_str(s)
    }
}

/// A paired evaluation scenario (§4.1): "strict for the light case, moderate
/// for the normal case, and relaxed for the heavy case".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Scenario {
    /// SLO strictness.
    pub slo: SloClass,
    /// Arrival intensity.
    pub workload: WorkloadClass,
}

impl Scenario {
    /// strict-light.
    pub const STRICT_LIGHT: Scenario = Scenario {
        slo: SloClass::Strict,
        workload: WorkloadClass::Light,
    };
    /// moderate-normal.
    pub const MODERATE_NORMAL: Scenario = Scenario {
        slo: SloClass::Moderate,
        workload: WorkloadClass::Normal,
    };
    /// relaxed-heavy.
    pub const RELAXED_HEAVY: Scenario = Scenario {
        slo: SloClass::Relaxed,
        workload: WorkloadClass::Heavy,
    };

    /// The three scenarios of the evaluation, paper order
    /// (Fig. 6 a, b, c).
    pub fn all() -> [Scenario; 3] {
        [
            Scenario::STRICT_LIGHT,
            Scenario::MODERATE_NORMAL,
            Scenario::RELAXED_HEAVY,
        ]
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}", self.slo, self.workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_factors() {
        assert_eq!(SloClass::Strict.factor(), 0.8);
        assert_eq!(SloClass::Moderate.factor(), 1.0);
        assert_eq!(SloClass::Relaxed.factor(), 1.2);
    }

    #[test]
    fn interval_ranges_match_fig5() {
        assert_eq!(WorkloadClass::Heavy.interval_range_ms(), (10.0, 16.8));
        assert_eq!(WorkloadClass::Normal.interval_range_ms(), (20.0, 33.6));
        assert_eq!(WorkloadClass::Light.interval_range_ms(), (40.0, 67.2));
    }

    #[test]
    fn ranges_double_each_class() {
        // The paper's normal range is exactly 2x heavy, light is 2x normal.
        let (h_lo, h_hi) = WorkloadClass::Heavy.interval_range_ms();
        let (n_lo, n_hi) = WorkloadClass::Normal.interval_range_ms();
        let (l_lo, l_hi) = WorkloadClass::Light.interval_range_ms();
        assert_eq!((n_lo, n_hi), (2.0 * h_lo, 2.0 * h_hi));
        assert_eq!((l_lo, l_hi), (2.0 * n_lo, 2.0 * n_hi));
    }

    #[test]
    fn traffic_shape_display_and_default() {
        assert_eq!(TrafficShape::default(), TrafficShape::Steady);
        let labels: Vec<String> = TrafficShape::all().iter().map(|t| t.to_string()).collect();
        assert_eq!(labels, vec!["steady", "bursty", "diurnal", "azure"]);
    }

    #[test]
    fn scenario_display() {
        assert_eq!(Scenario::STRICT_LIGHT.to_string(), "strict-light");
        assert_eq!(Scenario::MODERATE_NORMAL.to_string(), "moderate-normal");
        assert_eq!(Scenario::RELAXED_HEAVY.to_string(), "relaxed-heavy");
    }

    #[test]
    fn all_scenarios_are_paper_pairings() {
        let all = Scenario::all();
        assert_eq!(all[0].slo, SloClass::Strict);
        assert_eq!(all[0].workload, WorkloadClass::Light);
        assert_eq!(all[2].slo, SloClass::Relaxed);
        assert_eq!(all[2].workload, WorkloadClass::Heavy);
    }
}
