//! Simulation time.
//!
//! The discrete-event simulator keeps time as integer **microseconds** so
//! event ordering is exact and runs are bit-reproducible; the modelling
//! layers (profiles, workloads, metrics) speak floating-point milliseconds.
//! This module is the single conversion point.

use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from fractional milliseconds (rounded to the nearest
    /// microsecond; negative inputs clamp to zero).
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        SimTime((ms.max(0.0) * 1000.0).round() as u64)
    }

    /// Builds a time from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from whole seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        SimTime::from_ms(s * 1000.0)
    }

    /// The time as fractional milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The time as fractional seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier` (zero when `earlier > self`).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_ms(12.345);
        assert_eq!(t.0, 12_345);
        assert!((t.as_ms() - 12.345).abs() < 1e-9);
        assert_eq!(SimTime::from_secs(1.5).0, 1_500_000);
        assert!((SimTime::from_us(2_000_000).as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_ms_clamps() {
        assert_eq!(SimTime::from_ms(-5.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_and_order() {
        let a = SimTime::from_ms(10.0);
        let b = SimTime::from_ms(4.0);
        assert_eq!(a + b, SimTime::from_ms(14.0));
        assert_eq!(a - b, SimTime::from_ms(6.0));
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b), SimTime::from_ms(6.0));
        assert!(b < a);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ms(1.5).to_string(), "1.500ms");
    }
}
