//! The two-dimensional resource vector (vCPUs, vGPUs).
//!
//! The paper's resource model (§3.2) deliberately does *not* tie vGPUs to
//! vCPUs: "there is no clear correlation between the amount of CPU usage and
//! the amount of GPU usage in applications". Memory rides along with each
//! unit (vCPU ↔ host memory slice, vGPU ↔ MIG memory slice), so a pair of
//! counters is the whole allocation state.

use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A quantity of allocatable resources: CPU units and GPU (MIG) units.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Resources {
    /// CPU resource units.
    pub vcpus: u32,
    /// GPU resource units (one unit = one MIG partition).
    pub vgpus: u32,
}

impl Resources {
    /// The zero resource vector.
    pub const ZERO: Resources = Resources { vcpus: 0, vgpus: 0 };

    /// Creates a resource vector.
    #[inline]
    pub const fn new(vcpus: u32, vgpus: u32) -> Self {
        Resources { vcpus, vgpus }
    }

    /// Component-wise `self >= other`: true when `other` fits inside `self`.
    #[inline]
    pub fn contains(self, other: Resources) -> bool {
        self.vcpus >= other.vcpus && self.vgpus >= other.vgpus
    }

    /// Component-wise saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Resources) -> Resources {
        Resources {
            vcpus: self.vcpus.saturating_sub(other.vcpus),
            vgpus: self.vgpus.saturating_sub(other.vgpus),
        }
    }

    /// Checked subtraction: `None` if `other` does not fit.
    #[inline]
    pub fn checked_sub(self, other: Resources) -> Option<Resources> {
        if self.contains(other) {
            Some(Resources {
                vcpus: self.vcpus - other.vcpus,
                vgpus: self.vgpus - other.vgpus,
            })
        } else {
            None
        }
    }

    /// A scalar "size" used by fragmentation-minimizing placement policies:
    /// the weighted sum of the two components.
    #[inline]
    pub fn weighted(self, cpu_weight: f64, gpu_weight: f64) -> f64 {
        cpu_weight * self.vcpus as f64 + gpu_weight * self.vgpus as f64
    }

    /// True when both components are zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.vcpus == 0 && self.vgpus == 0
    }
}

impl Add for Resources {
    type Output = Resources;
    #[inline]
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            vcpus: self.vcpus + rhs.vcpus,
            vgpus: self.vgpus + rhs.vgpus,
        }
    }
}

impl AddAssign for Resources {
    #[inline]
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    /// Panics in debug builds on underflow — resource accounting bugs should
    /// fail loudly in the simulator.
    #[inline]
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            vcpus: self.vcpus - rhs.vcpus,
            vgpus: self.vgpus - rhs.vgpus,
        }
    }
}

impl SubAssign for Resources {
    #[inline]
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl std::fmt::Display for Resources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}c/{}g", self.vcpus, self.vgpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_checked_sub() {
        let cap = Resources::new(16, 7);
        let use1 = Resources::new(4, 2);
        assert!(cap.contains(use1));
        assert_eq!(cap.checked_sub(use1), Some(Resources::new(12, 5)));
        assert_eq!(cap.checked_sub(Resources::new(17, 0)), None);
        assert_eq!(cap.checked_sub(Resources::new(0, 8)), None);
    }

    #[test]
    fn arithmetic() {
        let mut r = Resources::new(1, 1);
        r += Resources::new(2, 3);
        assert_eq!(r, Resources::new(3, 4));
        r -= Resources::new(1, 1);
        assert_eq!(r, Resources::new(2, 3));
        assert_eq!(
            Resources::new(1, 1).saturating_sub(Resources::new(5, 0)),
            Resources::new(0, 1)
        );
    }

    #[test]
    fn weighted_size() {
        let r = Resources::new(4, 2);
        assert!((r.weighted(1.0, 10.0) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn zero() {
        assert!(Resources::ZERO.is_zero());
        assert!(!Resources::new(0, 1).is_zero());
        assert_eq!(Resources::default(), Resources::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Resources::new(16, 7).to_string(), "16c/7g");
    }
}
