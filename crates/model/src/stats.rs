//! Deterministic statistics helpers.
//!
//! * [`Gaussian`] — Box–Muller normal sampling on top of any `rand::Rng`
//!   (the approved dependency list contains `rand` but not `rand_distr`,
//!   so the transform is implemented here; ~20 lines, well tested).
//! * [`Ewma`] — the exponentially weighted moving average the pre-warming
//!   proxy uses to predict invocation intervals (paper §4).
//! * [`Summary`] / [`BoxStats`] / [`percentile`] — descriptive statistics
//!   for the metrics and figure harnesses (Fig. 10 is a box plot).

use rand::Rng;

/// A normal distribution sampled via the Box–Muller transform.
///
/// Keeps the spare variate so consecutive calls consume uniform draws in
/// pairs; sampling is deterministic given a seeded `Rng`.
#[derive(Clone, Debug)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
    spare: Option<f64>,
}

impl Gaussian {
    /// Creates a normal distribution with the given mean and standard
    /// deviation (`std_dev >= 0`).
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        Gaussian {
            mean,
            std_dev,
            spare: None,
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        let z = if let Some(s) = self.spare.take() {
            s
        } else {
            // Box–Muller: two uniforms in (0,1] -> two independent N(0,1).
            let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
            let u2: f64 = rng.random::<f64>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            r * theta.cos()
        };
        self.mean + self.std_dev * z
    }

    /// Draws one sample truncated to `mean ± k·std_dev` (resampling-free
    /// clamping — adequate for noise modelling and keeps determinism simple).
    pub fn sample_clamped<R: Rng + ?Sized>(&mut self, rng: &mut R, k: f64) -> f64 {
        let lo = self.mean - k * self.std_dev;
        let hi = self.mean + k * self.std_dev;
        self.sample(rng).clamp(lo, hi)
    }
}

/// Exponentially weighted moving average, used by the pre-warming proxy to
/// predict the next invocation interval of a function (paper §4).
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha ∈ (0, 1]`. Larger alpha
    /// weighs recent observations more.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Feeds an observation and returns the updated average.
    pub fn update(&mut self, obs: f64) -> f64 {
        let v = match self.value {
            None => obs,
            Some(prev) => self.alpha * obs + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// The current prediction, if any observation has been seen.
    #[inline]
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Returns the `p`-th percentile (0 ≤ p ≤ 100) of `values` using linear
/// interpolation between closest ranks. Returns `None` on empty input.
/// The input order is not assumed; a sorted copy is made.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    Some(percentile_sorted(&sorted, p))
}

/// [`percentile`] on an already-sorted slice (no allocation).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Five-number summary plus mean, for box plots (Fig. 10/11 harnesses).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxStats {
    /// Minimum observation.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
    /// Arithmetic mean (Fig. 10 marks it with a green triangle).
    pub mean: f64,
}

impl BoxStats {
    /// Computes box statistics; `None` on empty input.
    pub fn from(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(BoxStats {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            max: *sorted.last().expect("non-empty"),
            mean,
        })
    }
}

/// Streaming summary statistics (count, mean, min, max, variance via
/// Welford's algorithm) — used by the simulator's metric counters where
/// storing every sample would be wasteful.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or 0.0 when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator), or 0.0 with < 2 observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another summary into this one (parallel sweeps).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = Gaussian::new(5.0, 2.0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 5.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gaussian_zero_stddev_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Gaussian::new(3.0, 0.0);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 3.0);
        }
    }

    #[test]
    fn gaussian_clamped_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = Gaussian::new(1.0, 0.1);
        for _ in 0..10_000 {
            let x = g.sample_clamped(&mut rng, 3.0);
            assert!((1.0 - 0.3 - 1e-12..=1.0 + 0.3 + 1e-12).contains(&x));
        }
    }

    #[test]
    fn gaussian_deterministic_under_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut g = Gaussian::new(0.0, 1.0);
            (0..16).map(|_| g.sample(&mut rng)).collect::<Vec<f64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ewma_constant_series_converges_immediately() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        for _ in 0..5 {
            e.update(10.0);
        }
        assert!((e.value().expect("seen obs") - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_tracks_shift() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        for _ in 0..20 {
            e.update(100.0);
        }
        assert!(e.value().expect("seen obs") > 99.9);
    }

    #[test]
    fn ewma_stays_within_observed_range() {
        let mut e = Ewma::new(0.3);
        let obs = [5.0, 9.0, 7.0, 6.0, 8.0];
        for &o in &obs {
            let v = e.update(o);
            assert!((5.0..=9.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn percentile_basics() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 95.0), Some(7.0));
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = vec![3.0, 1.0, 2.0];
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(percentile(&a, 75.0), percentile(&b, 75.0));
    }

    #[test]
    fn box_stats() {
        let v: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let b = BoxStats::from(&v).expect("non-empty");
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 101.0);
        assert_eq!(b.median, 51.0);
        assert_eq!(b.q1, 26.0);
        assert_eq!(b.q3, 76.0);
        assert_eq!(b.mean, 51.0);
        assert_eq!(BoxStats::from(&[]), None);
    }

    #[test]
    fn summary_welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &data {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // naive sample variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn summary_merge_equals_single_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..400] {
            left.add(x);
        }
        for &x in &data[400..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.add(1.0);
        let b = Summary::new();
        let mut a2 = a;
        a2.merge(&b);
        assert_eq!(a2.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }
}
