//! The serverless function catalog (paper Table 3).
//!
//! Each entry records the measured numbers the paper reports — execution
//! time at the minimum configuration `(1,1,1)`, cold start time, and input
//! image size — plus the scaling parameters our analytic latency model
//! (`esg-profile`) needs to extrapolate to other configurations. The scaling
//! parameters are modelling choices documented in DESIGN.md §1
//! ("Substitutions"); they control the speed–cost tension that the ESG
//! search navigates, not its correctness.

use crate::ids::FnId;

/// Static description of one serverless DNN inference function.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionSpec {
    /// Human-readable function name (Table 3 "Function name").
    pub name: &'static str,
    /// The DNN behind the function (Table 3 "Model").
    pub model: &'static str,
    /// Execution time in ms at the minimum configuration (1 vCPU, 1 vGPU,
    /// batch = 1) — Table 3 "Execution Time (ms)".
    pub exec_ms: f64,
    /// Container cold-start time in ms — Table 3 "Cold start time (ms)".
    pub cold_start_ms: f64,
    /// Input image size in MB — Table 3 "Input image size (MB)"; drives the
    /// data-transfer model.
    pub input_mb: f64,
    /// Fraction of `exec_ms` spent on the CPU (pre/post-processing);
    /// the remainder is GPU kernel time.
    pub cpu_fraction: f64,
    /// Marginal GPU cost of each extra item in a per-vGPU micro-batch,
    /// relative to the first item (sub-linear batching: 0 = free batching,
    /// 1 = no batching benefit).
    pub batch_alpha: f64,
    /// Serial fraction of the CPU part (Amdahl): extra vCPUs only
    /// accelerate the parallel remainder.
    pub cpu_serial_fraction: f64,
    /// Fixed overhead in ms per *additional* vGPU used (multi-kernel launch
    /// and result gather).
    pub vgpu_overhead_ms: f64,
}

/// The set of functions available to applications, indexed by [`FnId`].
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    functions: Vec<FunctionSpec>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a function and returns its id.
    pub fn add(&mut self, spec: FunctionSpec) -> FnId {
        let id = FnId(self.functions.len() as u32);
        self.functions.push(spec);
        id
    }

    /// Looks up a function spec.
    #[inline]
    pub fn get(&self, id: FnId) -> &FunctionSpec {
        &self.functions[id.index()]
    }

    /// Number of functions in the catalog.
    #[inline]
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when the catalog has no functions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Iterates over `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FnId, &FunctionSpec)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, s)| (FnId(i as u32), s))
    }

    /// Finds a function by name (linear scan; catalogs are tiny).
    pub fn find(&self, name: &str) -> Option<FnId> {
        self.functions
            .iter()
            .position(|s| s.name == name)
            .map(|i| FnId(i as u32))
    }
}

/// Well-known indices of the six Table-3 functions inside
/// [`standard_catalog`], in the order the paper lists them.
pub mod functions {
    use crate::ids::FnId;

    /// SRGAN super resolution.
    pub const SUPER_RESOLUTION: FnId = FnId(0);
    /// deeplabv3_resnet50 segmentation.
    pub const SEGMENTATION: FnId = FnId(1);
    /// DeblurGAN deblur.
    pub const DEBLUR: FnId = FnId(2);
    /// ResNet50 classification.
    pub const CLASSIFICATION: FnId = FnId(3);
    /// U^2-Net background removal.
    pub const BACKGROUND_REMOVAL: FnId = FnId(4);
    /// MiDaS depth recognition.
    pub const DEPTH_RECOGNITION: FnId = FnId(5);
}

/// Builds the paper's Table-3 catalog.
///
/// Measured columns are verbatim from Table 3. The scaling parameters are
/// chosen per function family: generative models (SRGAN, DeblurGAN, U²-Net)
/// carry more CPU-side image handling; the classifiers are GPU-bound with
/// strong batching benefit.
pub fn standard_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add(FunctionSpec {
        name: "super_resolution",
        model: "SRGAN",
        exec_ms: 86.0,
        cold_start_ms: 3503.0,
        input_mb: 2.7,
        cpu_fraction: 0.40,
        batch_alpha: 0.45,
        cpu_serial_fraction: 0.15,
        vgpu_overhead_ms: 3.0,
    });
    c.add(FunctionSpec {
        name: "segmentation",
        model: "deeplabv3_resnet50",
        exec_ms: 293.0,
        cold_start_ms: 16510.0,
        input_mb: 2.5,
        cpu_fraction: 0.35,
        batch_alpha: 0.35,
        cpu_serial_fraction: 0.15,
        vgpu_overhead_ms: 4.0,
    });
    c.add(FunctionSpec {
        name: "deblur",
        model: "DeblurGAN",
        exec_ms: 319.0,
        cold_start_ms: 22343.0,
        input_mb: 1.1,
        cpu_fraction: 0.40,
        batch_alpha: 0.45,
        cpu_serial_fraction: 0.15,
        vgpu_overhead_ms: 3.0,
    });
    c.add(FunctionSpec {
        name: "classification",
        model: "ResNet50",
        exec_ms: 147.0,
        cold_start_ms: 18299.0,
        input_mb: 0.147,
        cpu_fraction: 0.30,
        batch_alpha: 0.25,
        cpu_serial_fraction: 0.10,
        vgpu_overhead_ms: 2.0,
    });
    c.add(FunctionSpec {
        name: "background_removal",
        model: "U2Net",
        exec_ms: 1047.0,
        cold_start_ms: 3729.0,
        input_mb: 2.5,
        cpu_fraction: 0.40,
        batch_alpha: 0.40,
        cpu_serial_fraction: 0.15,
        vgpu_overhead_ms: 5.0,
    });
    c.add(FunctionSpec {
        name: "depth_recognition",
        model: "MiDaS",
        exec_ms: 828.0,
        cold_start_ms: 16479.0,
        input_mb: 0.648,
        cpu_fraction: 0.35,
        batch_alpha: 0.35,
        cpu_serial_fraction: 0.15,
        vgpu_overhead_ms: 4.0,
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let c = standard_catalog();
        assert_eq!(c.len(), 6);
        let sr = c.get(functions::SUPER_RESOLUTION);
        assert_eq!(sr.exec_ms, 86.0);
        assert_eq!(sr.cold_start_ms, 3503.0);
        assert_eq!(sr.input_mb, 2.7);
        assert_eq!(sr.model, "SRGAN");
        let bg = c.get(functions::BACKGROUND_REMOVAL);
        assert_eq!(bg.exec_ms, 1047.0);
        assert_eq!(bg.model, "U2Net");
        let dp = c.get(functions::DEPTH_RECOGNITION);
        assert_eq!(dp.cold_start_ms, 16479.0);
        assert_eq!(dp.input_mb, 0.648);
    }

    #[test]
    fn find_by_name() {
        let c = standard_catalog();
        assert_eq!(c.find("deblur"), Some(functions::DEBLUR));
        assert_eq!(c.find("classification"), Some(functions::CLASSIFICATION));
        assert_eq!(c.find("nope"), None);
    }

    #[test]
    fn scaling_parameters_are_sane() {
        for (_, f) in standard_catalog().iter() {
            assert!(f.cpu_fraction > 0.0 && f.cpu_fraction < 0.5);
            assert!(f.batch_alpha > 0.0 && f.batch_alpha < 1.0);
            assert!(f.cpu_serial_fraction > 0.0 && f.cpu_serial_fraction < 1.0);
            assert!(f.vgpu_overhead_ms >= 0.0);
            assert!(f.cold_start_ms > f.exec_ms);
        }
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let c = standard_catalog();
        let ids: Vec<u32> = c.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn custom_catalog() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let id = c.add(FunctionSpec {
            name: "toy",
            model: "toy",
            exec_ms: 10.0,
            cold_start_ms: 100.0,
            input_mb: 1.0,
            cpu_fraction: 0.2,
            batch_alpha: 0.4,
            cpu_serial_fraction: 0.3,
            vgpu_overhead_ms: 1.0,
        });
        assert_eq!(id, FnId(0));
        assert_eq!(c.get(id).name, "toy");
    }
}
