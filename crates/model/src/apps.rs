//! Application (workflow) definitions.
//!
//! An application is a DAG of serverless functions with an end-to-end SLO
//! (paper §1, §4.1). The four evaluated applications are linear pipelines;
//! the model nevertheless stores a general DAG so that the dominator-based
//! SLO distribution (paper §3.3, Fig. 4) and the simulator can handle splits
//! and joins, which the custom-pipeline example exercises.

use crate::catalog::functions as f;
use crate::ids::{AppId, FnId};

/// Static description of one application: a DAG whose nodes are serverless
/// functions. Node indices are local to the app (0..nodes.len()).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppSpec {
    /// Human-readable application name.
    pub name: &'static str,
    /// The function run by each DAG node. The same function may appear in
    /// several apps (each gets its own AFW queue, §3.1) or several nodes.
    pub nodes: Vec<FnId>,
    /// Directed edges `(from, to)` between node indices.
    pub edges: Vec<(usize, usize)>,
}

impl AppSpec {
    /// Builds a linear pipeline `fns[0] → fns[1] → …`.
    pub fn pipeline(name: &'static str, fns: Vec<FnId>) -> Self {
        assert!(!fns.is_empty(), "pipeline needs at least one stage");
        let edges = (0..fns.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        AppSpec {
            name,
            nodes: fns,
            edges,
        }
    }

    /// Builds a general DAG application. Edges must reference valid node
    /// indices; acyclicity is validated by `esg-dag` when the DAG is built.
    pub fn dag(name: &'static str, nodes: Vec<FnId>, edges: Vec<(usize, usize)>) -> Self {
        assert!(!nodes.is_empty(), "app needs at least one node");
        for &(a, b) in &edges {
            assert!(
                a < nodes.len() && b < nodes.len(),
                "edge ({a},{b}) out of range for {} nodes",
                nodes.len()
            );
            assert!(a != b, "self-loop at node {a}");
        }
        AppSpec { name, nodes, edges }
    }

    /// Number of stages (DAG nodes).
    #[inline]
    pub fn num_stages(&self) -> usize {
        self.nodes.len()
    }

    /// True when the app is a simple chain (each node except the last has
    /// exactly one successor, each except the first exactly one predecessor).
    pub fn is_linear(&self) -> bool {
        if self.edges.len() != self.nodes.len().saturating_sub(1) {
            return false;
        }
        self.edges
            .iter()
            .enumerate()
            .all(|(i, &(a, b))| a == i && b == i + 1)
    }

    /// Predecessor node indices of `node`.
    pub fn preds(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(_, b)| b == node)
            .map(|&(a, _)| a)
            .collect()
    }

    /// Successor node indices of `node`.
    pub fn succs(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(a, _)| a == node)
            .map(|&(_, b)| b)
            .collect()
    }

    /// Node indices with no predecessors (the entry stages).
    pub fn entry_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&n| self.preds(n).is_empty())
            .collect()
    }

    /// Node indices with no successors (the exit stages).
    pub fn exit_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&n| self.succs(n).is_empty())
            .collect()
    }
}

/// Well-known indices of the four evaluated applications inside
/// [`standard_apps`], in the order of §4.1.
pub mod applications {
    use crate::ids::AppId;

    /// super-resolution → segmentation → classification.
    pub const IMAGE_CLASSIFICATION: AppId = AppId(0);
    /// deblur → super-resolution → depth recognition.
    pub const DEPTH_RECOGNITION: AppId = AppId(1);
    /// super-resolution → deblur → background removal.
    pub const BACKGROUND_ELIMINATION: AppId = AppId(2);
    /// deblur → super-res → background removal → segmentation → classification.
    pub const EXPANDED_IMAGE_CLASSIFICATION: AppId = AppId(3);
}

/// Builds the four applications of the paper's evaluation (§4.1), wired to
/// the [`crate::standard_catalog`] function ids.
pub fn standard_apps() -> Vec<AppSpec> {
    vec![
        AppSpec::pipeline(
            "image_classification",
            vec![f::SUPER_RESOLUTION, f::SEGMENTATION, f::CLASSIFICATION],
        ),
        AppSpec::pipeline(
            "depth_recognition",
            vec![f::DEBLUR, f::SUPER_RESOLUTION, f::DEPTH_RECOGNITION],
        ),
        AppSpec::pipeline(
            "background_elimination",
            vec![f::SUPER_RESOLUTION, f::DEBLUR, f::BACKGROUND_REMOVAL],
        ),
        AppSpec::pipeline(
            "expanded_image_classification",
            vec![
                f::DEBLUR,
                f::SUPER_RESOLUTION,
                f::BACKGROUND_REMOVAL,
                f::SEGMENTATION,
                f::CLASSIFICATION,
            ],
        ),
    ]
}

/// Convenience: the [`AppId`] for each position of [`standard_apps`].
pub fn standard_app_ids() -> Vec<AppId> {
    (0..standard_apps().len() as u32).map(AppId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_apps_match_section_4_1() {
        let apps = standard_apps();
        assert_eq!(apps.len(), 4);
        assert_eq!(apps[0].nodes.len(), 3);
        assert_eq!(apps[3].nodes.len(), 5);
        assert!(apps.iter().all(|a| a.is_linear()));
        assert_eq!(
            apps[1].nodes,
            vec![f::DEBLUR, f::SUPER_RESOLUTION, f::DEPTH_RECOGNITION]
        );
        assert_eq!(apps[3].nodes[0], f::DEBLUR);
        assert_eq!(apps[3].nodes[4], f::CLASSIFICATION);
    }

    #[test]
    fn pipeline_edges() {
        let p = AppSpec::pipeline("p", vec![FnId(0), FnId(1), FnId(2)]);
        assert_eq!(p.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(p.entry_nodes(), vec![0]);
        assert_eq!(p.exit_nodes(), vec![2]);
        assert_eq!(p.preds(1), vec![0]);
        assert_eq!(p.succs(1), vec![2]);
    }

    #[test]
    fn single_stage_pipeline() {
        let p = AppSpec::pipeline("one", vec![FnId(0)]);
        assert!(p.is_linear());
        assert_eq!(p.entry_nodes(), vec![0]);
        assert_eq!(p.exit_nodes(), vec![0]);
    }

    #[test]
    fn diamond_dag() {
        // 0 -> {1,2} -> 3
        let d = AppSpec::dag(
            "diamond",
            vec![FnId(0), FnId(1), FnId(2), FnId(3)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        );
        assert!(!d.is_linear());
        assert_eq!(d.entry_nodes(), vec![0]);
        assert_eq!(d.exit_nodes(), vec![3]);
        let mut preds3 = d.preds(3);
        preds3.sort_unstable();
        assert_eq!(preds3, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = AppSpec::dag("bad", vec![FnId(0)], vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = AppSpec::dag("bad", vec![FnId(0), FnId(1)], vec![(1, 1)]);
    }

    #[test]
    fn same_function_twice() {
        // A function may appear in multiple nodes of one app.
        let p = AppSpec::pipeline("pp", vec![FnId(0), FnId(0)]);
        assert_eq!(p.num_stages(), 2);
    }

    #[test]
    fn standard_app_ids_align() {
        assert_eq!(
            standard_app_ids(),
            vec![AppId(0), AppId(1), AppId(2), AppId(3)]
        );
        assert_eq!(applications::EXPANDED_IMAGE_CLASSIFICATION, AppId(3));
    }
}
