//! The serverless configuration triple and the configuration grid.
//!
//! With shareable GPUs the per-function configuration space becomes
//! three-dimensional: `(batch size, #vCPUs, #vGPUs)` (paper §1, challenge i).
//! A [`ConfigGrid`] enumerates the options available to one function; the
//! schedulers search over the cross product of grids along a pipeline.

use crate::resources::Resources;

/// One point in the three-dimensional configuration space of a function.
///
/// * `batch` — number of queued jobs grouped into one task (§3.2 task model);
/// * `vcpus` — CPU resource units assigned to the task's container;
/// * `vgpus` — GPU resource units (MIG partitions) assigned; the function
///   runs data-parallel kernels, one per vGPU, over the batch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Config {
    /// Batch size: jobs per task. Always ≥ 1.
    pub batch: u32,
    /// Number of vCPUs. Always ≥ 1.
    pub vcpus: u32,
    /// Number of vGPUs (MIG slices). Always ≥ 1 for the DNN functions studied.
    pub vgpus: u32,
}

impl Config {
    /// The minimum configuration `(1, 1, 1)` used to define the SLO base
    /// latency `L` (§4.1) and as the forced fallback after repeated recheck
    /// failures (§3.1).
    pub const MIN: Config = Config {
        batch: 1,
        vcpus: 1,
        vgpus: 1,
    };

    /// Creates a configuration, asserting all dimensions are non-zero.
    #[inline]
    pub fn new(batch: u32, vcpus: u32, vgpus: u32) -> Self {
        assert!(
            batch >= 1 && vcpus >= 1 && vgpus >= 1,
            "configuration dimensions must be >= 1, got ({batch},{vcpus},{vgpus})"
        );
        Config {
            batch,
            vcpus,
            vgpus,
        }
    }

    /// The node resources this configuration occupies while running.
    #[inline]
    pub fn resources(self) -> Resources {
        Resources {
            vcpus: self.vcpus,
            vgpus: self.vgpus,
        }
    }

    /// Returns a copy with the batch clamped to `max_batch` (used when a
    /// pre-planned batch exceeds the queue length — a "configuration miss",
    /// Table 4).
    #[inline]
    pub fn clamp_batch(self, max_batch: u32) -> Self {
        Config {
            batch: self.batch.min(max_batch.max(1)),
            ..self
        }
    }
}

impl std::fmt::Display for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(b={},c={},g={})", self.batch, self.vcpus, self.vgpus)
    }
}

/// The set of options along each configuration dimension for one function.
///
/// The default grid is `batch ∈ {1,2,4,8}`, `vcpus ∈ {1..=8}`,
/// `vgpus ∈ {1..=7}` — 224 configurations, matching the order of magnitude
/// ("256 configurations per function") of the paper's overhead study (§5.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigGrid {
    /// Batch-size options, ascending.
    pub batches: Vec<u32>,
    /// vCPU options, ascending.
    pub vcpus: Vec<u32>,
    /// vGPU options, ascending.
    pub vgpus: Vec<u32>,
}

impl Default for ConfigGrid {
    fn default() -> Self {
        ConfigGrid {
            batches: vec![1, 2, 4, 8],
            vcpus: (1..=8).collect(),
            vgpus: (1..=7).collect(),
        }
    }
}

impl ConfigGrid {
    /// A grid with exactly one option per dimension (the minimum config);
    /// useful for tests and for the no-batching ablation.
    pub fn minimal() -> Self {
        ConfigGrid {
            batches: vec![1],
            vcpus: vec![1],
            vgpus: vec![1],
        }
    }

    /// Builds a grid from explicit option lists. Options are sorted and
    /// deduplicated; each list must end up non-empty.
    pub fn new(mut batches: Vec<u32>, mut vcpus: Vec<u32>, mut vgpus: Vec<u32>) -> Self {
        for list in [&mut batches, &mut vcpus, &mut vgpus] {
            list.sort_unstable();
            list.dedup();
            assert!(!list.is_empty(), "config grid dimension must be non-empty");
            assert!(list[0] >= 1, "config grid options must be >= 1");
        }
        ConfigGrid {
            batches,
            vcpus,
            vgpus,
        }
    }

    /// A grid sized to hit approximately `n` total configurations by scaling
    /// the vCPU axis; used by the §5.3/§5.4 overhead sweeps.
    pub fn with_total_configs(n: usize) -> Self {
        let batches = vec![1, 2, 4, 8];
        let vgpus: Vec<u32> = (1..=7).collect();
        let per_cpu = (n / (batches.len() * vgpus.len())).max(1);
        let vcpus: Vec<u32> = (1..=per_cpu as u32).collect();
        ConfigGrid::new(batches, vcpus, vgpus)
    }

    /// Total number of configurations in the grid.
    #[inline]
    pub fn len(&self) -> usize {
        self.batches.len() * self.vcpus.len() * self.vgpus.len()
    }

    /// True when the grid is empty (cannot happen via the constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over every configuration in the grid (batch-major order).
    pub fn iter(&self) -> impl Iterator<Item = Config> + '_ {
        self.batches.iter().flat_map(move |&b| {
            self.vcpus
                .iter()
                .flat_map(move |&c| self.vgpus.iter().map(move |&g| Config::new(b, c, g)))
        })
    }

    /// The largest batch size in the grid.
    #[inline]
    pub fn max_batch(&self) -> u32 {
        *self.batches.last().expect("non-empty grid")
    }

    /// Restricts the grid to batch size 1 (the no-batching ablation, §5.5).
    pub fn without_batching(&self) -> Self {
        ConfigGrid {
            batches: vec![1],
            vcpus: self.vcpus.clone(),
            vgpus: self.vgpus.clone(),
        }
    }

    /// Restricts the grid to whole GPUs only (the no-GPU-sharing ablation,
    /// §5.5): the only vGPU option is the full complement per node.
    pub fn without_gpu_sharing(&self, vgpus_per_node: u32) -> Self {
        ConfigGrid {
            batches: self.batches.clone(),
            vcpus: self.vcpus.clone(),
            vgpus: vec![vgpus_per_node],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_size() {
        let g = ConfigGrid::default();
        assert_eq!(g.len(), 4 * 8 * 7);
        assert_eq!(g.iter().count(), g.len());
    }

    #[test]
    fn grid_iteration_is_sorted_batch_major() {
        let g = ConfigGrid::new(vec![1, 2], vec![1], vec![1, 2]);
        let all: Vec<Config> = g.iter().collect();
        assert_eq!(
            all,
            vec![
                Config::new(1, 1, 1),
                Config::new(1, 1, 2),
                Config::new(2, 1, 1),
                Config::new(2, 1, 2),
            ]
        );
    }

    #[test]
    fn grid_dedups_and_sorts() {
        let g = ConfigGrid::new(vec![4, 1, 4], vec![2, 1], vec![1]);
        assert_eq!(g.batches, vec![1, 4]);
        assert_eq!(g.vcpus, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dimension_panics() {
        let _ = ConfigGrid::new(vec![], vec![1], vec![1]);
    }

    #[test]
    fn clamp_batch() {
        let c = Config::new(8, 2, 2);
        assert_eq!(c.clamp_batch(3).batch, 3);
        assert_eq!(c.clamp_batch(16).batch, 8);
        // Clamping to zero still yields a valid config.
        assert_eq!(c.clamp_batch(0).batch, 1);
    }

    #[test]
    fn resources_of_config() {
        let r = Config::new(4, 3, 2).resources();
        assert_eq!(r.vcpus, 3);
        assert_eq!(r.vgpus, 2);
    }

    #[test]
    fn ablation_grids() {
        let g = ConfigGrid::default();
        assert_eq!(g.without_batching().batches, vec![1]);
        assert_eq!(g.without_gpu_sharing(7).vgpus, vec![7]);
        assert_eq!(g.without_batching().vcpus, g.vcpus);
    }

    #[test]
    fn with_total_configs_close_to_target() {
        let g = ConfigGrid::with_total_configs(256);
        // 4 batches * 7 vgpus = 28; 256/28 = 9 vcpus -> 252 configs.
        assert!(g.len() >= 224 && g.len() <= 280, "got {}", g.len());
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_config_panics() {
        let _ = Config::new(0, 1, 1);
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Config::new(2, 4, 1).to_string(), "(b=2,c=4,g=1)");
    }
}
