//! Synthetic Azure-like invocation trace.
//!
//! The paper derives per-minute job arrival rates from the Azure Functions
//! traces of Shahrad et al. (ATC '20). The raw traces are not
//! redistributable, so this module generates a rate series with the same
//! qualitative anatomy — a diurnal sinusoid, lognormal-ish dispersion, and
//! occasional bursts — and turns it into arrival timestamps. It feeds the
//! pre-warming study and the trace-replay example; the headline scenarios
//! use the distilled interval classes in [`crate::arrivals`] directly, as
//! the paper does.

use crate::arrivals::Workload;
use crate::stream::ArrivalStream;
use esg_model::{AppId, Gaussian};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator of Azure-like per-minute rates and arrival sequences.
#[derive(Clone, Debug)]
pub struct AzureLikeTrace {
    /// Mean arrivals per minute at the diurnal baseline.
    pub mean_per_minute: f64,
    /// Diurnal amplitude as a fraction of the mean (0..1).
    pub diurnal_amplitude: f64,
    /// Period of the diurnal cycle in minutes (1440 for a day; shorter for
    /// compressed experiments).
    pub period_minutes: f64,
    /// Probability that any minute is a burst minute.
    pub burst_probability: f64,
    /// Rate multiplier during a burst minute.
    pub burst_multiplier: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AzureLikeTrace {
    fn default() -> Self {
        AzureLikeTrace {
            mean_per_minute: 1200.0,
            diurnal_amplitude: 0.5,
            period_minutes: 60.0,
            burst_probability: 0.05,
            burst_multiplier: 3.0,
            seed: 0,
        }
    }
}

impl AzureLikeTrace {
    /// The rate for minute `m`, advancing the burst RNG and dispersion
    /// noise by exactly one minute's worth of draws. Shared by the eager
    /// [`rates`](Self::rates) table and the minute-lazy
    /// [`ArrivalStream::azure`] stream so both see identical series.
    pub(crate) fn rate_for_minute(&self, m: usize, rng: &mut StdRng, noise: &mut Gaussian) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * m as f64 / self.period_minutes;
        let diurnal = 1.0 + self.diurnal_amplitude * phase.sin();
        let burst = if rng.random::<f64>() < self.burst_probability {
            self.burst_multiplier
        } else {
            1.0
        };
        (self.mean_per_minute * diurnal * burst * noise.sample_clamped(rng, 3.0)).max(0.0)
    }

    /// Per-minute arrival rates for `minutes` consecutive minutes.
    pub fn rates(&self, minutes: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut noise = Gaussian::new(1.0, 0.15);
        (0..minutes)
            .map(|m| self.rate_for_minute(m, &mut rng, &mut noise))
            .collect()
    }

    /// The lazy arrival stream over this trace: `minutes: Some(n)` bounds
    /// it to `n` minutes of trace time, `None` streams forever (requires
    /// a positive mean rate).
    pub fn stream(&self, apps: Vec<AppId>, minutes: Option<usize>) -> ArrivalStream {
        ArrivalStream::azure(self.clone(), apps, minutes)
    }

    /// Generates arrivals over `minutes` of trace time, applications drawn
    /// uniformly from `apps`. Within each minute arrivals are spread with
    /// exponential gaps (Poisson process at that minute's rate). Drains
    /// the [`stream`](Self::stream), which already yields in time order.
    pub fn generate(&self, minutes: usize, apps: &[AppId]) -> Workload {
        Workload {
            arrivals: self.stream(apps.to_vec(), Some(minutes)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apps() -> Vec<AppId> {
        (0..4u32).map(AppId).collect()
    }

    #[test]
    fn rates_have_diurnal_shape() {
        let t = AzureLikeTrace {
            burst_probability: 0.0,
            seed: 9,
            ..AzureLikeTrace::default()
        };
        let rates = t.rates(60);
        // Peak quarter (around minute 15) should out-rate trough quarter
        // (around minute 45) for a 60-minute period sinusoid.
        let peak: f64 = rates[10..20].iter().sum();
        let trough: f64 = rates[40..50].iter().sum();
        assert!(peak > 1.5 * trough, "peak {peak} trough {trough}");
    }

    #[test]
    fn bursts_raise_rates() {
        let base = AzureLikeTrace {
            burst_probability: 0.0,
            seed: 4,
            ..AzureLikeTrace::default()
        };
        let bursty = AzureLikeTrace {
            burst_probability: 1.0,
            seed: 4,
            ..AzureLikeTrace::default()
        };
        let sum_base: f64 = base.rates(30).iter().sum();
        let sum_burst: f64 = bursty.rates(30).iter().sum();
        assert!(sum_burst > 2.0 * sum_base);
    }

    #[test]
    fn generate_produces_sorted_inrange_arrivals() {
        let t = AzureLikeTrace {
            mean_per_minute: 100.0,
            seed: 11,
            ..AzureLikeTrace::default()
        };
        let w = t.generate(5, &apps());
        assert!(!w.is_empty());
        assert!(w.span_ms() < 5.0 * 60_000.0);
        for pair in w.arrivals.windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
        // Roughly 5 minutes at ~100/min.
        assert!(w.len() > 250 && w.len() < 900, "{}", w.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let t = AzureLikeTrace::default();
        let a = t.generate(2, &apps());
        let b = t.generate(2, &apps());
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        assert_eq!(a.arrivals.first(), b.arrivals.first());
    }

    #[test]
    fn zero_rate_minutes_yield_no_arrivals() {
        let t = AzureLikeTrace {
            mean_per_minute: 0.0,
            burst_probability: 0.0,
            ..AzureLikeTrace::default()
        };
        let w = t.generate(3, &apps());
        assert!(w.is_empty());
    }
}
