//! Lazy, constant-memory arrival streams.
//!
//! [`ArrivalStream`] is the single code path behind every generator in
//! this crate: [`WorkloadGen::generate`](crate::arrivals::WorkloadGen::generate),
//! [`generate_for`](crate::arrivals::WorkloadGen::generate_for), the
//! [`shaped_workload`](crate::shapes::shaped_workload) family and the
//! Azure-like trace all materialise by draining a stream. A stream
//! yields time-ordered [`Arrival`]s one at a time — O(1) memory no
//! matter how many are drawn — and is bit-identical, for the same
//! seed, to the eager `Vec`-building generators it replaced: the RNG
//! draw sequence per emitted arrival is unchanged, laziness only
//! changes *when* the draws happen.
//!
//! The simulator's streaming replay mode
//! (`esg_sim::Simulation::from_stream`) pulls arrivals from an
//! `ArrivalStream` as simulated time advances, so million-invocation
//! replays never hold a workload vector in memory.

use crate::arrivals::{Arrival, Workload};
use crate::azure::AzureLikeTrace;
use crate::popularity::Popularity;
use crate::shapes::RateFn;
use esg_model::{AppId, Gaussian, TrafficShape, WorkloadClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-arrival application draw. `Uniform` keeps the historical
/// integer draw (`random_range(0..apps.len())`) so pre-knob streams stay
/// bit-identical; weighted popularity consumes exactly one `f64` draw
/// through a precomputed CDF.
struct AppPicker {
    apps: Vec<AppId>,
    /// `None` = uniform; `Some` = cumulative weights over `apps`.
    cdf: Option<Vec<f64>>,
}

impl AppPicker {
    fn new(apps: Vec<AppId>, popularity: Popularity) -> AppPicker {
        assert!(!apps.is_empty(), "need at least one application");
        let cdf = match popularity {
            Popularity::Uniform => None,
            pop => {
                let mut acc = 0.0;
                Some(
                    pop.weights(apps.len())
                        .into_iter()
                        .map(|w| {
                            acc += w;
                            acc
                        })
                        .collect(),
                )
            }
        };
        AppPicker { apps, cdf }
    }

    fn uniform(apps: Vec<AppId>) -> AppPicker {
        AppPicker::new(apps, Popularity::Uniform)
    }

    fn pick(&self, rng: &mut StdRng) -> AppId {
        match &self.cdf {
            None => self.apps[rng.random_range(0..self.apps.len())],
            Some(cdf) => {
                let u: f64 = rng.random::<f64>();
                let i = cdf.partition_point(|&c| c <= u);
                self.apps[i.min(self.apps.len() - 1)]
            }
        }
    }
}

/// A lazily evaluated, time-ordered arrival sequence.
///
/// Construct one with [`of_class`](ArrivalStream::of_class),
/// [`modulated`](ArrivalStream::modulated),
/// [`azure`](ArrivalStream::azure) or
/// [`shaped`](ArrivalStream::shaped), then drain it through the
/// [`Iterator`] impl or the [`take_workload`](ArrivalStream::take_workload)
/// / [`until_ms`](ArrivalStream::until_ms) materialisers. Class and
/// modulated streams are infinite; Azure streams are infinite unless a
/// minute bound is given.
pub struct ArrivalStream {
    inner: Inner,
}

enum Inner {
    Class(ClassStream),
    Modulated(ModulatedStream),
    Azure(AzureStream),
}

impl ArrivalStream {
    /// An infinite steady stream for `class`: uniform intervals from the
    /// class range, applications drawn uniformly from `apps` (paper
    /// §4.1). Identical draw-for-draw to `WorkloadGen`.
    pub fn of_class(class: WorkloadClass, apps: Vec<AppId>, seed: u64) -> ArrivalStream {
        assert!(!apps.is_empty(), "need at least one application");
        let (lo, hi) = class.interval_range_ms();
        ArrivalStream {
            inner: Inner::Class(ClassStream {
                rng: StdRng::seed_from_u64(seed),
                lo,
                hi,
                picker: AppPicker::uniform(apps),
                t: 0.0,
            }),
        }
    }

    /// An infinite rate-modulated stream: each uniform class interval is
    /// divided by `rate.multiplier(t)` (a multiplier on the class mean
    /// rate, floored at `1e-3`).
    pub fn modulated(
        class: WorkloadClass,
        apps: Vec<AppId>,
        seed: u64,
        rate: RateFn,
    ) -> ArrivalStream {
        assert!(!apps.is_empty(), "need at least one application");
        let (lo, hi) = class.interval_range_ms();
        ArrivalStream {
            inner: Inner::Modulated(ModulatedStream {
                rng: StdRng::seed_from_u64(seed),
                lo,
                hi,
                picker: AppPicker::uniform(apps),
                t: 0.0,
                rate,
            }),
        }
    }

    /// An Azure-like Poisson stream over per-minute rates from `trace`.
    ///
    /// With `minutes: Some(n)` the stream ends after minute `n` of trace
    /// time (matching `AzureLikeTrace::generate`); with `None` it is
    /// unbounded, computing each minute's rate lazily as simulated time
    /// reaches it. Unbounded streams require a positive mean rate so a
    /// next arrival always exists.
    pub fn azure(trace: AzureLikeTrace, apps: Vec<AppId>, minutes: Option<usize>) -> ArrivalStream {
        assert!(!apps.is_empty(), "need at least one application");
        assert!(
            minutes.is_some() || trace.mean_per_minute > 0.0,
            "an unbounded Azure stream needs a positive mean rate"
        );
        let rate_rng = StdRng::seed_from_u64(trace.seed);
        let arr_rng = StdRng::seed_from_u64(trace.seed.wrapping_add(1));
        ArrivalStream {
            inner: Inner::Azure(AzureStream {
                trace,
                picker: AppPicker::uniform(apps),
                rate_rng,
                noise: Gaussian::new(1.0, 0.15),
                arr_rng,
                next_minute: 0,
                limit_minutes: minutes,
                minute_end_ms: 0.0,
                mean_gap_ms: 0.0,
                t: 0.0,
                in_minute: false,
            }),
        }
    }

    /// An infinite stream for any [`TrafficShape`], keeping the class
    /// mean rate (see [`crate::shapes`]). This is the streaming twin of
    /// [`shaped_workload`](crate::shapes::shaped_workload).
    pub fn shaped(
        class: WorkloadClass,
        shape: TrafficShape,
        apps: &[AppId],
        seed: u64,
    ) -> ArrivalStream {
        crate::shapes::shaped_stream(class, shape, apps, seed)
    }

    /// Replaces the application draw distribution (default:
    /// [`Popularity::Uniform`], the paper's §4.1 draw). `Uniform` keeps
    /// the stream bit-identical to a stream built without this call;
    /// skewed popularity changes only the app picked per arrival — the
    /// arrival *times* are driven by separate draws and stay identical
    /// on class and modulated streams.
    pub fn with_popularity(mut self, popularity: Popularity) -> ArrivalStream {
        let picker = match &mut self.inner {
            Inner::Class(s) => &mut s.picker,
            Inner::Modulated(s) => &mut s.picker,
            Inner::Azure(s) => &mut s.picker,
        };
        *picker = AppPicker::new(std::mem::take(&mut picker.apps), popularity);
        self
    }

    /// Materialises the first `count` arrivals.
    pub fn take_workload(self, count: usize) -> Workload {
        let mut arrivals = Vec::with_capacity(count);
        arrivals.extend(self.take(count));
        Workload { arrivals }
    }

    /// Materialises every arrival with `at_ms <= duration_ms`.
    ///
    /// Stops at the first arrival past the window, so this terminates on
    /// infinite streams (every stream's arrival times grow without
    /// bound).
    pub fn until_ms(self, duration_ms: f64) -> Workload {
        let mut arrivals = Vec::new();
        for a in self {
            if a.at_ms > duration_ms {
                break;
            }
            arrivals.push(a);
        }
        Workload { arrivals }
    }
}

impl Iterator for ArrivalStream {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        match &mut self.inner {
            Inner::Class(s) => Some(s.next()),
            Inner::Modulated(s) => Some(s.next()),
            Inner::Azure(s) => s.next(),
        }
    }
}

impl std::fmt::Debug for ArrivalStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.inner {
            Inner::Class(_) => "class",
            Inner::Modulated(_) => "modulated",
            Inner::Azure(_) => "azure",
        };
        f.debug_struct("ArrivalStream")
            .field("kind", &kind)
            .finish()
    }
}

struct ClassStream {
    rng: StdRng,
    lo: f64,
    hi: f64,
    picker: AppPicker,
    t: f64,
}

impl ClassStream {
    fn next(&mut self) -> Arrival {
        let interval: f64 = self.rng.random_range(self.lo..=self.hi);
        self.t += interval;
        let app = self.picker.pick(&mut self.rng);
        Arrival { at_ms: self.t, app }
    }
}

struct ModulatedStream {
    rng: StdRng,
    lo: f64,
    hi: f64,
    picker: AppPicker,
    t: f64,
    rate: RateFn,
}

impl ModulatedStream {
    fn next(&mut self) -> Arrival {
        let base: f64 = self.rng.random_range(self.lo..=self.hi);
        let m = self.rate.multiplier(self.t).max(1e-3);
        self.t += base / m;
        let app = self.picker.pick(&mut self.rng);
        Arrival { at_ms: self.t, app }
    }
}

/// Minute-lazy Azure stream. The per-minute rate RNG and the arrival
/// RNG are independent (different seeds), so interleaving "compute rate
/// for minute m" with "emit minute m's arrivals" draws exactly the
/// values the eager rates-then-arrivals generator drew.
struct AzureStream {
    trace: AzureLikeTrace,
    picker: AppPicker,
    rate_rng: StdRng,
    noise: Gaussian,
    arr_rng: StdRng,
    next_minute: usize,
    limit_minutes: Option<usize>,
    minute_end_ms: f64,
    mean_gap_ms: f64,
    t: f64,
    in_minute: bool,
}

impl AzureStream {
    fn next(&mut self) -> Option<Arrival> {
        loop {
            if self.in_minute {
                // Exponential inter-arrival: -ln(U) * mean.
                let u: f64 = 1.0 - self.arr_rng.random::<f64>();
                self.t += -u.ln() * self.mean_gap_ms;
                if self.t >= self.minute_end_ms {
                    self.in_minute = false;
                    continue;
                }
                let app = self.picker.pick(&mut self.arr_rng);
                return Some(Arrival { at_ms: self.t, app });
            }
            if self.limit_minutes.is_some_and(|l| self.next_minute >= l) {
                return None;
            }
            let m = self.next_minute;
            self.next_minute += 1;
            let rate = self
                .trace
                .rate_for_minute(m, &mut self.rate_rng, &mut self.noise);
            if rate <= 0.0 {
                continue;
            }
            self.t = m as f64 * 60_000.0;
            self.minute_end_ms = self.t + 60_000.0;
            self.mean_gap_ms = 60_000.0 / rate;
            self.in_minute = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::WorkloadGen;
    use crate::shapes::shaped_workload;

    fn apps4() -> Vec<AppId> {
        (0..4u32).map(AppId).collect()
    }

    #[test]
    fn class_stream_is_infinite_and_ordered() {
        let mut s = ArrivalStream::of_class(WorkloadClass::Heavy, apps4(), 3);
        let mut prev = 0.0;
        for _ in 0..10_000 {
            let a = s.next().expect("class streams never end");
            assert!(a.at_ms > prev);
            prev = a.at_ms;
        }
    }

    #[test]
    fn take_matches_generate_bit_for_bit() {
        for class in WorkloadClass::all() {
            let eager = WorkloadGen::new(class, apps4(), 17).generate(500);
            let lazy = ArrivalStream::of_class(class, apps4(), 17).take_workload(500);
            assert_eq!(eager.arrivals, lazy.arrivals, "{class}");
        }
    }

    #[test]
    fn until_matches_generate_for_bit_for_bit() {
        for class in WorkloadClass::all() {
            let eager = WorkloadGen::new(class, apps4(), 23).generate_for(5_000.0);
            let lazy = ArrivalStream::of_class(class, apps4(), 23).until_ms(5_000.0);
            assert_eq!(eager.arrivals, lazy.arrivals, "{class}");
        }
    }

    #[test]
    fn shaped_stream_matches_shaped_workload_for_every_shape() {
        for shape in TrafficShape::all() {
            let eager = shaped_workload(WorkloadClass::Normal, shape, &apps4(), 42, 10_000.0);
            let lazy = ArrivalStream::shaped(WorkloadClass::Normal, shape, &apps4(), 42)
                .until_ms(10_000.0);
            assert_eq!(eager.arrivals, lazy.arrivals, "{shape}");
        }
    }

    #[test]
    fn azure_stream_matches_trace_generate() {
        let trace = AzureLikeTrace {
            mean_per_minute: 200.0,
            seed: 11,
            ..AzureLikeTrace::default()
        };
        let eager = trace.generate(5, &apps4());
        let lazy: Vec<Arrival> = ArrivalStream::azure(trace, apps4(), Some(5)).collect();
        assert_eq!(eager.arrivals, lazy);
    }

    #[test]
    fn unbounded_azure_stream_crosses_minute_boundaries() {
        let trace = AzureLikeTrace {
            mean_per_minute: 30.0,
            seed: 7,
            ..AzureLikeTrace::default()
        };
        let mut s = ArrivalStream::azure(trace, apps4(), None);
        let mut prev = 0.0;
        let mut n = 0usize;
        while prev < 10.0 * 60_000.0 {
            let a = s.next().expect("unbounded azure streams never end");
            assert!(a.at_ms >= prev, "unsorted at {n}");
            prev = a.at_ms;
            n += 1;
        }
        assert!(n > 100, "ten minutes at ~30/min should emit >100, got {n}");
    }

    #[test]
    fn uniform_popularity_is_bit_identical_to_default() {
        use crate::popularity::Popularity;
        use crate::shapes::shaped_stream_with;
        for shape in TrafficShape::all() {
            let plain: Vec<Arrival> =
                ArrivalStream::shaped(WorkloadClass::Normal, shape, &apps4(), 13)
                    .take(300)
                    .collect();
            let uniform: Vec<Arrival> = shaped_stream_with(
                WorkloadClass::Normal,
                shape,
                &apps4(),
                13,
                Popularity::Uniform,
            )
            .take(300)
            .collect();
            assert_eq!(plain, uniform, "{shape}");
        }
    }

    #[test]
    fn zipf_streams_match_materialised_and_skew_the_head() {
        use crate::popularity::{Popularity, PopularityProfile};
        use crate::shapes::{shaped_stream_with, shaped_workload_with};
        let pop = Popularity::Zipf { s: 1.5 };
        for shape in TrafficShape::all() {
            // Stream == materialised, bit for bit, under skew (satellite
            // determinism pin: the replay engine pulls the stream, the
            // sweep engine materialises).
            let eager =
                shaped_workload_with(WorkloadClass::Normal, shape, &apps4(), 42, pop, 20_000.0);
            let lazy = shaped_stream_with(WorkloadClass::Normal, shape, &apps4(), 42, pop)
                .until_ms(20_000.0);
            assert_eq!(eager.arrivals, lazy.arrivals, "{shape}");
            assert!(!eager.is_empty(), "{shape} produced no arrivals");

            // The first-listed app dominates and order is preserved.
            let profile = PopularityProfile::of(&eager);
            assert_eq!(profile.ranked()[0].0, AppId(0), "{shape} head not hot");
            assert!(
                profile.share(AppId(0)) > 0.4,
                "{shape}: zipf-1.5 head share {:.2} too flat",
                profile.share(AppId(0))
            );
        }
    }

    #[test]
    fn zipf_keeps_arrival_times_of_the_uniform_stream() {
        use crate::popularity::Popularity;
        // Class/modulated streams draw times and apps from the same RNG
        // but one draw each — swapping the app draw kind leaves the time
        // sequence pinned only for the *first* arrival; what must hold
        // exactly is count and ordering.
        for shape in [TrafficShape::Steady, TrafficShape::Bursty] {
            let z: Vec<Arrival> = ArrivalStream::shaped(WorkloadClass::Light, shape, &apps4(), 5)
                .with_popularity(Popularity::Zipf { s: 2.0 })
                .take(500)
                .collect();
            assert!(z.windows(2).all(|p| p[0].at_ms <= p[1].at_ms), "{shape}");
        }
    }

    #[test]
    fn streams_are_seed_deterministic() {
        for shape in TrafficShape::all() {
            let a: Vec<Arrival> = ArrivalStream::shaped(WorkloadClass::Light, shape, &apps4(), 9)
                .take(200)
                .collect();
            let b: Vec<Arrival> = ArrivalStream::shaped(WorkloadClass::Light, shape, &apps4(), 9)
                .take(200)
                .collect();
            assert_eq!(a, b, "{shape}");
            let c: Vec<Arrival> = ArrivalStream::shaped(WorkloadClass::Light, shape, &apps4(), 10)
                .take(200)
                .collect();
            assert_ne!(a, c, "{shape} ignored the seed");
        }
    }
}
