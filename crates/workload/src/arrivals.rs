//! Class-based arrival generation (paper §4.1, Fig. 5).
//!
//! "The length of a job arrival interval is selected randomly in ranges
//! [10–16.8ms], [20–33.6ms], and [40–67.2ms] … In each workload, one of
//! the four DNN applications is randomly picked to get invoked in each
//! time interval."

use crate::stream::ArrivalStream;
use esg_model::{AppId, WorkloadClass};

/// One application invocation request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// Arrival time in ms since workload start.
    pub at_ms: f64,
    /// The invoked application.
    pub app: AppId,
}

/// A generated sequence of arrivals, sorted by time.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// Arrivals in non-decreasing time order.
    pub arrivals: Vec<Arrival>,
}

impl Workload {
    /// Number of arrivals.
    #[inline]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when there are no arrivals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Total span of the workload in ms (0 for empty workloads).
    pub fn span_ms(&self) -> f64 {
        self.arrivals.last().map(|a| a.at_ms).unwrap_or(0.0)
    }

    /// The inter-arrival intervals in ms (length = len − 1... or len, the
    /// first interval being from time zero to the first arrival).
    pub fn intervals_ms(&self) -> Vec<f64> {
        let mut prev = 0.0;
        self.arrivals
            .iter()
            .map(|a| {
                let d = a.at_ms - prev;
                prev = a.at_ms;
                d
            })
            .collect()
    }

    /// Builds a workload from explicit arrivals (sorted by time).
    pub fn from_arrivals(mut arrivals: Vec<Arrival>) -> Workload {
        arrivals.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        Workload { arrivals }
    }
}

/// Deterministic workload generator.
#[derive(Clone, Debug)]
pub struct WorkloadGen {
    class: WorkloadClass,
    apps: Vec<AppId>,
    seed: u64,
}

impl WorkloadGen {
    /// Creates a generator for `class` drawing applications uniformly from
    /// `apps`.
    pub fn new(class: WorkloadClass, apps: Vec<AppId>, seed: u64) -> Self {
        assert!(!apps.is_empty(), "need at least one application");
        WorkloadGen { class, apps, seed }
    }

    /// The infinite lazy arrival stream behind this generator. Both
    /// [`generate`](Self::generate) and [`generate_for`](Self::generate_for)
    /// drain this stream, so there is exactly one determinism story.
    pub fn stream(&self) -> ArrivalStream {
        ArrivalStream::of_class(self.class, self.apps.clone(), self.seed)
    }

    /// Generates `count` arrivals.
    pub fn generate(&self, count: usize) -> Workload {
        self.stream().take_workload(count)
    }

    /// Generates arrivals until `duration_ms` of simulated time is covered.
    pub fn generate_for(&self, duration_ms: f64) -> Workload {
        self.stream().until_ms(duration_ms)
    }

    /// The workload class.
    #[inline]
    pub fn class(&self) -> WorkloadClass {
        self.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn apps4() -> Vec<AppId> {
        (0..4u32).map(AppId).collect()
    }

    #[test]
    fn intervals_stay_in_class_range() {
        for class in WorkloadClass::all() {
            let w = WorkloadGen::new(class, apps4(), 1).generate(2000);
            let (lo, hi) = class.interval_range_ms();
            for d in w.intervals_ms() {
                assert!(d >= lo - 1e-9 && d <= hi + 1e-9, "{class}: {d}");
            }
        }
    }

    #[test]
    fn arrivals_sorted_and_counted() {
        let w = WorkloadGen::new(WorkloadClass::Normal, apps4(), 2).generate(500);
        assert_eq!(w.len(), 500);
        for pair in w.arrivals.windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
    }

    #[test]
    fn apps_roughly_uniform() {
        let w = WorkloadGen::new(WorkloadClass::Heavy, apps4(), 3).generate(8000);
        let mut counts: HashMap<AppId, usize> = HashMap::new();
        for a in &w.arrivals {
            *counts.entry(a.app).or_default() += 1;
        }
        assert_eq!(counts.len(), 4);
        for (&app, &c) in &counts {
            assert!((c as f64 - 2000.0).abs() < 300.0, "app {app}: {c} arrivals");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = WorkloadGen::new(WorkloadClass::Light, apps4(), 42).generate(100);
        let b = WorkloadGen::new(WorkloadClass::Light, apps4(), 42).generate(100);
        assert_eq!(a.arrivals, b.arrivals);
        let c = WorkloadGen::new(WorkloadClass::Light, apps4(), 43).generate(100);
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn generate_for_duration() {
        let w = WorkloadGen::new(WorkloadClass::Light, apps4(), 5).generate_for(10_000.0);
        assert!(w.span_ms() <= 10_000.0);
        // Light mean interval ~53.6ms -> expect roughly 186 arrivals.
        assert!(w.len() > 150 && w.len() < 230, "{}", w.len());
    }

    #[test]
    fn heavy_is_denser_than_light() {
        let h = WorkloadGen::new(WorkloadClass::Heavy, apps4(), 7).generate(1000);
        let l = WorkloadGen::new(WorkloadClass::Light, apps4(), 7).generate(1000);
        assert!(h.span_ms() < l.span_ms() / 2.0);
    }

    #[test]
    fn from_arrivals_sorts() {
        let w = Workload::from_arrivals(vec![
            Arrival {
                at_ms: 5.0,
                app: AppId(0),
            },
            Arrival {
                at_ms: 1.0,
                app: AppId(1),
            },
        ]);
        assert_eq!(w.arrivals[0].at_ms, 1.0);
        assert_eq!(w.span_ms(), 5.0);
    }

    #[test]
    fn empty_workload() {
        let w = Workload::default();
        assert!(w.is_empty());
        assert_eq!(w.span_ms(), 0.0);
        assert!(w.intervals_ms().is_empty());
    }
}
