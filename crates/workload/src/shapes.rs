//! Traffic-shape generators: one deterministic arrival stream per
//! [`TrafficShape`].
//!
//! Every shape keeps the *mean* rate of its [`WorkloadClass`] (so SLO/cost
//! comparisons across shapes are apples-to-apples) and modulates the
//! instantaneous rate:
//!
//! * **steady** — uniform intervals from the class range (paper §4.1);
//! * **bursty** — episodic bursts at several times the class rate with
//!   quiet stretches in between, same long-run mean;
//! * **diurnal** — a sinusoidal rate cycle around the class mean;
//! * **azure** — the [`AzureLikeTrace`] generator (diurnal + random
//!   bursts + dispersion) pinned to the class mean rate.
//!
//! All four are pure functions of `(class, shape, apps, seed)`.

use crate::arrivals::Workload;
use crate::azure::AzureLikeTrace;
use crate::popularity::Popularity;
use crate::stream::ArrivalStream;
use esg_model::{AppId, TrafficShape, WorkloadClass};

/// Burst windows run at this multiple of the class rate.
const BURST_RATE_MULTIPLIER: f64 = 4.0;
/// Fraction of each bursty cycle spent inside the burst window.
const BURST_DUTY: f64 = 0.2;
/// Length of one bursty cycle, ms.
const BURST_CYCLE_MS: f64 = 4_000.0;
/// Diurnal rate amplitude as a fraction of the mean.
const DIURNAL_AMPLITUDE: f64 = 0.6;
/// Diurnal period, ms (compressed "day" so bench-length runs see full
/// cycles).
const DIURNAL_PERIOD_MS: f64 = 60_000.0;

/// Mean arrival interval of a class, ms.
fn class_mean_interval_ms(class: WorkloadClass) -> f64 {
    let (lo, hi) = class.interval_range_ms();
    (lo + hi) / 2.0
}

/// An instantaneous-rate multiplier over the class mean, used by
/// [`ArrivalStream::modulated`]. An enum (not a closure) so streams stay
/// nameable, sendable and cheap to construct.
#[derive(Clone, Copy, Debug)]
pub enum RateFn {
    /// Episodic bursts: within the first `BURST_DUTY` of each
    /// `BURST_CYCLE_MS` cycle the rate is `BURST_RATE_MULTIPLIER`×;
    /// `quiet` slows the remainder so the cycle mean matches the class
    /// mean.
    Bursty {
        /// Rate multiplier outside the burst window.
        quiet: f64,
    },
    /// A sinusoidal rate cycle around the class mean
    /// (`DIURNAL_AMPLITUDE` over `DIURNAL_PERIOD_MS`).
    Diurnal,
}

impl RateFn {
    /// The bursty modulation with its quiet rate solved for a unit mean:
    /// mean = duty·burst + (1−duty)·quiet.
    pub fn bursty() -> RateFn {
        let quiet = (1.0 - BURST_DUTY * BURST_RATE_MULTIPLIER) / (1.0 - BURST_DUTY);
        RateFn::Bursty {
            quiet: quiet.max(0.05),
        }
    }

    /// The diurnal modulation.
    pub fn diurnal() -> RateFn {
        RateFn::Diurnal
    }

    /// The rate multiplier at time `t` (ms).
    pub fn multiplier(&self, t: f64) -> f64 {
        match *self {
            RateFn::Bursty { quiet } => {
                let phase = (t / BURST_CYCLE_MS).fract();
                if phase < BURST_DUTY {
                    BURST_RATE_MULTIPLIER
                } else {
                    quiet
                }
            }
            RateFn::Diurnal => {
                1.0 + DIURNAL_AMPLITUDE * (2.0 * std::f64::consts::PI * t / DIURNAL_PERIOD_MS).sin()
            }
        }
    }
}

/// The Azure-like trace pinned to `class`'s mean rate (the
/// `TrafficShape::AzureReplay` parameterisation).
fn azure_trace_for(class: WorkloadClass, seed: u64) -> AzureLikeTrace {
    AzureLikeTrace {
        mean_per_minute: 60_000.0 / class_mean_interval_ms(class),
        period_minutes: DIURNAL_PERIOD_MS / 60_000.0 * 2.0,
        seed,
        ..AzureLikeTrace::default()
    }
}

/// The infinite lazy stream for `class` shaped by `shape` — the
/// streaming twin of [`shaped_workload`], for replay runs that pull
/// arrivals as simulated time advances instead of materialising a
/// `Vec`. Deterministic in `seed` and bit-identical to
/// [`shaped_workload`] over any duration window.
pub fn shaped_stream(
    class: WorkloadClass,
    shape: TrafficShape,
    apps: &[AppId],
    seed: u64,
) -> ArrivalStream {
    shaped_stream_with(class, shape, apps, seed, Popularity::Uniform)
}

/// [`shaped_stream`] with an explicit application-popularity skew.
/// `Popularity::Uniform` is bit-identical to [`shaped_stream`].
pub fn shaped_stream_with(
    class: WorkloadClass,
    shape: TrafficShape,
    apps: &[AppId],
    seed: u64,
    popularity: Popularity,
) -> ArrivalStream {
    assert!(!apps.is_empty(), "need at least one application");
    let stream = match shape {
        TrafficShape::Steady => ArrivalStream::of_class(class, apps.to_vec(), seed),
        TrafficShape::Bursty => {
            ArrivalStream::modulated(class, apps.to_vec(), seed, RateFn::bursty())
        }
        TrafficShape::Diurnal => {
            ArrivalStream::modulated(class, apps.to_vec(), seed, RateFn::diurnal())
        }
        TrafficShape::AzureReplay => {
            ArrivalStream::azure(azure_trace_for(class, seed), apps.to_vec(), None)
        }
    };
    stream.with_popularity(popularity)
}

/// Generates `duration_ms` of arrivals for `class` shaped by `shape`,
/// applications drawn uniformly from `apps`. Deterministic in `seed`.
/// Drains [`shaped_stream`] (Azure with the historical minute bound, so
/// the rate RNG stops exactly at the window's last minute).
pub fn shaped_workload(
    class: WorkloadClass,
    shape: TrafficShape,
    apps: &[AppId],
    seed: u64,
    duration_ms: f64,
) -> Workload {
    shaped_workload_with(class, shape, apps, seed, Popularity::Uniform, duration_ms)
}

/// [`shaped_workload`] with an explicit application-popularity skew.
/// `Popularity::Uniform` is bit-identical to [`shaped_workload`]; any
/// skew remains bit-identical to draining
/// [`shaped_stream_with`] over the same window (the stream==materialised
/// determinism the replay engine depends on).
pub fn shaped_workload_with(
    class: WorkloadClass,
    shape: TrafficShape,
    apps: &[AppId],
    seed: u64,
    popularity: Popularity,
    duration_ms: f64,
) -> Workload {
    assert!(!apps.is_empty(), "need at least one application");
    match shape {
        TrafficShape::AzureReplay => {
            let minutes = ((duration_ms / 60_000.0).ceil() as usize).max(1);
            ArrivalStream::azure(azure_trace_for(class, seed), apps.to_vec(), Some(minutes))
                .with_popularity(popularity)
                .until_ms(duration_ms)
        }
        _ => shaped_stream_with(class, shape, apps, seed, popularity).until_ms(duration_ms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::WorkloadGen;

    fn apps() -> Vec<AppId> {
        (0..4u32).map(AppId).collect()
    }

    const DUR: f64 = 30_000.0;

    #[test]
    fn steady_matches_workload_gen() {
        let a = shaped_workload(WorkloadClass::Light, TrafficShape::Steady, &apps(), 42, DUR);
        let b = WorkloadGen::new(WorkloadClass::Light, apps(), 42).generate_for(DUR);
        assert_eq!(a.arrivals, b.arrivals);
    }

    #[test]
    fn all_shapes_deterministic_and_in_window() {
        for shape in TrafficShape::all() {
            let a = shaped_workload(WorkloadClass::Normal, shape, &apps(), 7, DUR);
            let b = shaped_workload(WorkloadClass::Normal, shape, &apps(), 7, DUR);
            assert_eq!(a.arrivals, b.arrivals, "{shape} not deterministic");
            assert!(!a.is_empty(), "{shape} produced no arrivals");
            assert!(a.span_ms() <= DUR, "{shape} escaped the window");
            for pair in a.arrivals.windows(2) {
                assert!(pair[0].at_ms <= pair[1].at_ms, "{shape} unsorted");
            }
        }
    }

    #[test]
    fn shapes_keep_roughly_the_class_mean_rate() {
        let expected = DUR / class_mean_interval_ms(WorkloadClass::Normal);
        for shape in TrafficShape::all() {
            let w = shaped_workload(WorkloadClass::Normal, shape, &apps(), 11, DUR);
            let n = w.len() as f64;
            assert!(
                n > 0.5 * expected && n < 1.8 * expected,
                "{shape}: {n} arrivals vs expected ~{expected}"
            );
        }
    }

    #[test]
    fn bursty_has_heavier_interval_tail_than_steady() {
        let steady = shaped_workload(WorkloadClass::Normal, TrafficShape::Steady, &apps(), 3, DUR);
        let bursty = shaped_workload(WorkloadClass::Normal, TrafficShape::Bursty, &apps(), 3, DUR);
        let max_gap = |w: &Workload| w.intervals_ms().into_iter().fold(0.0, f64::max);
        // Quiet stretches stretch the longest gap well past the steady
        // class maximum.
        assert!(max_gap(&bursty) > 1.5 * max_gap(&steady));
        // And burst windows compress the shortest gap below the steady
        // class minimum.
        let min_gap = |w: &Workload| w.intervals_ms().into_iter().fold(f64::INFINITY, f64::min);
        assert!(min_gap(&bursty) < min_gap(&steady));
    }

    #[test]
    fn diurnal_rate_varies_across_half_periods() {
        let w = shaped_workload(
            WorkloadClass::Normal,
            TrafficShape::Diurnal,
            &apps(),
            5,
            DIURNAL_PERIOD_MS,
        );
        let half = DIURNAL_PERIOD_MS / 2.0;
        let first = w.arrivals.iter().filter(|a| a.at_ms < half).count();
        let second = w.len() - first;
        // Rate peaks in the first half-period (sin > 0) and troughs in the
        // second.
        assert!(
            first as f64 > 1.3 * second as f64,
            "first {first} second {second}"
        );
    }

    #[test]
    fn distinct_seeds_differ() {
        for shape in TrafficShape::all() {
            let a = shaped_workload(WorkloadClass::Heavy, shape, &apps(), 1, DUR);
            let b = shaped_workload(WorkloadClass::Heavy, shape, &apps(), 2, DUR);
            assert_ne!(a.arrivals, b.arrivals, "{shape} ignored the seed");
        }
    }
}
