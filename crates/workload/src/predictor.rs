//! EWMA-based invocation prediction for pre-warming (paper §4).
//!
//! "We use a lightweight method for prewarming. It uses Exponential
//! Weighted Moving Average (EWMA) to predict the invocation intervals of
//! functions and pre-warms the function instances accordingly."
//!
//! The predictor observes arrival timestamps of one function, maintains an
//! EWMA of the inter-arrival interval, and predicts the next arrival time.
//! The pre-warming proxy starts a container `cold_start` ms before the
//! predicted arrival so it is warm on time.

use esg_model::Ewma;

/// Predicts the next invocation time of one function from its arrival
/// history.
#[derive(Clone, Debug)]
pub struct ArrivalPredictor {
    ewma: Ewma,
    last_arrival_ms: Option<f64>,
}

impl ArrivalPredictor {
    /// Creates a predictor with EWMA smoothing factor `alpha`.
    pub fn new(alpha: f64) -> Self {
        ArrivalPredictor {
            ewma: Ewma::new(alpha),
            last_arrival_ms: None,
        }
    }

    /// Observes an arrival at `at_ms`. Out-of-order observations are
    /// clamped to a zero interval.
    pub fn observe(&mut self, at_ms: f64) {
        if let Some(last) = self.last_arrival_ms {
            self.ewma.update((at_ms - last).max(0.0));
        }
        self.last_arrival_ms = Some(at_ms);
    }

    /// Predicted interval between arrivals (ms), once two arrivals have
    /// been seen.
    #[inline]
    pub fn predicted_interval_ms(&self) -> Option<f64> {
        self.ewma.value()
    }

    /// Predicted time of the next arrival.
    pub fn predicted_next_ms(&self) -> Option<f64> {
        Some(self.last_arrival_ms? + self.predicted_interval_ms()?)
    }

    /// When to begin warming a container with the given cold-start time so
    /// it is ready at the predicted arrival. `None` until two arrivals are
    /// seen; never earlier than `now_ms`.
    pub fn prewarm_at_ms(&self, cold_start_ms: f64, now_ms: f64) -> Option<f64> {
        let next = self.predicted_next_ms()?;
        Some((next - cold_start_ms).max(now_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_observations() {
        let mut p = ArrivalPredictor::new(0.5);
        assert_eq!(p.predicted_next_ms(), None);
        p.observe(100.0);
        assert_eq!(p.predicted_next_ms(), None);
        p.observe(150.0);
        let next = p.predicted_next_ms().expect("two observations");
        assert!((next - 200.0).abs() < 1e-9);
    }

    #[test]
    fn converges_on_periodic_arrivals() {
        let mut p = ArrivalPredictor::new(0.3);
        for i in 0..50 {
            p.observe(i as f64 * 25.0);
        }
        let iv = p.predicted_interval_ms().expect("many observations");
        assert!((iv - 25.0).abs() < 1e-6);
        let next = p.predicted_next_ms().expect("many observations");
        assert!((next - (49.0 * 25.0 + 25.0)).abs() < 1e-6);
    }

    #[test]
    fn adapts_to_rate_change() {
        let mut p = ArrivalPredictor::new(0.5);
        let mut t = 0.0;
        for _ in 0..10 {
            t += 100.0;
            p.observe(t);
        }
        for _ in 0..20 {
            t += 10.0;
            p.observe(t);
        }
        let iv = p.predicted_interval_ms().expect("observed");
        assert!(iv < 11.0, "should track the faster rate, got {iv}");
    }

    #[test]
    fn prewarm_time_accounts_for_cold_start() {
        let mut p = ArrivalPredictor::new(0.5);
        p.observe(0.0);
        p.observe(1000.0);
        // Next predicted at 2000; cold start 800 -> warm at 1200.
        let at = p.prewarm_at_ms(800.0, 1000.0).expect("predicted");
        assert!((at - 1200.0).abs() < 1e-9);
        // Cold start longer than the lead time clamps to now.
        let at = p.prewarm_at_ms(5000.0, 1000.0).expect("predicted");
        assert_eq!(at, 1000.0);
    }

    #[test]
    fn out_of_order_observation_clamps() {
        let mut p = ArrivalPredictor::new(0.5);
        p.observe(100.0);
        p.observe(50.0); // goes backwards
        assert_eq!(p.predicted_interval_ms(), Some(0.0));
    }
}
