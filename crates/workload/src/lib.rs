//! Workload substrate.
//!
//! The paper derives job arrival rates from the public Azure Functions
//! traces and distils them into three interval classes (§4.1, Fig. 5):
//! heavy [10, 16.8] ms, normal [20, 33.6] ms, light [40, 67.2] ms, with
//! one of the four applications picked at random for each arrival.
//!
//! * [`arrivals`] — the class-based generator used by every evaluation
//!   scenario;
//! * [`azure`] — a synthetic Azure-like per-minute rate trace (diurnal
//!   pattern plus bursts) for the pre-warming study, replacing the
//!   proprietary raw traces (see DESIGN.md substitutions);
//! * [`shapes`] — traffic-shape generators (`steady`, `bursty`,
//!   `diurnal`, `azure` replay) keyed by `esg_model::TrafficShape`, all
//!   holding the class mean rate so shapes compare apples-to-apples;
//! * [`popularity`] — application-popularity skew for the shaped
//!   generators (`Popularity::Zipf`) plus the [`PopularityProfile`]
//!   analysis pass the static pinning tier ranks hot workflows with;
//! * [`predictor`] — the EWMA inter-arrival predictor the pre-warming
//!   proxy threads use (§4);
//! * [`stream`] — the lazy [`ArrivalStream`] iterator every generator
//!   above drains: constant-memory, time-ordered, bit-identical to the
//!   materialised workloads, and the source the simulator's streaming
//!   replay mode pulls from.

#![warn(missing_docs)]

pub mod arrivals;
pub mod azure;
pub mod popularity;
pub mod predictor;
pub mod shapes;
pub mod stream;

pub use arrivals::{Arrival, Workload, WorkloadGen};
pub use azure::AzureLikeTrace;
pub use popularity::{Popularity, PopularityProfile};
pub use predictor::ArrivalPredictor;
pub use shapes::{
    shaped_stream, shaped_stream_with, shaped_workload, shaped_workload_with, RateFn,
};
pub use stream::ArrivalStream;
