//! Application-popularity skew: the draw distribution arrival streams
//! pick applications from, plus the offline analysis pass the static
//! pinning tier runs over a workload.
//!
//! The paper's generators draw the application for each arrival
//! uniformly (§4.1); production serverless traffic is heavily skewed —
//! a few hot workflows dominate invocations (the observation GSwarm and
//! HAS-GPU build their static tiers on). [`Popularity`] parameterises
//! the shaped generators with that skew: `Uniform` reproduces the
//! historical draw sequence bit-for-bit, `Zipf { s }` draws from a
//! Zipf(s) distribution over the app list's order (apps earlier in the
//! slice are hotter).
//!
//! [`PopularityProfile`] is the inverse: given a (prefix of a)
//! workload, rank applications by observed invocation share. The
//! `PinPlanner` in `esg-core` feeds the head of that ranking — together
//! with each app's stage DAG, which says which stages feed which — to
//! decide what to pin where.

use crate::arrivals::Workload;
use esg_model::AppId;

/// How arrival streams draw the application for each arrival.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Popularity {
    /// Every app equally likely — the paper's §4.1 draw, bit-identical
    /// to the pre-knob generators.
    Uniform,
    /// Zipf-distributed popularity with exponent `s` over the app list's
    /// order: app at index `i` has weight `1 / (i + 1)^s`. `s = 0` is
    /// uniform-by-weights (but takes the weighted draw path; use
    /// `Uniform` for bit-compatibility), larger `s` is more skewed.
    Zipf {
        /// The Zipf exponent (≥ 0; ~1–2 matches serverless trace skew).
        s: f64,
    },
}

impl Popularity {
    /// The normalised draw weights over `n` apps (sums to 1).
    pub fn weights(&self, n: usize) -> Vec<f64> {
        assert!(n > 0, "need at least one application");
        match *self {
            Popularity::Uniform => vec![1.0 / n as f64; n],
            Popularity::Zipf { s } => {
                assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be ≥ 0");
                let raw: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
                let total: f64 = raw.iter().sum();
                raw.into_iter().map(|w| w / total).collect()
            }
        }
    }
}

impl std::fmt::Display for Popularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Popularity::Uniform => f.write_str("uniform"),
            Popularity::Zipf { s } => write!(f, "zipf-{s}"),
        }
    }
}

/// Observed per-application invocation shares of a workload — the
/// pattern-analysis input to the static pinning tier.
#[derive(Clone, Debug, PartialEq)]
pub struct PopularityProfile {
    /// `(app, invocations)`, descending by count, ties on app id.
    ranked: Vec<(AppId, u64)>,
    total: u64,
}

impl PopularityProfile {
    /// Ranks the applications of `workload` by invocation count.
    pub fn of(workload: &Workload) -> PopularityProfile {
        let mut counts: Vec<(AppId, u64)> = Vec::new();
        for a in &workload.arrivals {
            match counts.iter_mut().find(|(app, _)| *app == a.app) {
                Some((_, n)) => *n += 1,
                None => counts.push((a.app, 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        PopularityProfile {
            total: counts.iter().map(|(_, n)| n).sum(),
            ranked: counts,
        }
    }

    /// `(app, invocations)` descending by count.
    pub fn ranked(&self) -> &[(AppId, u64)] {
        &self.ranked
    }

    /// Total invocations observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The observed invocation share of `app` in [0, 1].
    pub fn share(&self, app: AppId) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.ranked
            .iter()
            .find(|(a, _)| *a == app)
            .map_or(0.0, |(_, n)| *n as f64 / self.total as f64)
    }

    /// The popularity head: apps (hottest first, at most `max`) whose
    /// share is at least `min_share`. Empty on an empty workload — and on
    /// uniform traffic whenever `min_share` exceeds the uniform share,
    /// which is what keeps the pinning tier inert without skew.
    pub fn hot_apps(&self, min_share: f64, max: usize) -> Vec<AppId> {
        self.ranked
            .iter()
            .filter(|(app, _)| self.share(*app) >= min_share)
            .take(max)
            .map(|(app, _)| *app)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::Arrival;

    fn workload_of(apps: &[u32]) -> Workload {
        Workload {
            arrivals: apps
                .iter()
                .enumerate()
                .map(|(i, &a)| Arrival {
                    at_ms: i as f64,
                    app: AppId(a),
                })
                .collect(),
        }
    }

    #[test]
    fn uniform_weights_are_flat_and_zipf_decays() {
        let u = Popularity::Uniform.weights(4);
        assert!(u.iter().all(|&w| (w - 0.25).abs() < 1e-12));
        let z = Popularity::Zipf { s: 1.0 }.weights(4);
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(z[0] > z[1] && z[1] > z[2] && z[2] > z[3]);
        // s = 1: weights ∝ 1, 1/2, 1/3, 1/4.
        assert!((z[0] / z[1] - 2.0).abs() < 1e-12);
        // Higher exponent concentrates more mass on the head.
        let z2 = Popularity::Zipf { s: 2.0 }.weights(4);
        assert!(z2[0] > z[0]);
    }

    #[test]
    fn display_labels_are_axis_friendly() {
        assert_eq!(Popularity::Uniform.to_string(), "uniform");
        assert_eq!(Popularity::Zipf { s: 1.5 }.to_string(), "zipf-1.5");
    }

    #[test]
    fn profile_ranks_by_count_with_id_ties() {
        let p = PopularityProfile::of(&workload_of(&[2, 0, 2, 1, 2, 0]));
        assert_eq!(p.total(), 6);
        assert_eq!(p.ranked(), &[(AppId(2), 3), (AppId(0), 2), (AppId(1), 1)]);
        assert!((p.share(AppId(2)) - 0.5).abs() < 1e-12);
        assert_eq!(p.share(AppId(7)), 0.0);
    }

    #[test]
    fn hot_apps_cut_at_share_and_count() {
        let p = PopularityProfile::of(&workload_of(&[0, 0, 0, 0, 0, 0, 1, 1, 2, 3]));
        // 0 has 60%, 1 has 20%, 2 and 3 have 10%.
        assert_eq!(p.hot_apps(0.5, 4), vec![AppId(0)]);
        assert_eq!(p.hot_apps(0.15, 4), vec![AppId(0), AppId(1)]);
        assert_eq!(p.hot_apps(0.15, 1), vec![AppId(0)]);
        assert!(p.hot_apps(0.7, 4).is_empty());
        let empty = PopularityProfile::of(&Workload { arrivals: vec![] });
        assert!(empty.hot_apps(0.0, 4).is_empty());
    }
}
