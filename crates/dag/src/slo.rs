//! Dominator-based SLO distribution (paper §3.3).
//!
//! Given the reduced [`Hierarchy`] of an application DAG and per-node ANL
//! labels, this module partitions the functions into groups of at most `g`
//! consecutive stages (generated/parallel nodes stay individual, "to prevent
//! their subsumed groups' sizes from being bloated") and assigns each group
//! a share of the end-to-end SLO proportional to its ANL. Branches of a
//! parallel group each receive the *full* parallel quota — they execute
//! concurrently, so the group's time budget bounds the slowest branch
//! (whose ANL defined the parallel node's label in the reduce step).

use crate::graph::{Dag, DagError};
use crate::reduce::{item_anl, Hierarchy, Item};

/// One SLO group: a run of at most `g` consecutive pipeline stages sharing
/// a time quota.
#[derive(Clone, Debug, PartialEq)]
pub struct SloGroup {
    /// Original DAG node indices, in execution order along their chain.
    pub members: Vec<usize>,
    /// The group's share of the end-to-end SLO, in (0, 1].
    pub fraction: f64,
}

/// The complete SLO distribution plan for an application.
#[derive(Clone, Debug)]
pub struct SloPlan {
    groups: Vec<SloGroup>,
    /// `group_of[node]` — index into `groups` for each DAG node.
    group_of: Vec<usize>,
    /// The maximum group size used to build the plan.
    group_size: usize,
}

impl SloPlan {
    /// Builds the plan for `dag` with per-node ANL labels `anl` and maximum
    /// group size `group_size` (the paper's `g`, default 3 in ESG).
    pub fn build(dag: &Dag, anl: &[f64], group_size: usize) -> Result<SloPlan, DagError> {
        assert!(group_size >= 1, "group size must be >= 1");
        assert_eq!(anl.len(), dag.len(), "one ANL label per node");
        let hierarchy = Hierarchy::build(dag)?;
        let mut groups = Vec::new();
        assign(&hierarchy.items, anl, group_size, 1.0, &mut groups);

        let mut group_of = vec![usize::MAX; dag.len()];
        for (gi, g) in groups.iter().enumerate() {
            for &m in &g.members {
                debug_assert_eq!(group_of[m], usize::MAX, "node in two groups");
                group_of[m] = gi;
            }
        }
        debug_assert!(group_of.iter().all(|&g| g != usize::MAX));
        Ok(SloPlan {
            groups,
            group_of,
            group_size,
        })
    }

    /// A trivial plan for a linear pipeline without dominator grouping:
    /// every stage in one group holding the whole SLO (used by the group
    /// size ablation with `g >= pipeline length`).
    pub fn single_group(num_stages: usize) -> SloPlan {
        SloPlan {
            groups: vec![SloGroup {
                members: (0..num_stages).collect(),
                fraction: 1.0,
            }],
            group_of: vec![0; num_stages],
            group_size: num_stages.max(1),
        }
    }

    /// The groups in execution order.
    #[inline]
    pub fn groups(&self) -> &[SloGroup] {
        &self.groups
    }

    /// The group index containing `node`.
    #[inline]
    pub fn group_of(&self, node: usize) -> usize {
        self.group_of[node]
    }

    /// The group containing `node`.
    #[inline]
    pub fn group_for(&self, node: usize) -> &SloGroup {
        &self.groups[self.group_of[node]]
    }

    /// The maximum group size the plan was built with.
    #[inline]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The group's SLO quota in milliseconds for a given end-to-end SLO.
    #[inline]
    pub fn quota_ms(&self, node: usize, slo_ms: f64) -> f64 {
        self.group_for(node).fraction * slo_ms
    }

    /// The stages of `node`'s group from `node` (inclusive) to the group
    /// end — the sub-pipeline ESG_1Q searches when `node` is about to be
    /// dispatched.
    pub fn remaining_in_group(&self, node: usize) -> &[usize] {
        let g = self.group_for(node);
        let pos = g
            .members
            .iter()
            .position(|&m| m == node)
            .expect("node is in its group");
        &g.members[pos..]
    }
}

/// Recursive quota assignment over a reduced chain.
fn assign(items: &[Item], anl: &[f64], g: usize, quota: f64, out: &mut Vec<SloGroup>) {
    // Partition the chain: runs of original nodes chunked to size <= g;
    // parallel items stand alone.
    enum Seg<'a> {
        Run(Vec<usize>),
        Par(&'a [Hierarchy]),
    }
    let mut segs: Vec<Seg> = Vec::new();
    let mut run: Vec<usize> = Vec::new();
    for it in items {
        match it {
            Item::Node(v) => {
                run.push(*v);
                if run.len() == g {
                    segs.push(Seg::Run(std::mem::take(&mut run)));
                }
            }
            Item::Parallel(branches) => {
                if !run.is_empty() {
                    segs.push(Seg::Run(std::mem::take(&mut run)));
                }
                segs.push(Seg::Par(branches));
            }
        }
    }
    if !run.is_empty() {
        segs.push(Seg::Run(run));
    }

    let seg_anl = |s: &Seg| -> f64 {
        match s {
            Seg::Run(nodes) => nodes.iter().map(|&v| anl[v]).sum(),
            Seg::Par(branches) => item_anl(&Item::Parallel((*branches).to_vec()), anl),
        }
    };
    let total: f64 = segs.iter().map(seg_anl).sum();
    let n_segs = segs.len().max(1);
    for s in &segs {
        // Proportional share; equal split as a degenerate fallback when all
        // ANL mass in this chain is zero.
        let share = if total > 0.0 {
            quota * seg_anl(s) / total
        } else {
            quota / n_segs as f64
        };
        match s {
            Seg::Run(nodes) => out.push(SloGroup {
                members: nodes.clone(),
                fraction: share,
            }),
            Seg::Par(branches) => {
                // Each branch runs concurrently within the parallel quota.
                for b in *branches {
                    assign(&b.items, anl, g, share, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_anl(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    #[test]
    fn linear_pipeline_fractions_sum_to_one() {
        let d = Dag::new(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).expect("valid");
        let anl = vec![0.1, 0.3, 0.2, 0.25, 0.15];
        let plan = SloPlan::build(&d, &anl, 3).expect("plan");
        let sum: f64 = plan.groups().iter().map(|g| g.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // 5 stages, g=3 -> groups of 3 and 2.
        assert_eq!(plan.groups().len(), 2);
        assert_eq!(plan.groups()[0].members, vec![0, 1, 2]);
        assert_eq!(plan.groups()[1].members, vec![3, 4]);
        // Fractions proportional to ANL sums: 0.6 vs 0.4.
        assert!((plan.groups()[0].fraction - 0.6).abs() < 1e-12);
        assert!((plan.groups()[1].fraction - 0.4).abs() < 1e-12);
    }

    #[test]
    fn group_lookup_and_quota() {
        let d = Dag::new(4, &[(0, 1), (1, 2), (2, 3)]).expect("valid");
        let plan = SloPlan::build(&d, &uniform_anl(4), 2).expect("plan");
        assert_eq!(plan.group_of(0), 0);
        assert_eq!(plan.group_of(1), 0);
        assert_eq!(plan.group_of(2), 1);
        assert_eq!(plan.group_of(3), 1);
        assert!((plan.quota_ms(0, 1000.0) - 500.0).abs() < 1e-9);
        assert_eq!(plan.remaining_in_group(1), &[1]);
        assert_eq!(plan.remaining_in_group(2), &[2, 3]);
        assert_eq!(plan.group_size(), 2);
    }

    #[test]
    fn group_size_one_means_per_stage_quota() {
        let d = Dag::new(3, &[(0, 1), (1, 2)]).expect("valid");
        let anl = vec![0.5, 0.25, 0.25];
        let plan = SloPlan::build(&d, &anl, 1).expect("plan");
        assert_eq!(plan.groups().len(), 3);
        assert!((plan.groups()[0].fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn big_group_size_single_group() {
        let d = Dag::new(3, &[(0, 1), (1, 2)]).expect("valid");
        let plan = SloPlan::build(&d, &uniform_anl(3), 10).expect("plan");
        assert_eq!(plan.groups().len(), 1);
        assert_eq!(plan.groups()[0].members, vec![0, 1, 2]);
        assert!((plan.groups()[0].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_branches_each_get_full_parallel_quota() {
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).expect("valid");
        let anl = vec![0.2, 0.4, 0.2, 0.2]; // parallel label = max(0.4, 0.2) = 0.4
        let plan = SloPlan::build(&d, &anl, 3).expect("plan");
        // Chain segs: [0], Par, [3] with anl 0.2, 0.4, 0.2 -> fractions
        // 0.25, 0.5, 0.25.
        let f = |node: usize| plan.group_for(node).fraction;
        assert!((f(0) - 0.25).abs() < 1e-12);
        assert!((f(3) - 0.25).abs() < 1e-12);
        // Both branches receive the full 0.5.
        assert!((f(1) - 0.5).abs() < 1e-12);
        assert!((f(2) - 0.5).abs() < 1e-12);
        // Each complete path sums to 1.
        assert!((f(0) + f(1) + f(3) - 1.0).abs() < 1e-12);
        assert!((f(0) + f(2) + f(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_node_in_exactly_one_group() {
        let d = Dag::new(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (1, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (2, 6),
                (6, 7),
            ],
        )
        .expect("valid");
        let plan = SloPlan::build(&d, &uniform_anl(8), 3).expect("plan");
        let mut seen = vec![0usize; 8];
        for g in plan.groups() {
            assert!(g.members.len() <= 3);
            assert!(g.fraction > 0.0);
            for &m in &g.members {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage {seen:?}");
    }

    #[test]
    fn zero_anl_falls_back_to_equal_split() {
        let d = Dag::new(2, &[(0, 1)]).expect("valid");
        let plan = SloPlan::build(&d, &[0.0, 0.0], 1).expect("plan");
        assert!((plan.groups()[0].fraction - 0.5).abs() < 1e-12);
        assert!((plan.groups()[1].fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_group_plan() {
        let plan = SloPlan::single_group(4);
        assert_eq!(plan.groups().len(), 1);
        assert_eq!(plan.group_of(3), 0);
        assert_eq!(plan.remaining_in_group(2), &[2, 3]);
        assert!((plan.quota_ms(0, 800.0) - 800.0).abs() < 1e-12);
    }

    #[test]
    fn paper_default_group_size_three_on_five_stage_app() {
        // The expanded image classification app has 5 stages; with g = 3 the
        // search space per ESG_1Q call is bounded by |configs|^3.
        let d = Dag::new(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).expect("valid");
        let plan = SloPlan::build(&d, &uniform_anl(5), 3).expect("plan");
        assert!(plan.groups().iter().all(|g| g.members.len() <= 3));
        let covered: usize = plan.groups().iter().map(|g| g.members.len()).sum();
        assert_eq!(covered, 5);
    }
}
