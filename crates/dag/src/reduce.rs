//! Hierarchical reduction of the dominator tree (paper §3.3, Fig. 4).
//!
//! The paper traverses the dominator tree post-order; whenever a node has
//! several children it *reduces* the parallel branches into one generated
//! node whose ANL is the maximum of the branch ANL sums, until the whole
//! tree collapses into a list. Recording the reductions lets the SLO
//! assignment later reverse them.
//!
//! We materialise the same information as an explicit series/parallel
//! [`Hierarchy`]: a chain of [`Item`]s, where an item is either an original
//! DAG node or a `Parallel` group of sub-chains (the paper's "generated
//! node"). Building the hierarchy *is* the reduction; recursing into
//! `Parallel` items *is* the reversal.

use crate::dominator::DominatorTree;
use crate::graph::{Dag, DagError};

/// One element of a reduced chain.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// An original DAG node (index into the application's node list).
    Node(usize),
    /// A generated node subsuming parallel branches (paper Fig. 4 `p`, `q`).
    Parallel(Vec<Hierarchy>),
}

/// A chain of items — the reduced, list-shaped form of (part of) the DAG.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Hierarchy {
    /// The chain items in execution order.
    pub items: Vec<Item>,
}

impl Hierarchy {
    /// Reduces `dag` into a series/parallel hierarchy via its dominator
    /// tree. Fails with [`DagError::NotReducible`] when a split has more
    /// than one join continuation (the DAG is not hierarchically reducible
    /// in the paper's sense).
    pub fn build(dag: &Dag) -> Result<Hierarchy, DagError> {
        let domtree = DominatorTree::build(dag);
        let roots = domtree.roots();
        debug_assert!(!roots.is_empty());
        if roots.len() == 1 {
            let items = chain_from(dag, &domtree, roots[0] as usize)?;
            return Ok(Hierarchy { items });
        }
        // Multi-entry DAG: entries behave like branches of a virtual root;
        // a node dominated only by the virtual root but with predecessors is
        // the join continuation.
        let (heads, conts): (Vec<usize>, Vec<usize>) = {
            let mut heads = Vec::new();
            let mut conts = Vec::new();
            for &r in roots {
                if dag.preds(r as usize).is_empty() {
                    heads.push(r as usize);
                } else {
                    conts.push(r as usize);
                }
            }
            (heads, conts)
        };
        if conts.len() > 1 {
            return Err(DagError::NotReducible { split: conts[0] });
        }
        let mut items = Vec::new();
        let branches = heads
            .into_iter()
            .map(|h| {
                Ok(Hierarchy {
                    items: chain_from(dag, &domtree, h)?,
                })
            })
            .collect::<Result<Vec<_>, DagError>>()?;
        items.push(Item::Parallel(branches));
        if let Some(&c) = conts.first() {
            items.extend(chain_from(dag, &domtree, c)?);
        }
        Ok(Hierarchy { items })
    }

    /// Total ANL of this chain: node ANLs sum along the chain; a parallel
    /// group contributes the **maximum** of its branch sums (the paper's
    /// reduce rule).
    pub fn anl_total(&self, anl: &[f64]) -> f64 {
        self.items.iter().map(|it| item_anl(it, anl)).sum()
    }

    /// All original node indices contained in the hierarchy (depth first).
    pub fn nodes(&self) -> Vec<usize> {
        let mut out = Vec::new();
        collect_nodes(&self.items, &mut out);
        out
    }

    /// A structural fingerprint of the *reduced* DAG: FNV-1a over the
    /// series/parallel shape (chain positions, branch structure, original
    /// node indices). This is the DAG component of the scheduler's
    /// plan-cache key — two applications whose reductions coincide share
    /// search structure, and a key built on the reduction is stable across
    /// processes (pure FNV, no randomised hasher state).
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::graph::Fnv::new();
        hash_items(&self.items, &mut h);
        h.finish()
    }

    /// Depth of parallel nesting (0 for a pure chain).
    pub fn nesting_depth(&self) -> usize {
        self.items
            .iter()
            .map(|it| match it {
                Item::Node(_) => 0,
                Item::Parallel(branches) => {
                    1 + branches
                        .iter()
                        .map(|b| b.nesting_depth())
                        .max()
                        .unwrap_or(0)
                }
            })
            .max()
            .unwrap_or(0)
    }
}

/// ANL of a single item (paper reduce rule for generated nodes).
pub fn item_anl(item: &Item, anl: &[f64]) -> f64 {
    match item {
        Item::Node(v) => anl[*v],
        Item::Parallel(branches) => branches
            .iter()
            .map(|b| b.anl_total(anl))
            .fold(0.0, f64::max),
    }
}

/// Post-order structural hash: every item contributes a tag so `[Node(1),
/// Node(2)]` and `[Parallel([Node(1), Node(2)])]` cannot collide.
fn hash_items(items: &[Item], h: &mut crate::graph::Fnv) {
    h.write_u64(items.len() as u64);
    for it in items {
        match it {
            Item::Node(v) => {
                h.write_u64(1);
                h.write_u64(*v as u64);
            }
            Item::Parallel(branches) => {
                h.write_u64(2);
                h.write_u64(branches.len() as u64);
                for b in branches {
                    hash_items(&b.items, h);
                }
            }
        }
    }
}

fn collect_nodes(items: &[Item], out: &mut Vec<usize>) {
    for it in items {
        match it {
            Item::Node(v) => out.push(*v),
            Item::Parallel(branches) => {
                for b in branches {
                    collect_nodes(&b.items, out);
                }
            }
        }
    }
}

/// Walks the dominator subtree rooted at `x`, emitting the chain of items.
fn chain_from(dag: &Dag, domtree: &DominatorTree, x: usize) -> Result<Vec<Item>, DagError> {
    let mut items = Vec::new();
    let mut cur = Some(x);
    while let Some(u) = cur {
        items.push(Item::Node(u));
        let kids = domtree.children(u);
        match kids.len() {
            0 => cur = None,
            1 => cur = Some(kids[0] as usize),
            _ => {
                // Split point. Children entered directly (all DAG preds are
                // `u`) are branch heads; a child with predecessors inside the
                // branches is the join continuation.
                let mut heads = Vec::new();
                let mut conts = Vec::new();
                for &k in kids {
                    let k = k as usize;
                    if dag.preds(k).iter().all(|&p| p as usize == u) {
                        heads.push(k);
                    } else {
                        conts.push(k);
                    }
                }
                if conts.len() > 1 || heads.is_empty() {
                    return Err(DagError::NotReducible { split: u });
                }
                let branches = heads
                    .into_iter()
                    .map(|h| {
                        Ok(Hierarchy {
                            items: chain_from(dag, domtree, h)?,
                        })
                    })
                    .collect::<Result<Vec<_>, DagError>>()?;
                items.push(Item::Parallel(branches));
                cur = conts.first().copied();
            }
        }
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes_of(items: &[Item]) -> Vec<usize> {
        let mut out = Vec::new();
        collect_nodes(items, &mut out);
        out
    }

    #[test]
    fn chain_reduces_to_itself() {
        let d = Dag::new(4, &[(0, 1), (1, 2), (2, 3)]).expect("valid");
        let h = Hierarchy::build(&d).expect("reducible");
        assert_eq!(
            h.items,
            vec![Item::Node(0), Item::Node(1), Item::Node(2), Item::Node(3)]
        );
        assert_eq!(h.nesting_depth(), 0);
    }

    #[test]
    fn diamond_reduces_to_series_parallel() {
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).expect("valid");
        let h = Hierarchy::build(&d).expect("reducible");
        assert_eq!(h.items.len(), 3);
        assert_eq!(h.items[0], Item::Node(0));
        match &h.items[1] {
            Item::Parallel(branches) => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[0].items, vec![Item::Node(1)]);
                assert_eq!(branches[1].items, vec![Item::Node(2)]);
            }
            other => panic!("expected parallel, got {other:?}"),
        }
        assert_eq!(h.items[2], Item::Node(3));
        assert_eq!(h.nesting_depth(), 1);
    }

    #[test]
    fn diamond_anl_uses_max_branch() {
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).expect("valid");
        let h = Hierarchy::build(&d).expect("reducible");
        let anl = vec![0.1, 0.5, 0.2, 0.2];
        // chain = 0.1 + max(0.5, 0.2) + 0.2
        assert!((h.anl_total(&anl) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn nested_split() {
        // 0 -> {1, 2}; 1 -> {3, 4} -> 5; {5, 2} -> 6 -> 7
        let d = Dag::new(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (1, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (2, 6),
                (6, 7),
            ],
        )
        .expect("valid");
        let h = Hierarchy::build(&d).expect("reducible");
        assert_eq!(h.nesting_depth(), 2);
        let mut ns = h.nodes();
        ns.sort_unstable();
        assert_eq!(ns, (0..8).collect::<Vec<_>>());
        // Top level: 0, Parallel, 6, 7.
        assert_eq!(h.items.len(), 4);
        assert_eq!(h.items[0], Item::Node(0));
        assert_eq!(h.items[2], Item::Node(6));
        assert_eq!(h.items[3], Item::Node(7));
    }

    #[test]
    fn bypass_edge_is_single_branch_parallel() {
        // 0 -> 1 -> 2 and 0 -> 2.
        let d = Dag::new(3, &[(0, 1), (1, 2), (0, 2)]).expect("valid");
        let h = Hierarchy::build(&d).expect("reducible");
        assert_eq!(h.items.len(), 3);
        match &h.items[1] {
            Item::Parallel(branches) => assert_eq!(branches.len(), 1),
            other => panic!("expected parallel, got {other:?}"),
        }
        // ANL of single-branch parallel equals the branch sum, so the bypass
        // does not distort totals.
        let anl = vec![0.3, 0.4, 0.3];
        assert!((h.anl_total(&anl) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_entry_reduces_via_virtual_root() {
        // 0 -> 2 <- 1, then 2 -> 3.
        let d = Dag::new(4, &[(0, 2), (1, 2), (2, 3)]).expect("valid");
        let h = Hierarchy::build(&d).expect("reducible");
        match &h.items[0] {
            Item::Parallel(branches) => assert_eq!(branches.len(), 2),
            other => panic!("expected parallel, got {other:?}"),
        }
        assert_eq!(h.items[1], Item::Node(2));
        assert_eq!(h.items[2], Item::Node(3));
    }

    #[test]
    fn non_reducible_double_join_rejected() {
        // 0 -> {1, 2}; both 1->3, 2->3 and 1->4, 2->4: joins 3 and 4 are
        // both dominated by 0 with cross preds -> two continuations.
        let d = Dag::new(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (1, 4), (2, 4)]).expect("valid");
        match Hierarchy::build(&d) {
            Err(DagError::NotReducible { split: 0 }) => {}
            other => panic!("expected NotReducible at 0, got {other:?}"),
        }
    }

    #[test]
    fn nodes_cover_every_dag_node_once() {
        let d = Dag::new(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        )
        .expect("valid");
        let h = Hierarchy::build(&d).expect("reducible");
        let mut ns = nodes_of(&h.items);
        ns.sort_unstable();
        assert_eq!(ns, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn fingerprint_distinguishes_series_from_parallel() {
        let chain =
            Hierarchy::build(&Dag::new(3, &[(0, 1), (1, 2)]).expect("valid")).expect("reducible");
        let diamond =
            Hierarchy::build(&Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).expect("valid"))
                .expect("reducible");
        assert_ne!(chain.fingerprint(), diamond.fingerprint());
        // Deterministic: rebuilding the same DAG reproduces the value.
        let again =
            Hierarchy::build(&Dag::new(3, &[(0, 1), (1, 2)]).expect("valid")).expect("reducible");
        assert_eq!(chain.fingerprint(), again.fingerprint());
        // Nesting is tagged: a flat chain over {1,2} differs from the
        // parallel group over {1,2}.
        let bypass = Hierarchy::build(&Dag::new(3, &[(0, 1), (1, 2), (0, 2)]).expect("valid"))
            .expect("reducible");
        assert_ne!(chain.fingerprint(), bypass.fingerprint());
    }

    #[test]
    fn single_node_graph() {
        let d = Dag::new(1, &[]).expect("valid");
        let h = Hierarchy::build(&d).expect("reducible");
        assert_eq!(h.items, vec![Item::Node(0)]);
        assert_eq!(h.anl_total(&[1.0]), 1.0);
    }
}
