//! Average normalized length (ANL) labelling (paper §3.3).
//!
//! The reduction labels each node of the dominator tree with the average
//! normalized length of its function:
//!
//! ```text
//! ANL(f_i) = average over configurations c of  t_{f_i}(c) / Σ_j t_{f_j}(c)
//! ```
//!
//! where the sum runs over all functions of the application and the times
//! come from the performance profile. ANL captures the share of end-to-end
//! time a stage typically consumes, independent of any particular
//! configuration, and drives the proportional SLO split.

/// Computes ANL for each node given `times[node][k]` — the profiled
/// execution time of each node's function under the `k`-th configuration.
/// All nodes must supply the same number of configurations (the profile
/// grid), and at least one.
///
/// Returns one ANL per node; the values sum to 1 across nodes.
pub fn average_normalized_length(times: &[Vec<f64>]) -> Vec<f64> {
    assert!(!times.is_empty(), "ANL needs at least one node");
    let k = times[0].len();
    assert!(k > 0, "ANL needs at least one configuration");
    assert!(
        times.iter().all(|t| t.len() == k),
        "all nodes must profile the same configuration grid"
    );
    let n = times.len();
    let mut anl = vec![0.0f64; n];
    for c in 0..k {
        let total: f64 = times.iter().map(|t| t[c]).sum();
        assert!(total > 0.0, "configuration {c} has non-positive total time");
        for (i, t) in times.iter().enumerate() {
            anl[i] += t[c] / total;
        }
    }
    for v in &mut anl {
        *v /= k as f64;
    }
    anl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_times_equal_anl() {
        let times = vec![vec![10.0, 20.0], vec![10.0, 20.0]];
        let anl = average_normalized_length(&times);
        assert!((anl[0] - 0.5).abs() < 1e-12);
        assert!((anl[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn anl_sums_to_one() {
        let times = vec![
            vec![86.0, 50.0, 30.0],
            vec![293.0, 150.0, 80.0],
            vec![147.0, 90.0, 55.0],
        ];
        let anl = average_normalized_length(&times);
        let sum: f64 = anl.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // The slowest function carries the largest ANL.
        assert!(anl[1] > anl[0] && anl[1] > anl[2]);
    }

    #[test]
    fn single_node_gets_full_share() {
        let anl = average_normalized_length(&[vec![5.0]]);
        assert_eq!(anl, vec![1.0]);
    }

    #[test]
    fn proportionality_when_ratios_constant() {
        // If node times keep a 1:3 ratio across configs, ANL is exactly
        // (0.25, 0.75).
        let times = vec![vec![1.0, 10.0, 7.0], vec![3.0, 30.0, 21.0]];
        let anl = average_normalized_length(&times);
        assert!((anl[0] - 0.25).abs() < 1e-12);
        assert!((anl[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same configuration grid")]
    fn mismatched_grids_panic() {
        let _ = average_normalized_length(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn empty_grid_panics() {
        let _ = average_normalized_length(&[vec![], vec![]]);
    }
}
