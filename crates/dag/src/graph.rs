//! Validated directed acyclic graphs.

use esg_model::AppSpec;
use std::fmt;

/// Errors raised while constructing or analysing a DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// The graph has no nodes.
    Empty,
    /// An edge referenced a node index out of range.
    EdgeOutOfRange {
        /// Edge source.
        from: usize,
        /// Edge destination.
        to: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// The edge set contains a cycle (or a self loop).
    Cycle,
    /// A node is unreachable from the entry set.
    Unreachable {
        /// The unreachable node index.
        node: usize,
    },
    /// The DAG is not hierarchically reducible: a split has more than one
    /// join continuation, so the paper's reduction (Fig. 4) does not apply.
    NotReducible {
        /// The split node at which reduction failed.
        split: usize,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Empty => write!(f, "DAG has no nodes"),
            DagError::EdgeOutOfRange { from, to, nodes } => {
                write!(f, "edge ({from},{to}) out of range for {nodes} nodes")
            }
            DagError::Cycle => write!(f, "graph contains a cycle"),
            DagError::Unreachable { node } => {
                write!(f, "node {node} is unreachable from the entries")
            }
            DagError::NotReducible { split } => {
                write!(
                    f,
                    "DAG is not hierarchically reducible at split node {split}"
                )
            }
        }
    }
}

impl std::error::Error for DagError {}

/// A validated DAG with forward and backward adjacency.
#[derive(Clone, Debug)]
pub struct Dag {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    topo: Vec<u32>,
}

impl Dag {
    /// Builds a DAG from a node count and an edge list, validating indices,
    /// acyclicity, and reachability from the entry set (nodes without
    /// predecessors).
    pub fn new(n: usize, edges: &[(usize, usize)]) -> Result<Dag, DagError> {
        if n == 0 {
            return Err(DagError::Empty);
        }
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n || b >= n {
                return Err(DagError::EdgeOutOfRange {
                    from: a,
                    to: b,
                    nodes: n,
                });
            }
            if a == b {
                return Err(DagError::Cycle);
            }
            // Ignore duplicate edges: they do not change reachability,
            // dominance, or workflow join semantics.
            if !succs[a].contains(&(b as u32)) {
                succs[a].push(b as u32);
                preds[b].push(a as u32);
            }
        }

        // Kahn's algorithm: topological order + cycle detection.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut stack: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        // Process in ascending index order for deterministic topo output.
        stack.sort_unstable_by(|a, b| b.cmp(a));
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = stack.pop() {
            topo.push(v);
            // Collect newly-free successors, keep deterministic order.
            let mut freed: Vec<u32> = Vec::new();
            for &s in &succs[v as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    freed.push(s);
                }
            }
            freed.sort_unstable_by(|a, b| b.cmp(a));
            stack.extend(freed);
            stack.sort_unstable_by(|a, b| b.cmp(a));
        }
        if topo.len() != n {
            return Err(DagError::Cycle);
        }

        let dag = Dag { succs, preds, topo };
        // Every node must be reachable from some entry; with acyclicity this
        // is equivalent to "no node is in a cycle", already guaranteed, but a
        // node could still be an isolated island — that is fine (it is its
        // own entry). Nothing further to validate.
        Ok(dag)
    }

    /// Builds the DAG of an application spec.
    pub fn from_app(app: &AppSpec) -> Result<Dag, DagError> {
        Dag::new(app.nodes.len(), &app.edges)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the DAG has no nodes (cannot occur via the constructor).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of `v`.
    #[inline]
    pub fn succs(&self, v: usize) -> &[u32] {
        &self.succs[v]
    }

    /// Predecessors of `v`.
    #[inline]
    pub fn preds(&self, v: usize) -> &[u32] {
        &self.preds[v]
    }

    /// A topological order of all nodes (deterministic: lowest index first
    /// among ready nodes).
    #[inline]
    pub fn topo_order(&self) -> &[u32] {
        &self.topo
    }

    /// Nodes with no predecessors.
    pub fn entries(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&v| self.preds[v].is_empty())
            .collect()
    }

    /// Nodes with no successors.
    pub fn exits(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&v| self.succs[v].is_empty())
            .collect()
    }

    /// True when the DAG is a single chain.
    pub fn is_chain(&self) -> bool {
        self.entries().len() == 1
            && (0..self.len()).all(|v| self.succs[v].len() <= 1 && self.preds[v].len() <= 1)
    }

    /// A structural fingerprint of the DAG: FNV-1a over the node count and
    /// the sorted edge list. Two DAGs share a fingerprint iff they have the
    /// same shape (same node indices, same edges) — the raw component of
    /// the plan-cache key when the reduction of [`crate::Hierarchy`] is not
    /// applicable. Stable across processes (no pointer or RandomState
    /// input).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.len() as u64);
        for v in 0..self.len() {
            // succs are stored in first-seen edge order; hash sorted so
            // logically equal DAGs built from permuted edge lists agree.
            let mut ss = self.succs[v].clone();
            ss.sort_unstable();
            for s in ss {
                h.write_u64(v as u64);
                h.write_u64(s as u64);
            }
        }
        h.finish()
    }

    /// Whether `target` is reachable from `from` (inclusive of equality).
    pub fn reaches(&self, from: usize, target: usize) -> bool {
        if from == target {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![from as u32];
        seen[from] = true;
        while let Some(v) = stack.pop() {
            for &s in &self.succs[v as usize] {
                if s as usize == target {
                    return true;
                }
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Enumerates every path from `from` to `to` (small graphs only; used by
    /// tests to cross-check dominance by its all-paths definition).
    pub fn all_paths(&self, from: usize, to: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut path = vec![from];
        self.paths_rec(from, to, &mut path, &mut out);
        out
    }

    fn paths_rec(&self, cur: usize, to: usize, path: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur == to {
            out.push(path.clone());
            return;
        }
        for &s in &self.succs[cur] {
            path.push(s as usize);
            self.paths_rec(s as usize, to, path, out);
            path.pop();
        }
    }
}

/// A minimal FNV-1a hasher: deterministic across processes and platforms
/// (unlike `DefaultHasher`, whose keys are randomised per process), which
/// plan-cache fingerprints require so committed artifacts stay
/// comparable. Public because every fingerprint in the workspace (DAG
/// shape, reduced hierarchy, the scheduler's window keys) must mix with
/// the *same* function — duplicating the constants would let the copies
/// silently diverge.
#[derive(Clone, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    /// Mixes the little-endian bytes of `v` into the state.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::FnId;

    fn diamond() -> Dag {
        Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).expect("valid")
    }

    #[test]
    fn chain_properties() {
        let d = Dag::new(3, &[(0, 1), (1, 2)]).expect("valid");
        assert!(d.is_chain());
        assert_eq!(d.topo_order(), &[0, 1, 2]);
        assert_eq!(d.entries(), vec![0]);
        assert_eq!(d.exits(), vec![2]);
        assert!(d.reaches(0, 2));
        assert!(!d.reaches(2, 0));
    }

    #[test]
    fn diamond_properties() {
        let d = diamond();
        assert!(!d.is_chain());
        assert_eq!(d.entries(), vec![0]);
        assert_eq!(d.exits(), vec![3]);
        assert_eq!(d.topo_order(), &[0, 1, 2, 3]);
        assert_eq!(d.all_paths(0, 3).len(), 2);
    }

    #[test]
    fn cycle_detected() {
        assert_eq!(
            Dag::new(2, &[(0, 1), (1, 0)]).expect_err("cycle"),
            DagError::Cycle
        );
        assert_eq!(
            Dag::new(1, &[(0, 0)]).expect_err("self loop"),
            DagError::Cycle
        );
    }

    #[test]
    fn out_of_range_edge() {
        match Dag::new(2, &[(0, 5)]) {
            Err(DagError::EdgeOutOfRange {
                from: 0,
                to: 5,
                nodes: 2,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Dag::new(0, &[]).expect_err("empty"), DagError::Empty);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let d = Dag::new(2, &[(0, 1), (0, 1)]).expect("valid");
        assert_eq!(d.succs(0), &[1]);
        assert_eq!(d.preds(1), &[0]);
    }

    #[test]
    fn from_app_spec() {
        let app = AppSpec::pipeline("p", vec![FnId(0), FnId(1)]);
        let d = Dag::from_app(&app).expect("valid");
        assert!(d.is_chain());
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn topo_is_deterministic_and_valid() {
        let d = Dag::new(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)]).expect("ok");
        let topo = d.topo_order();
        // Every edge goes forward in topo order.
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, &v) in topo.iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for v in 0..6 {
            for &s in d.succs(v) {
                assert!(pos[v] < pos[s as usize]);
            }
        }
        // Lowest-index-first tie-break.
        assert_eq!(topo[0], 0);
        assert_eq!(topo[1], 1);
    }

    #[test]
    fn disconnected_island_is_its_own_entry() {
        let d = Dag::new(3, &[(0, 1)]).expect("valid");
        assert_eq!(d.entries(), vec![0, 2]);
    }

    #[test]
    fn all_paths_counts() {
        // Two stacked diamonds: 0->{1,2}->3->{4,5}->6 has 4 paths 0->6.
        let d = Dag::new(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        )
        .expect("valid");
        assert_eq!(d.all_paths(0, 6).len(), 4);
        assert_eq!(d.all_paths(6, 0).len(), 0);
        assert_eq!(d.all_paths(3, 3), vec![vec![3]]);
    }

    #[test]
    fn fingerprint_is_shape_sensitive_and_edge_order_insensitive() {
        let a = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).expect("valid");
        let b = Dag::new(4, &[(2, 3), (1, 3), (0, 2), (0, 1)]).expect("valid");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "edge order must not matter"
        );
        let chain = Dag::new(4, &[(0, 1), (1, 2), (2, 3)]).expect("valid");
        assert_ne!(a.fingerprint(), chain.fingerprint());
        let smaller = Dag::new(3, &[(0, 1), (1, 2)]).expect("valid");
        assert_ne!(
            chain.fingerprint(),
            smaller.fingerprint(),
            "node count hashed"
        );
    }
}
