//! DAG analysis substrate for ESG.
//!
//! ESG's *dominator-based SLO distribution* (paper §3.3, Fig. 4) keeps the
//! configuration search scalable on long workflows: it builds the dominator
//! tree of the application DAG, labels nodes with their *average normalized
//! length* (ANL), hierarchically reduces parallel branches into generated
//! nodes, partitions the resulting chain into groups of at most `g`
//! consecutive functions, and splits the end-to-end SLO across groups
//! proportionally to ANL. ESG_1Q then searches one group at a time.
//!
//! This crate provides the pieces in layers:
//!
//! * [`Dag`] — validated DAG with topological order and reachability;
//! * [`DominatorTree`] — iterative Cooper–Harvey–Kennedy dominators
//!   (the classic compiler algorithm family the paper cites);
//! * [`anl::average_normalized_length`] — ANL labelling from profiles;
//! * [`reduce::Hierarchy`] — the reduction of the dominator tree into a
//!   series/parallel chain structure (paper Fig. 4 b→d);
//! * [`slo::SloPlan`] — group partitioning + proportional SLO quotas.

#![warn(missing_docs)]

pub mod anl;
pub mod dominator;
pub mod graph;
pub mod reduce;
pub mod slo;

pub use anl::average_normalized_length;
pub use dominator::DominatorTree;
pub use graph::{Dag, DagError, Fnv};
pub use reduce::{Hierarchy, Item};
pub use slo::{SloGroup, SloPlan};
