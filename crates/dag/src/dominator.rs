//! Dominator trees (Cooper–Harvey–Kennedy).
//!
//! "A dominates B if all paths from the root to B must first reach A; an
//! immediate dominator is the closest dominator except the node itself"
//! (paper §3.3, quoting the dragon book). The paper builds the dominator
//! tree as the backbone of its SLO distribution.
//!
//! The implementation is the iterative data-flow algorithm of Cooper,
//! Harvey & Kennedy ("A Simple, Fast Dominance Algorithm"), which runs in
//! near-linear time on reducible graphs and is exact on any flow graph.
//! Multi-entry DAGs are handled with an implicit virtual root.

use crate::graph::Dag;

/// The dominator tree of a [`Dag`].
#[derive(Clone, Debug)]
pub struct DominatorTree {
    /// `idom[v]` — immediate dominator of `v`; `None` for the root (or, in a
    /// multi-entry DAG, for entries whose only dominator is the virtual
    /// root).
    idom: Vec<Option<u32>>,
    /// Children of each node in the dominator tree, ascending order.
    children: Vec<Vec<u32>>,
    /// Entry nodes (children of the conceptual root). A single-entry DAG
    /// has exactly one.
    roots: Vec<u32>,
}

impl DominatorTree {
    /// Builds the dominator tree of `dag`.
    pub fn build(dag: &Dag) -> DominatorTree {
        let n = dag.len();
        let entries = dag.entries();
        debug_assert!(!entries.is_empty(), "acyclic graph must have an entry");

        // Virtual root has index n; it precedes every entry.
        const UNDEF: u32 = u32::MAX;
        let vroot = n as u32;

        // Reverse postorder from the virtual root. For a DAG, any
        // topological order *of reachable nodes* is a valid RPO.
        let topo = dag.topo_order();
        let mut rpo: Vec<u32> = Vec::with_capacity(n + 1);
        rpo.push(vroot);
        rpo.extend(topo.iter().copied());
        // rpo_num[v] = position in RPO; virtual root gets 0.
        let mut rpo_num = vec![0u32; n + 1];
        for (i, &v) in rpo.iter().enumerate() {
            rpo_num[v as usize] = i as u32;
        }

        let is_entry = {
            let mut e = vec![false; n];
            for &v in &entries {
                e[v] = true;
            }
            e
        };

        let mut idom = vec![UNDEF; n + 1];
        idom[vroot as usize] = vroot;

        let intersect = |idom: &[u32], rpo_num: &[u32], mut a: u32, mut b: u32| -> u32 {
            while a != b {
                while rpo_num[a as usize] > rpo_num[b as usize] {
                    a = idom[a as usize];
                }
                while rpo_num[b as usize] > rpo_num[a as usize] {
                    b = idom[b as usize];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &v in rpo.iter().skip(1) {
                let v = v as usize;
                // Predecessors; entries additionally have the virtual root.
                let mut new_idom = UNDEF;
                if is_entry[v] {
                    new_idom = vroot;
                }
                for &p in dag.preds(v) {
                    if idom[p as usize] == UNDEF {
                        continue;
                    }
                    new_idom = if new_idom == UNDEF {
                        p
                    } else {
                        intersect(&idom, &rpo_num, p, new_idom)
                    };
                }
                debug_assert_ne!(new_idom, UNDEF, "node {v} has no processed pred");
                if idom[v] != new_idom {
                    idom[v] = new_idom;
                    changed = true;
                }
            }
        }

        let mut out_idom: Vec<Option<u32>> = Vec::with_capacity(n);
        let mut children = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for v in 0..n {
            if idom[v] == vroot {
                out_idom.push(None);
                roots.push(v as u32);
            } else {
                out_idom.push(Some(idom[v]));
                children[idom[v] as usize].push(v as u32);
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        DominatorTree {
            idom: out_idom,
            children,
            roots,
        }
    }

    /// Immediate dominator of `v` (`None` when `v` is an entry).
    #[inline]
    pub fn idom(&self, v: usize) -> Option<usize> {
        self.idom[v].map(|x| x as usize)
    }

    /// Children of `v` in the dominator tree.
    #[inline]
    pub fn children(&self, v: usize) -> &[u32] {
        &self.children[v]
    }

    /// Entry nodes (roots of the dominator forest; one for single-entry
    /// DAGs).
    #[inline]
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.idom.len()
    }

    /// True when the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.idom.is_empty()
    }

    /// True when `a` dominates `b` (reflexive: every node dominates itself).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Post-order traversal of the dominator forest (children before
    /// parents), deterministic.
    pub fn post_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack: Vec<(usize, bool)> = self
            .roots
            .iter()
            .rev()
            .map(|&r| (r as usize, false))
            .collect();
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                out.push(v);
            } else {
                stack.push((v, true));
                for &c in self.children(v).iter().rev() {
                    stack.push((c as usize, false));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dag;

    /// All-paths definition of dominance for cross-checking: `a` dominates
    /// `b` iff every path from any entry to `b` contains `a`.
    fn dominates_by_paths(dag: &Dag, a: usize, b: usize) -> bool {
        for e in dag.entries() {
            for path in dag.all_paths(e, b) {
                if !path.contains(&a) {
                    return false;
                }
            }
        }
        // b must be reachable from some entry for the statement to be about
        // actual paths; in our DAGs every node is reachable from an entry.
        true
    }

    #[test]
    fn chain_dominators() {
        let d = Dag::new(3, &[(0, 1), (1, 2)]).expect("valid");
        let t = DominatorTree::build(&d);
        assert_eq!(t.idom(0), None);
        assert_eq!(t.idom(1), Some(0));
        assert_eq!(t.idom(2), Some(1));
        assert_eq!(t.roots(), &[0]);
        assert!(t.dominates(0, 2));
        assert!(t.dominates(2, 2));
        assert!(!t.dominates(2, 0));
    }

    #[test]
    fn diamond_join_dominated_by_split() {
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).expect("valid");
        let t = DominatorTree::build(&d);
        assert_eq!(t.idom(1), Some(0));
        assert_eq!(t.idom(2), Some(0));
        // Join is dominated by the split, not by either branch.
        assert_eq!(t.idom(3), Some(0));
        assert_eq!(t.children(0), &[1, 2, 3]);
    }

    #[test]
    fn bypass_edge() {
        // 0 -> 1 -> 2 and 0 -> 2: idom(2) = 0.
        let d = Dag::new(3, &[(0, 1), (1, 2), (0, 2)]).expect("valid");
        let t = DominatorTree::build(&d);
        assert_eq!(t.idom(2), Some(0));
    }

    #[test]
    fn nested_diamonds() {
        // 0 -> {1, 2}; 1 -> {3, 4} -> 5; {5, 2} -> 6
        let d = Dag::new(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (1, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (2, 6),
            ],
        )
        .expect("valid");
        let t = DominatorTree::build(&d);
        assert_eq!(t.idom(5), Some(1));
        assert_eq!(t.idom(6), Some(0));
        assert!(t.dominates(1, 5));
        assert!(!t.dominates(1, 6));
    }

    #[test]
    fn multi_entry_forest() {
        // Two entries joining: 0 -> 2 <- 1.
        let d = Dag::new(3, &[(0, 2), (1, 2)]).expect("valid");
        let t = DominatorTree::build(&d);
        assert_eq!(t.idom(0), None);
        assert_eq!(t.idom(1), None);
        // 2 is dominated only by the virtual root.
        assert_eq!(t.idom(2), None);
        let mut roots = t.roots().to_vec();
        roots.sort_unstable();
        assert_eq!(roots, vec![0, 1, 2]);
    }

    #[test]
    fn post_order_children_before_parents() {
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).expect("valid");
        let t = DominatorTree::build(&d);
        let po = t.post_order();
        assert_eq!(po.len(), 4);
        let pos = |v: usize| po.iter().position(|&x| x == v).expect("present");
        assert!(pos(1) < pos(0));
        assert!(pos(2) < pos(0));
        assert!(pos(3) < pos(0));
    }

    #[test]
    fn matches_all_paths_definition_on_fixed_graphs() {
        let graphs: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (3, vec![(0, 1), (1, 2)]),
            (4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]),
            (3, vec![(0, 1), (1, 2), (0, 2)]),
            (
                7,
                vec![
                    (0, 1),
                    (0, 2),
                    (1, 3),
                    (1, 4),
                    (3, 5),
                    (4, 5),
                    (5, 6),
                    (2, 6),
                ],
            ),
            (5, vec![(0, 1), (0, 2), (1, 3), (2, 4)]),
        ];
        for (n, edges) in graphs {
            let d = Dag::new(n, &edges).expect("valid");
            let t = DominatorTree::build(&d);
            for a in 0..n {
                for b in 0..n {
                    let reachable = d.entries().iter().any(|&e| d.reaches(e, b));
                    if !reachable {
                        continue;
                    }
                    assert_eq!(
                        t.dominates(a, b),
                        dominates_by_paths(&d, a, b),
                        "dominates({a},{b}) mismatch on {edges:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_figure4_shape() {
        // A DAG in the spirit of Fig. 4(a): a chain with a two-branch split
        // that itself contains a nested split, later rejoining.
        //  a(0)->b(1)->c(2)->d(3); c->e(4);
        //  d->h(5); e->i(6)->j(7); e->g(8)->f(9);
        //  {j,f}->m(10)? -- simplified: j->k(10), f->k(10); {h,k}->n(11)->o(12)
        let edges = vec![
            (0, 1),
            (1, 2),
            (2, 3),
            (2, 4),
            (3, 5),
            (4, 6),
            (6, 7),
            (4, 8),
            (8, 9),
            (7, 10),
            (9, 10),
            (5, 11),
            (10, 11),
            (11, 12),
        ];
        let d = Dag::new(13, &edges).expect("valid");
        let t = DominatorTree::build(&d);
        // The split at c(2) dominates both branch heads and the join n(11).
        assert_eq!(t.idom(3), Some(2));
        assert_eq!(t.idom(4), Some(2));
        assert_eq!(t.idom(11), Some(2));
        // The inner split at e(4) dominates the inner join k(10).
        assert_eq!(t.idom(10), Some(4));
        // The tail o(12) continues from n(11).
        assert_eq!(t.idom(12), Some(11));
    }
}
