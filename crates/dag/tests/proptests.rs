//! Property tests for the DAG substrate: dominance against its all-paths
//! definition, and SLO-plan invariants on random series-parallel DAGs.

use esg_dag::{average_normalized_length, Dag, DominatorTree, SloPlan};
use proptest::prelude::*;

/// Random small DAG: edges only go from lower to higher indices, so the
/// result is acyclic by construction.
fn arb_dag(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..=max_n).prop_flat_map(|n| {
        let all_edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .collect();
        let m = all_edges.len();
        (proptest::collection::vec(any::<bool>(), m)).prop_map(move |mask| {
            let edges: Vec<(usize, usize)> = all_edges
                .iter()
                .zip(&mask)
                .filter(|(_, &keep)| keep)
                .map(|(&e, _)| e)
                .collect();
            (n, edges)
        })
    })
}

/// Generator for series-parallel structures whose parallel branches always
/// contain at least one node. Returns `(n, edges, source, sink)`.
#[derive(Debug, Clone)]
enum Sp {
    Node,
    Seq(Vec<Sp>),
    Par(Vec<Sp>),
}

fn arb_sp(depth: u32) -> impl Strategy<Value = Sp> {
    let leaf = Just(Sp::Node);
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Sp::Seq),
            proptest::collection::vec(inner, 2..4).prop_map(Sp::Par),
        ]
    })
}

/// Materialises an SP structure between fresh entry/exit nodes.
/// Every branch of a `Par` gets at least its own nodes (no bare edges).
fn build_sp(sp: &Sp, nodes: &mut usize, edges: &mut Vec<(usize, usize)>) -> (usize, usize) {
    match sp {
        Sp::Node => {
            let v = *nodes;
            *nodes += 1;
            (v, v)
        }
        Sp::Seq(parts) => {
            let mut first = None;
            let mut last: Option<usize> = None;
            for p in parts {
                let (s, t) = build_sp(p, nodes, edges);
                if let Some(prev) = last {
                    edges.push((prev, s));
                }
                first.get_or_insert(s);
                last = Some(t);
            }
            (first.expect("non-empty seq"), last.expect("non-empty seq"))
        }
        Sp::Par(branches) => {
            // Dedicated split and join nodes so branches never share ends.
            let split = *nodes;
            *nodes += 1;
            let join_placeholder = usize::MAX;
            let mut tails = Vec::new();
            for b in branches {
                let (s, t) = build_sp(b, nodes, edges);
                edges.push((split, s));
                tails.push(t);
            }
            let join = *nodes;
            *nodes += 1;
            for t in tails {
                edges.push((t, join));
            }
            let _ = join_placeholder;
            (split, join)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CHK dominators agree with the all-paths definition of dominance.
    #[test]
    fn dominators_match_paths_definition((n, edges) in arb_dag(7)) {
        let dag = Dag::new(n, &edges).expect("acyclic by construction");
        let t = DominatorTree::build(&dag);
        let entries = dag.entries();
        for b in 0..n {
            let reachable = entries.iter().any(|&e| dag.reaches(e, b));
            prop_assert!(reachable, "every node of an ascending-edge DAG is reachable");
            for a in 0..n {
                let by_tree = t.dominates(a, b);
                let by_paths = entries.iter().all(|&e| {
                    dag.all_paths(e, b).iter().all(|p| p.contains(&a))
                });
                prop_assert_eq!(by_tree, by_paths, "dominates({},{})", a, b);
            }
        }
    }

    /// idom is a strict dominator and dominates every other dominator's
    /// candidate position (it is the *closest*).
    #[test]
    fn idom_is_strict_and_closest((n, edges) in arb_dag(8)) {
        let dag = Dag::new(n, &edges).expect("acyclic");
        let t = DominatorTree::build(&dag);
        for v in 0..n {
            if let Some(d) = t.idom(v) {
                prop_assert_ne!(d, v);
                prop_assert!(t.dominates(d, v));
                // Every strict dominator of v dominates idom(v).
                for a in 0..n {
                    if a != v && t.dominates(a, v) {
                        prop_assert!(t.dominates(a, d));
                    }
                }
            }
        }
    }

    /// ANL labels always sum to one across the nodes of an app.
    #[test]
    fn anl_sums_to_one(times in proptest::collection::vec(
        proptest::collection::vec(1.0f64..1000.0, 4), 1..8)) {
        let anl = average_normalized_length(&times);
        let sum: f64 = anl.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(anl.iter().all(|&a| a > 0.0));
    }

    /// SLO plans on random series-parallel DAGs: full coverage, bounded
    /// group size, positive quotas, and every source→sink path's distinct
    /// group fractions sum to exactly 1.
    #[test]
    fn slo_plan_invariants(sp in arb_sp(3), g in 1usize..5) {
        let mut n = 0usize;
        let mut edges = Vec::new();
        let (source, sink) = build_sp(&sp, &mut n, &mut edges);
        prop_assume!(n <= 24);
        let dag = Dag::new(n, &edges).expect("sp graphs are DAGs");
        let anl: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let total: f64 = anl.iter().sum();
        let anl: Vec<f64> = anl.into_iter().map(|a| a / total).collect();

        let plan = SloPlan::build(&dag, &anl, g).expect("sp graphs are reducible");

        // Coverage and group size.
        let mut seen = vec![0usize; n];
        for grp in plan.groups() {
            prop_assert!(grp.members.len() <= g);
            prop_assert!(grp.fraction > 0.0);
            for &m in &grp.members {
                seen[m] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));

        // Path sums: every complete path crosses groups totalling 1.
        for path in dag.all_paths(source, sink) {
            let mut groups: Vec<usize> = path.iter().map(|&v| plan.group_of(v)).collect();
            groups.sort_unstable();
            groups.dedup();
            let sum: f64 = groups.iter().map(|&gi| plan.groups()[gi].fraction).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "path {:?} sums to {}", path, sum);
        }
    }
}
