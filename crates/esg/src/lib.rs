//! Facade crate: the full ESG reproduction behind one dependency.
//!
//! Re-exports the public API of every workspace crate:
//!
//! * [`model`] — domain types, Table-3 catalog, applications, scenarios;
//! * [`dag`] — dominator trees and dominator-based SLO distribution;
//! * [`profile`] — the performance-profile substrate;
//! * [`workload`] — arrival generators and the EWMA predictor;
//! * [`sim`] — the discrete-event serverless platform;
//! * [`core`] — the ESG scheduling algorithm;
//! * [`baselines`] — INFless, FaST-GShare, Orion, Aquatope.
//!
//! # Quickstart
//!
//! ```
//! use esg::prelude::*;
//!
//! // A strict-light scenario on the paper's standard environment.
//! let env = SimEnv::standard(SloClass::Strict);
//! let workload = WorkloadGen::new(
//!     WorkloadClass::Light,
//!     esg::model::standard_app_ids(),
//!     42,
//! )
//! .generate(50);
//!
//! let mut esg = EsgScheduler::new();
//! let result = run_simulation(&env, SimConfig::default(), &mut esg, &workload, "demo");
//! assert_eq!(result.arrivals, 50);
//! println!("SLO hit rate: {:.1}%", result.avg_hit_rate() * 100.0);
//! ```

#![warn(missing_docs)]

pub use esg_baselines as baselines;
pub use esg_core as core;
pub use esg_dag as dag;
pub use esg_model as model;
pub use esg_profile as profile;
pub use esg_sim as sim;
pub use esg_workload as workload;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use esg_baselines::{
        AquatopeScheduler, FastGShareScheduler, InflessScheduler, OrionScheduler,
    };
    pub use esg_core::{
        BandwidthAwarePacking, EsgCrossQueuePacking, EsgScheduler, HybridScheduler, PinPlanner,
        PlanCache, SearchScratch, SearchVariant,
    };
    pub use esg_dag::{Dag, DominatorTree, SloPlan};
    pub use esg_model::{
        standard_apps, standard_catalog, AppId, AppSpec, ChurnPlan, ClusterSpec, Config,
        ConfigGrid, FnId, NodeClass, NodeId, PriceModel, Resources, Scenario, SimTime, SloClass,
        TrafficShape, WorkloadClass,
    };
    pub use esg_profile::{latency_ms, NoiseModel, ProfileTable, TransferModel};
    pub use esg_sim::{
        dispatch_trace, fnv64, run_simulation, run_streamed, AdmissionDecision, AdmissionPlan,
        BandwidthPackingConfig, Capabilities, ClusterState, DataPlane, DataPlaneConfig,
        DataPlaneView, EventKind, EventLog, EventQueueKind, EventRecord, ExperimentResult,
        HealthSnapshot, MemoryFootprint, MinScheduler, Monitored, NodeLoad, NodeSummary,
        NodeTransferStats, NodeView, OverheadModel, PackingConfig, Pin, PinPlan, PinnedStats,
        PinningConfig, PolicySpec, PolicyStack, PolicyStats, QueueCounters, QueueHealth,
        QueueHealthMonitor, QueuePartitioner, QueueView, RankedQueues, RoundCtx, RoundPolicy,
        SchedCtx, Scheduler, SchedulerEvent, SchedulerStats, ServerMap, ShardStats,
        ShardedController, ShedReason, Sim, SimBuilder, SimConfig, SimEnv, SimError, Simulation,
        SloAdmission, SloAdmissionConfig, TraceError, TraceFile, TraceRecorder, TraceReplay,
        Traced, TransferCounters, TransferSummary,
    };
    pub use esg_workload::{
        shaped_stream, shaped_stream_with, shaped_workload, shaped_workload_with, ArrivalPredictor,
        ArrivalStream, AzureLikeTrace, Popularity, PopularityProfile, RateFn, Workload,
        WorkloadGen,
    };
}
