//! Live queue-health dashboard: periodic per-queue
//! latency/backlog/shed snapshots — plus cross-shard conflict counters —
//! rolled up from the [`EventLog`] tap while a run executes.
//!
//! [`QueueHealthMonitor`] consumes the same [`SchedulerEvent`] stream as
//! every other observability sink and cuts a [`HealthSnapshot`] each
//! time simulated time crosses its sampling interval. Wrap any
//! scheduler in [`Monitored`] to collect snapshots without touching the
//! scheduler itself; `esg-bench` renders them as a text dashboard or
//! CSV (see `examples/queue_dashboard.rs`).
//!
//! ```
//! use esg_model::{AppId, InvocationId};
//! use esg_sim::{QueueHealthMonitor, QueueKey, SchedulerEvent};
//!
//! let mut mon = QueueHealthMonitor::new(1_000.0, 1);
//! let key = QueueKey { app: AppId(0), stage: 0 };
//! mon.observe(&SchedulerEvent::JobArrived {
//!     key,
//!     invocation: InvocationId(0),
//!     now_ms: 10.0,
//! });
//! // Crossing the 1-second boundary cuts a snapshot of everything
//! // observed before it.
//! mon.observe(&SchedulerEvent::RecheckTick { now_ms: 1_500.0 });
//! let snaps = mon.snapshots();
//! assert_eq!(snaps.len(), 1);
//! assert_eq!(snaps[0].at_ms, 1_000.0);
//! assert_eq!(snaps[0].total_backlog, 1);
//! ```

use crate::eventlog::{EventLog, QueueCounters, TransferCounters};
use crate::sched::{
    Capabilities, Outcome, QueueKey, RoundCtx, SchedCtx, Scheduler, SchedulerEvent, SchedulerStats,
};
use crate::shard::{QueuePartitioner, ShardStats};
use esg_model::{Config, NodeId};

/// One queue's health at a snapshot instant. Counters are cumulative
/// since the start of the run (the dashboard diffs consecutive
/// snapshots when it wants rates); `backlog` is the live queue depth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueHealth {
    /// The queue.
    pub key: QueueKey,
    /// The shard that owns the queue under the run's partitioning
    /// (always 0 on the classic single driver).
    pub shard: usize,
    /// Jobs currently queued.
    pub backlog: u64,
    /// Cumulative counters behind the rollup (arrivals, dispatches,
    /// completions, sheds, queue-wait aggregates).
    pub counters: QueueCounters,
}

impl QueueHealth {
    /// Mean queue wait of dispatched jobs so far, ms.
    pub fn mean_wait_ms(&self) -> f64 {
        self.counters.mean_wait_ms()
    }

    /// Largest observed per-job queue wait so far, ms.
    pub fn max_wait_ms(&self) -> f64 {
        self.counters.wait_max_ms
    }
}

/// A point-in-time rollup across every queue the event stream has
/// touched, cut by [`QueueHealthMonitor`] at each sampling boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthSnapshot {
    /// The sampling boundary the snapshot represents, ms of simulated
    /// time. Events at exactly this instant belong to the *next*
    /// snapshot.
    pub at_ms: f64,
    /// Per-queue health, ordered by `(app, stage)` for stable rendering.
    pub queues: Vec<QueueHealth>,
    /// Live backlog summed across queues.
    pub total_backlog: u64,
    /// Cumulative shard-commit counters (all zero on the classic single
    /// driver; a climbing `conflicts`-to-`commits` ratio between
    /// consecutive snapshots is a cross-shard conflict storm).
    pub shard: ShardStats,
    /// Cumulative data-plane transfer counters (all zero on scalar runs,
    /// which emit no transfer events; `inflight` is the live count at
    /// the boundary).
    pub transfers: TransferCounters,
    /// Cumulative static-pinning-tier counters (all zero for purely
    /// dynamic schedulers; [`Monitored`] refreshes them from the wrapped
    /// scheduler's [`SchedulerStats`] as events flow).
    pub pinned: crate::pinning::PinnedStats,
}

impl HealthSnapshot {
    /// The health row for `key`, if the queue has appeared.
    pub fn queue(&self, key: QueueKey) -> Option<&QueueHealth> {
        self.queues.iter().find(|q| q.key == key)
    }
}

/// Rolls the control-plane event stream into periodic
/// [`HealthSnapshot`]s.
///
/// Feed it every event (via [`observe`](Self::observe), or by wrapping
/// the scheduler in [`Monitored`]); whenever an event's simulated time
/// reaches the next sampling boundary, the monitor cuts one snapshot
/// per elapsed interval (idle gaps repeat the last state, so snapshot
/// spacing is always exactly `interval_ms`).
#[derive(Clone, Debug)]
pub struct QueueHealthMonitor {
    interval_ms: f64,
    next_at_ms: f64,
    partitioner: QueuePartitioner,
    log: EventLog,
    pinned: crate::pinning::PinnedStats,
    snapshots: Vec<HealthSnapshot>,
}

impl QueueHealthMonitor {
    /// A monitor sampling every `interval_ms` of simulated time, mapping
    /// queues to `shards` shards (pass the run's `SimConfig::shards`;
    /// the partitioning is the same stable hash the control plane uses).
    ///
    /// # Panics
    /// When `interval_ms` is not finite and positive, or `shards == 0`.
    pub fn new(interval_ms: f64, shards: usize) -> QueueHealthMonitor {
        assert!(
            interval_ms.is_finite() && interval_ms > 0.0,
            "sampling interval must be finite and > 0, got {interval_ms}"
        );
        QueueHealthMonitor {
            interval_ms,
            next_at_ms: interval_ms,
            partitioner: QueuePartitioner::new(shards),
            // Counters are exact at any ring capacity and the monitor
            // only reads counters, so keep the replay ring minimal.
            log: EventLog::with_capacity(1),
            pinned: crate::pinning::PinnedStats::default(),
            snapshots: Vec::new(),
        }
    }

    /// Updates the static-pinning-tier counters carried by subsequent
    /// snapshots. The pinned tier reports through `SchedulerStats`, not
    /// the event stream, so the scheduler's wrapper (e.g. [`Monitored`])
    /// pushes the counters in as they change.
    pub fn note_pinned(&mut self, pinned: crate::pinning::PinnedStats) {
        self.pinned = pinned;
    }

    /// The sampling interval, ms.
    pub fn interval_ms(&self) -> f64 {
        self.interval_ms
    }

    /// Ingests one control-plane event, cutting snapshots for every
    /// sampling boundary the event's timestamp has crossed.
    pub fn observe(&mut self, event: &SchedulerEvent<'_>) {
        let now = event.now_ms();
        while now >= self.next_at_ms {
            let snap = self.snapshot_at(self.next_at_ms);
            self.snapshots.push(snap);
            self.next_at_ms += self.interval_ms;
        }
        self.log.observe(event);
    }

    /// The snapshots cut so far, oldest first.
    pub fn snapshots(&self) -> &[HealthSnapshot] {
        &self.snapshots
    }

    /// Cuts one final snapshot at `now_ms` (e.g. the run's makespan) and
    /// returns the full series — any sampling boundaries not yet crossed
    /// by an observed event, then the closing state.
    pub fn finish(mut self, now_ms: f64) -> Vec<HealthSnapshot> {
        while now_ms >= self.next_at_ms {
            let snap = self.snapshot_at(self.next_at_ms);
            self.snapshots.push(snap);
            self.next_at_ms += self.interval_ms;
        }
        let last = self.snapshot_at(now_ms);
        self.snapshots.push(last);
        self.snapshots
    }

    /// Builds the rollup of everything observed so far, stamped `at_ms`.
    fn snapshot_at(&self, at_ms: f64) -> HealthSnapshot {
        let mut queues: Vec<QueueHealth> = self
            .log
            .queues()
            .map(|(&key, &counters)| QueueHealth {
                key,
                shard: self.partitioner.shard_of(key),
                backlog: counters.backlog,
                counters,
            })
            .collect();
        queues.sort_by_key(|q| (q.key.app.0, q.key.stage));
        HealthSnapshot {
            at_ms,
            total_backlog: queues.iter().map(|q| q.backlog).sum(),
            queues,
            shard: self.log.shard_stats(),
            transfers: self.log.transfer_stats(),
            pinned: self.pinned,
        }
    }
}

/// Wraps a scheduler and feeds every control-plane event through a
/// [`QueueHealthMonitor`] — the zero-intrusion way to collect dashboard
/// snapshots from any run (same shape as
/// [`Traced`](crate::trace::Traced), different sink).
pub struct Monitored {
    /// The wrapped scheduler.
    pub inner: Box<dyn Scheduler>,
    /// The dashboard sink.
    pub monitor: QueueHealthMonitor,
}

impl Monitored {
    /// Wraps `inner`, sampling every `interval_ms` over `shards` shards.
    pub fn new(inner: Box<dyn Scheduler>, interval_ms: f64, shards: usize) -> Monitored {
        Monitored {
            inner,
            monitor: QueueHealthMonitor::new(interval_ms, shards),
        }
    }
}

impl Scheduler for Monitored {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome {
        self.inner.schedule(ctx)
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        self.inner.place(ctx, config)
    }

    fn schedule_round(&mut self, ctx: &RoundCtx<'_>) -> Vec<(QueueKey, Outcome)> {
        // Forwarded so a wrapped scheduler's round-policy stack (if any)
        // is exercised rather than silently replaced by the default
        // one-queue replay.
        self.inner.schedule_round(ctx)
    }

    fn on_event(&mut self, event: &SchedulerEvent<'_>) {
        // Pinned-tier counters live in the wrapped scheduler's stats,
        // not the event stream — refresh before the monitor may cut a
        // snapshot so the boundary sees the latest values.
        self.monitor.note_pinned(self.inner.stats().pinned);
        self.monitor.observe(event);
        self.inner.on_event(event);
    }

    fn stats(&self) -> SchedulerStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::{AppId, InvocationId};

    fn key(app: u32, stage: usize) -> QueueKey {
        QueueKey {
            app: AppId(app),
            stage,
        }
    }

    #[test]
    fn boundaries_cut_one_snapshot_per_interval() {
        let mut mon = QueueHealthMonitor::new(100.0, 2);
        mon.observe(&SchedulerEvent::JobArrived {
            key: key(0, 0),
            invocation: InvocationId(0),
            now_ms: 10.0,
        });
        // 350 ms crosses the 100/200/300 boundaries: three snapshots,
        // all reflecting the single arrival.
        mon.observe(&SchedulerEvent::RecheckTick { now_ms: 350.0 });
        let snaps = mon.snapshots();
        assert_eq!(
            snaps.iter().map(|s| s.at_ms).collect::<Vec<_>>(),
            vec![100.0, 200.0, 300.0]
        );
        assert!(snaps.iter().all(|s| s.total_backlog == 1));
        let q = snaps[0].queue(key(0, 0)).expect("tracked");
        assert_eq!(q.counters.arrivals, 1);
        assert_eq!(q.shard, QueuePartitioner::new(2).shard_of(key(0, 0)));
    }

    #[test]
    fn snapshots_track_drains_and_shard_counters() {
        let mut mon = QueueHealthMonitor::new(50.0, 4);
        let k = key(1, 0);
        for i in 0..3u64 {
            mon.observe(&SchedulerEvent::JobArrived {
                key: k,
                invocation: InvocationId(i),
                now_ms: 5.0,
            });
        }
        let invs = [InvocationId(0), InvocationId(1)];
        mon.observe(&SchedulerEvent::Dispatched {
            key: k,
            invocations: &invs,
            config: Config::MIN,
            node: NodeId(0),
            now_ms: 20.0,
        });
        mon.observe(&SchedulerEvent::ShardCommit {
            shard: 1,
            commits: 1,
            conflicts: 2,
            retries: 1,
            now_ms: 20.0,
        });
        let snaps = mon.finish(60.0);
        assert_eq!(snaps.len(), 2, "one boundary + the closing snapshot");
        let last = snaps.last().expect("closing snapshot");
        assert_eq!(last.at_ms, 60.0);
        assert_eq!(last.total_backlog, 1);
        let q = last.queue(k).expect("tracked");
        assert_eq!(q.counters.dispatched_jobs, 2);
        assert!((q.mean_wait_ms() - 15.0).abs() < 1e-12);
        assert_eq!(last.shard.commits, 1);
        assert_eq!(last.shard.conflicts, 2);
        assert_eq!(last.shard.retries, 1);
    }

    #[test]
    fn snapshots_carry_transfer_counters() {
        let mut mon = QueueHealthMonitor::new(100.0, 1);
        mon.observe(&SchedulerEvent::TransferStarted {
            node: NodeId(1),
            mb: 32.0,
            now_ms: 10.0,
        });
        mon.observe(&SchedulerEvent::TransferQueued {
            node: NodeId(1),
            mb: 512.0,
            now_ms: 20.0,
        });
        mon.observe(&SchedulerEvent::TransferCompleted {
            node: NodeId(1),
            mb: 32.0,
            now_ms: 90.0,
        });
        let snaps = mon.finish(150.0);
        let last = snaps.last().expect("closing snapshot");
        assert_eq!(last.transfers.started, 1);
        assert_eq!(last.transfers.queued, 1);
        assert_eq!(last.transfers.completed, 1);
        assert_eq!(last.transfers.inflight, 0);
        assert!((last.transfers.total_mb - 32.0).abs() < 1e-12);
        assert_eq!(snaps[0].transfers, last.transfers, "cumulative counters");
    }

    #[test]
    fn snapshots_carry_pinned_counters() {
        use crate::pinning::PinnedStats;
        let mut mon = QueueHealthMonitor::new(100.0, 1);
        mon.observe(&SchedulerEvent::JobArrived {
            key: key(0, 0),
            invocation: InvocationId(0),
            now_ms: 10.0,
        });
        mon.note_pinned(PinnedStats {
            hits: 7,
            misses: 2,
            repins: 1,
        });
        let snaps = mon.finish(150.0);
        let last = snaps.last().expect("closing snapshot");
        assert_eq!(last.pinned.hits, 7);
        assert_eq!(last.pinned.misses, 2);
        assert_eq!(last.pinned.repins, 1);
    }

    #[test]
    #[should_panic(expected = "sampling interval")]
    fn zero_interval_is_rejected() {
        QueueHealthMonitor::new(0.0, 1);
    }
}
