//! Discrete-event serverless-platform simulator.
//!
//! The paper evaluates ESG with "a framework that can emulate various
//! serverless workloads and scenarios … based on actual performance of the
//! serverless functions measured on actual machines" (§4). This crate is
//! that framework, rebuilt as a deterministic discrete-event simulation:
//!
//! * a cluster of invoker nodes — the paper's homogeneous Table-2 testbed
//!   (16 nodes × 16 vCPUs × 7 MIG vGPUs) by default, or any
//!   `esg_model::ClusterSpec` of heterogeneous node classes (per-class
//!   capacity, execution-speed, link, and price scale factors), with
//!   scripted churn (`esg_model::ChurnPlan` node drains/joins) applied by
//!   the event loop mid-run;
//! * container lifecycle with Table-3 cold starts, a 10-minute keep-alive
//!   (OpenWhisk's policy, §2), and EWMA-driven pre-warming (§4);
//! * app-function-wise (AFW) job queues on the controller (§3.1);
//! * a controller loop that scans queues round-robin, charges each
//!   scheduling decision's search effort as controller busy time, maintains
//!   the recheck list, and forces minimum-configuration dispatch after
//!   three failed rounds (§3.1);
//! * per-job data transfers that are cheap on-node and expensive across
//!   nodes (§3.4);
//! * metrics for every figure of §5: SLO hits, per-app latency series,
//!   cost, scheduling-overhead distribution, configuration-miss rates,
//!   cold/warm starts, and GPU/CPU utilisation.
//!
//! Scheduling algorithms plug in through the [`Scheduler`] trait; the ESG
//! algorithm lives in `esg-core` and the four baselines in `esg-baselines`.
//!
//! # Overhead model
//!
//! The paper reports scheduler overhead in milliseconds on its testbed
//! (Fig. 9, Fig. 10, §5.3). A Rust reimplementation is orders of magnitude
//! faster in wall-clock terms, so charging *measured* wall time would erase
//! the trade-off the paper studies. Instead, schedulers report their search
//! effort in *expanded configurations*, and [`OverheadModel`] converts the
//! effort into simulated controller time, calibrated so a brute-force
//! search of a 3-stage group at 256 configurations per function costs the
//! paper's 7258 ms (§5.3: ≈0.43 µs per expansion). Real wall time is also
//! recorded, and both are reported in the generated `EXPERIMENTS.md` at
//! the workspace root (rendered by `esg-bench`'s emitter from the
//! `BENCH_<suite>.json` artifacts).

#![warn(missing_docs)]

pub mod arena;
pub mod builder;
pub mod cluster;
pub mod dataplane;
pub mod event;
pub mod eventlog;
pub mod health;
pub mod metrics;
pub mod pinning;
pub mod platform;
pub mod policy;
pub mod sched;
pub mod shard;
pub mod state;
pub mod trace;
pub mod wheel;
pub mod workflow;

pub use arena::Arena;
pub use builder::{Sim, SimBuilder, SimError};
pub use cluster::{Cluster, Node};
pub use dataplane::{
    BandwidthPool, DataPlane, DataPlaneConfig, DataPlaneView, NodeLoad, NodeTransferStats,
    TransferSummary,
};
pub use event::{Event, EventQueue, EventQueueKind};
pub use eventlog::{EventKind, EventLog, EventRecord, QueueCounters, TransferCounters};
pub use health::{HealthSnapshot, Monitored, QueueHealth, QueueHealthMonitor};
pub use metrics::{AppMetrics, ExperimentResult, NodeSummary};
pub use pinning::{Pin, PinPlan, PinnedStats, PinningConfig, ServerMap};
pub use platform::{
    run_simulation, run_streamed, MemoryFootprint, MinScheduler, SimConfig, SimEnv, Simulation,
};
pub use policy::{
    gslo_attainable, AdmissionDecision, AdmissionPlan, BandwidthPackingConfig, PackingConfig,
    PolicySpec, PolicyStack, PolicyStats, RankedQueues, RoundPolicy, ShedReason, SloAdmission,
    SloAdmissionConfig,
};
pub use sched::{
    fill_job_views, home_node, place_locality_first, place_min_fragmentation, Capabilities,
    JobView, Outcome, OverheadModel, QueueKey, QueueView, RoundCtx, SchedCtx, Scheduler,
    SchedulerEvent, SchedulerStats,
};
pub use shard::{QueuePartitioner, ShardStats, ShardedController};
pub use state::{ClusterState, NodeView};
pub use trace::{
    dispatch_trace, fnv64, TraceError, TraceFile, TraceRecorder, TraceReplay, Traced, TRACE_FORMAT,
    TRACE_VERSION, TRACE_VERSION_MINOR,
};
pub use wheel::TimerWheel;
pub use workflow::{AfwQueue, Job, WorkflowInstance};
