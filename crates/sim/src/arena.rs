//! Flat, index-addressed object storage.
//!
//! [`Arena`] backs the platform's per-invocation and per-task state:
//! entries live in one contiguous `Vec` and are addressed by `u32`
//! slot, with freed slots recycled LIFO. Compared to the `HashMap`s it
//! replaced, lookups are a bounds-checked array index (no hashing, no
//! per-entry boxes) and the memory high-water mark is observable — the
//! streaming replay bench asserts its RSS proxy from
//! [`Arena::peak_live`] / [`Arena::slots`].
//!
//! Slot reuse means a stale slot index can address a *different* live
//! entry; callers that hold slots across frees (the platform's `Job`s,
//! which can outlive a shed invocation) must validate identity on
//! access, e.g. by comparing a stored id.

/// A slab of `T` with LIFO slot reuse and live/high-water accounting.
#[derive(Clone, Debug)]
pub struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
        }
    }

    /// Stores `value`, returning its slot (recycling freed slots LIFO).
    pub fn insert(&mut self, value: T) -> u32 {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(value);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena overflow");
                self.slots.push(Some(value));
                slot
            }
        }
    }

    /// The entry at `slot`, if live.
    #[inline]
    pub fn get(&self, slot: u32) -> Option<&T> {
        self.slots.get(slot as usize).and_then(Option::as_ref)
    }

    /// Mutable access to the entry at `slot`, if live.
    #[inline]
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut T> {
        self.slots.get_mut(slot as usize).and_then(Option::as_mut)
    }

    /// Frees `slot`, returning its entry (None when already free).
    pub fn remove(&mut self, slot: u32) -> Option<T> {
        let taken = self.slots.get_mut(slot as usize).and_then(Option::take);
        if taken.is_some() {
            self.live -= 1;
            self.free.push(slot);
        }
        taken
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// High-water mark of live entries over the arena's lifetime.
    #[inline]
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total slots ever allocated (live + free): the arena's memory
    /// footprint in entries.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = Arena::new();
        let x = a.insert("x");
        let y = a.insert("y");
        assert_eq!(a.get(x), Some(&"x"));
        assert_eq!(a.get(y), Some(&"y"));
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove(x), Some("x"));
        assert_eq!(a.get(x), None);
        assert_eq!(a.remove(x), None, "double free is inert");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn slots_recycle_lifo_and_track_high_water() {
        let mut a = Arena::new();
        let s0 = a.insert(0);
        let s1 = a.insert(1);
        let s2 = a.insert(2);
        assert_eq!((s0, s1, s2), (0, 1, 2));
        a.remove(s1);
        a.remove(s0);
        // LIFO: the most recently freed slot is reused first.
        assert_eq!(a.insert(10), s0);
        assert_eq!(a.insert(11), s1);
        assert_eq!(a.insert(12), 3, "no free slots left, arena grows");
        assert_eq!(a.peak_live(), 4);
        assert_eq!(a.slots(), 4);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut a = Arena::new();
        let s = a.insert(5u64);
        *a.get_mut(s).unwrap() += 1;
        assert_eq!(a.get(s), Some(&6));
        assert!(a.get_mut(99).is_none());
    }
}
