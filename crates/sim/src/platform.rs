//! The simulation platform: environment, configuration, and the
//! discrete-event loop with the controller model.
//!
//! The controller mirrors the paper's §3.1 workflow, expressed through
//! the round-based control-plane API: each controller round collects
//! every eligible AFW queue and presents the set to the scheduler
//! ([`Scheduler::schedule_round`]); returned decisions are applied in
//! order — the dispatcher tries each candidate's placement against the
//! live [`ClusterState`], on total failure the queue enters the recheck
//! list, is retried after every subsequent round, and is forcibly
//! dispatched at the minimum configuration after `recheck_limit` rounds.
//! Each decision's search effort occupies the controller for simulated
//! time given by the [`OverheadModel`], which is how scheduler overhead
//! degrades SLO attainment (Fig. 9) and how batches form naturally under
//! load.
//!
//! The cluster state is maintained *incrementally*: dispatches,
//! completions, pre-warms, and churn mark the affected node and
//! [`ClusterState::refresh`] re-syncs exactly those nodes (plus passive
//! warm-set changes) — nothing is rebuilt per decision, and the
//! scheduler-facing job views live in per-queue buffers with retained
//! capacity. `SimConfig::validate_cluster_state` turns on the
//! equivalence oracle: every refresh point also rebuilds a from-scratch
//! snapshot and asserts it equals the incremental state.

use crate::arena::Arena;
use crate::cluster::Cluster;
use crate::dataplane::{Admission, DataPlane, DataPlaneConfig, TransferReq};
use crate::event::{Event, EventQueue, EventQueueKind};
use crate::metrics::{AppMetrics, ExperimentResult, NodeSummary};
use crate::policy::ShedReason;
use crate::sched::{
    fill_job_views, home_node, JobView, Outcome, OverheadModel, QueueKey, QueueView, RoundCtx,
    SchedCtx, Scheduler, SchedulerEvent,
};
use crate::shard::ShardedController;
use crate::state::ClusterState;
use crate::trace::TraceRecorder;
use crate::workflow::{AfwQueue, Job, WorkflowInstance};
use esg_model::{
    standard_apps, standard_catalog, AppId, AppSpec, Catalog, ChurnEvent, ChurnPlan, ClusterSpec,
    Config, ConfigGrid, FnId, InvocationId, NodeId, PriceModel, Resources, SimTime, SloClass,
};
use esg_profile::{latency_ms, NoiseModel, ProfileTable, TransferModel};
use esg_workload::{Arrival, ArrivalPredictor, ArrivalStream, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

/// The static experiment environment: catalog, applications, profiles,
/// noise, transfer, pricing, and the SLO class.
#[derive(Clone, Debug)]
pub struct SimEnv {
    /// Function catalog (Table 3).
    pub catalog: Catalog,
    /// Application specs (§4.1).
    pub apps: Vec<AppSpec>,
    /// Performance profiles over the configuration grid.
    pub profiles: ProfileTable,
    /// Execution-time noise.
    pub noise: NoiseModel,
    /// Data-transfer model.
    pub transfer: TransferModel,
    /// Pricing (§4.1).
    pub price: PriceModel,
    /// SLO strictness.
    pub slo: SloClass,
}

impl SimEnv {
    /// The paper's standard environment: Table-3 catalog, the four §4.1
    /// apps, the default configuration grid and prices.
    pub fn standard(slo: SloClass) -> SimEnv {
        SimEnv::with_grid(slo, ConfigGrid::default())
    }

    /// Standard environment over a custom configuration grid (ablations
    /// restrict the grid; overhead sweeps enlarge it).
    pub fn with_grid(slo: SloClass, grid: ConfigGrid) -> SimEnv {
        let catalog = standard_catalog();
        let apps = standard_apps();
        let price = PriceModel::default();
        let profiles = ProfileTable::build(&catalog, &grid, &price);
        SimEnv {
            catalog,
            apps,
            profiles,
            noise: NoiseModel::default(),
            transfer: TransferModel::default(),
            price,
            slo,
        }
    }

    /// Base latency `L` of an app, ms.
    pub fn base_latency_ms(&self, app: AppId) -> f64 {
        self.profiles.base_latency_ms(&self.apps[app.index()])
    }

    /// End-to-end SLO of an app under the environment's SLO class, ms.
    pub fn slo_ms(&self, app: AppId) -> f64 {
        self.base_latency_ms(app) * self.slo.factor()
    }
}

/// Platform knobs (Table 2 defaults).
///
/// This is the low-level knob record; prefer constructing runs through
/// the validating [`SimBuilder`](crate::SimBuilder) facade, which
/// returns a typed [`SimError`](crate::SimError) instead of panicking
/// deep inside the event loop on inconsistent settings.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of invoker nodes (homogeneous path; ignored when `cluster`
    /// is set).
    pub nodes: usize,
    /// Resources per node (homogeneous path; ignored when `cluster` is
    /// set).
    pub node_resources: Resources,
    /// Declarative cluster: per-node classes with speed/link/price scale
    /// factors (Appendix A: the algorithms tolerate heterogeneous
    /// hardware). When set this overrides `nodes`/`node_resources`.
    pub cluster: Option<ClusterSpec>,
    /// Scripted node drains/joins applied by the event loop mid-run.
    pub churn: ChurnPlan,
    /// Keep-alive for warm containers, ms (OpenWhisk: 10 minutes).
    pub keep_alive_ms: f64,
    /// Search-effort → controller-time conversion.
    pub overhead: OverheadModel,
    /// Whether decision time occupies the controller and delays dispatch
    /// (disable for "w/o searching overhead" variants, Fig. 9).
    pub charge_overhead: bool,
    /// Enable the EWMA pre-warming proxy (§4).
    pub prewarm: bool,
    /// EWMA smoothing factor for the pre-warmer.
    pub prewarm_alpha: f64,
    /// Warm containers per (node, function) installed at t = 0. The
    /// evaluation measures a cluster in steady state (the paper's proxy
    /// threads have been pre-warming from prior traffic); starting cold
    /// would make the multi-second Table-3 cold starts dominate any run
    /// shorter than minutes.
    pub initial_warm_per_node: u32,
    /// Upper bound on live containers per (node, function) that the
    /// pre-warm proxy will grow towards under concurrency pressure.
    pub prewarm_pool_cap: usize,
    /// Invocations arriving before this time are excluded from SLO/latency
    /// metrics (warm-up window); costs always accrue.
    pub warmup_exclude_ms: f64,
    /// RNG seed (noise and any stochastic scheduler choices).
    pub seed: u64,
    /// Recheck rounds before a forced minimum-configuration dispatch.
    pub recheck_limit: u32,
    /// Controller back-off when a full scan found only skips, ms.
    pub idle_backoff_ms: f64,
    /// Safety cap on simulated time, ms (0 = none).
    pub max_sim_ms: f64,
    /// Equivalence oracle: assert at every refresh point that the
    /// incrementally maintained [`ClusterState`] equals a from-scratch
    /// snapshot of the cluster (the pre-redesign per-decision rebuild).
    /// Costs a full rebuild per refresh — test runs only.
    pub validate_cluster_state: bool,
    /// Controller shards. Queues are partitioned across this many round
    /// drivers (FNV over the queue key); each shard stages decisions for
    /// its own queues against a generation-stamped snapshot of the
    /// shared [`ClusterState`], and staged rounds commit in shard order
    /// with optimistic re-validation — a commit that finds the state
    /// moved underneath it retries the losing decision. `1` (the
    /// default) keeps the classic single driver.
    pub shards: usize,
    /// Test/bench knob: route `shards == 1` through the sharded
    /// staging/commit driver anyway. Pins the equivalence property (a
    /// one-shard sharded run must be dispatch-trace-identical to the
    /// classic driver) without forking the workload setup.
    pub force_sharded: bool,
    /// Event-queue backend. The heap is the classic default; the timer
    /// wheel is O(1) amortised and built for million-event replays. Both
    /// produce bit-identical runs (pinned by
    /// `tests/replay_equivalence.rs`).
    pub event_queue: EventQueueKind,
    /// When set, the run records its full control-plane event stream
    /// (plus environment header and arrivals) to this path at the end of
    /// the run, replayable via [`TraceReplay`](crate::TraceReplay).
    /// Prefer selecting it through
    /// [`SimBuilder::record_trace`](crate::SimBuilder::record_trace).
    /// The write is best-effort: a failure is reported on stderr, never
    /// a panic mid-experiment.
    pub record_trace: Option<std::path::PathBuf>,
    /// Contended GPU data plane (`crate::dataplane`): per-node PCIe/
    /// NVLink bandwidth pools with fair-share transfer progress and
    /// bounded host-memory staging. `None` (the default) keeps the
    /// classic scalar transfer model; at effectively infinite bandwidth
    /// the plane is dispatch-trace bit-identical to the scalar model
    /// (`tests/dataplane_equivalence.rs`).
    pub data_plane: Option<DataPlaneConfig>,
    /// Static-pinning-tier knobs (`crate::pinning`). The platform never
    /// consumes them itself — the hybrid scheduler in `esg-core` reads
    /// them through `Sim::config()` — but `SimBuilder` validates them
    /// against the cluster (a pin budget larger than the cluster's
    /// total vGPU capacity, or pinning on an empty cluster, is a typed
    /// error, not a stranded plan at runtime). `None` disables the tier.
    pub pinning: Option<crate::pinning::PinningConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 16,
            node_resources: Resources::new(16, 7),
            cluster: None,
            churn: ChurnPlan::none(),
            keep_alive_ms: 600_000.0,
            overhead: OverheadModel::default(),
            charge_overhead: true,
            prewarm: true,
            prewarm_alpha: 0.3,
            initial_warm_per_node: 1,
            prewarm_pool_cap: 4,
            warmup_exclude_ms: 0.0,
            seed: 42,
            recheck_limit: 3,
            idle_backoff_ms: 1.0,
            max_sim_ms: 0.0,
            validate_cluster_state: false,
            shards: 1,
            force_sharded: false,
            event_queue: EventQueueKind::Heap,
            record_trace: None,
            data_plane: None,
            pinning: None,
        }
    }
}

struct RunningTask {
    key: QueueKey,
    config: Config,
    node: NodeId,
    jobs: Vec<Job>,
    was_warm: bool,
    /// Execution time (resources held and billed for this span only; the
    /// cold start and transfer happen in a non-occupying init phase — a
    /// container being provisioned does not hold its MIG slice or vCPUs).
    exec_ms: f64,
    init_ready_at: SimTime,
    /// Whether the task currently holds a capacity commitment on its node.
    /// Warm tasks commit at dispatch (their init is only the transfer);
    /// cold tasks commit when their multi-second container init finishes,
    /// so provisioning does not hold the cluster hostage.
    committed: bool,
}

struct RecheckEntry {
    key: QueueKey,
    candidates: Vec<Config>,
    planned_batch: Option<u32>,
    rounds: u32,
    /// Last retry time: rounds are paced, not per-event, so a burst of
    /// completions does not race a queue to the forced minimum.
    last_retry: SimTime,
}

/// Conflict retries a decision gets within one controller step before it
/// falls back to the classic recheck park. Bounds the staging loop: a
/// persistently losing shard cannot spin the step forever.
const SHARD_RETRY_LIMIT: u32 = 3;

/// One shard's staged round: decisions made against a generation-stamped
/// snapshot of the shared state, awaiting ordered commit.
struct StagedRound {
    /// Index of the shard that staged the round (telemetry: carried into
    /// the per-round [`SchedulerEvent::ShardCommit`] emission).
    shard: usize,
    /// [`ClusterState::generation`] at staging time.
    staged_gen: u64,
    /// The shard-local eligible set the decisions were drawn from.
    eligible: Vec<usize>,
    decisions: Vec<(QueueKey, Outcome)>,
    /// Host wall-clock time the staging call took, ms (charged to the
    /// first decision that records an overhead sample, as in the classic
    /// driver).
    wall_ms: f64,
}

/// Commit verdict for one staged decision.
enum DecisionCommit {
    /// The decision landed (dispatch, back-off, recheck park, or shed).
    /// `consumed_wall` mirrors the classic driver's bool: whether the
    /// round's wall-clock sample was recorded by this decision.
    Settled { consumed_wall: bool },
    /// Every candidate's placement failed while another shard had moved
    /// the state since staging — the optimistic-concurrency loser. The
    /// outcome is handed back for a bounded retry.
    Conflicted { outcome: Outcome },
}

/// Where a run's arrivals come from: a materialised workload slice or a
/// lazy [`ArrivalStream`]. Both feed the same one-at-a-time pull loop
/// (the platform holds at most one undelivered arrival), so streamed
/// and materialised runs are bit-identical by construction.
enum ArrivalSource<'a> {
    /// Iterating a pre-generated `Workload`.
    Materialised(std::slice::Iter<'a, Arrival>),
    /// Pulling a lazy stream as simulated time advances (boxed: the
    /// stream's RNG + look-ahead state dwarfs the slice iterator).
    Streamed(Box<ArrivalStream>),
}

impl ArrivalSource<'_> {
    fn next(&mut self) -> Option<Arrival> {
        match self {
            ArrivalSource::Materialised(it) => it.next().copied(),
            ArrivalSource::Streamed(s) => s.next(),
        }
    }
}

/// Peak live-population counters from one run — the RSS proxy the
/// streaming replay bench asserts its memory ceiling against. All three
/// are bounded by the in-flight population (arrival rate × residence
/// time), not by the total invocation count, which is what makes
/// streamed replays constant-memory.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryFootprint {
    /// High-water mark of live invocations in the arena.
    pub peak_live_invocations: usize,
    /// Invocation arena slots ever allocated (live + free list).
    pub invocation_slots: usize,
    /// High-water mark of live running tasks in the arena.
    pub peak_live_tasks: usize,
    /// Task arena slots ever allocated.
    pub task_slots: usize,
    /// High-water mark of pending events in the queue.
    pub peak_pending_events: usize,
}

/// One simulation run binding an environment, a configuration, a scheduler
/// and a workload.
pub struct Simulation<'a> {
    env: &'a SimEnv,
    cfg: SimConfig,
    sched: &'a mut dyn Scheduler,
    source: ArrivalSource<'a>,
    /// The next arrival, already scheduled in the event queue; the pull
    /// loop replaces it when its event pops. `None` once the source is
    /// exhausted.
    pending_arrival: Option<Arrival>,
    /// Index the next arrival event will carry (the streamed twin of the
    /// materialised workload's vector index).
    next_arrival_idx: usize,

    now: SimTime,
    events: EventQueue,
    cluster: Cluster,
    /// The scheduler-facing cluster state, maintained incrementally (see
    /// `crate::state`).
    state: ClusterState,
    queue_keys: Vec<QueueKey>,
    queue_fn: Vec<FnId>,
    queues: Vec<AfwQueue>,
    queue_index: HashMap<QueueKey, usize>,
    /// Live invocations, slot-addressed ([`Job::slot`]). Ids stay
    /// monotone via `next_invocation`; slots recycle.
    invocations: Arena<WorkflowInstance>,
    next_invocation: u64,
    /// Running tasks; the arena slot *is* the task id carried by
    /// `ExecReady`/`TaskComplete` events (each id has exactly one of
    /// each in flight, so recycling a completed task's slot is safe).
    tasks: Arena<RunningTask>,
    /// Per-queue scheduling-busy horizon: a queue whose previous decision
    /// charged overhead is not re-decided before this time (the paper's
    /// controller schedules queues concurrently; search time delays only
    /// the affected queue's jobs).
    queue_busy_until: Vec<SimTime>,
    recheck: Vec<RecheckEntry>,
    /// Tasks whose init finished but whose node lacked capacity, FIFO per
    /// node; drained on every resource release.
    waiting_exec: Vec<std::collections::VecDeque<u64>>,
    predictors: Vec<ArrivalPredictor>,
    /// Smoothed inter-arrival interval per queue (batching policies).
    queue_intervals: Vec<esg_model::Ewma>,
    queue_last_arrival: Vec<Option<SimTime>>,
    last_node: Vec<Option<NodeId>>,
    /// Per-queue scheduler-facing job views, rebuilt in place per round
    /// (retained capacity — no per-decision allocation).
    job_views: Vec<Vec<JobView>>,
    /// Reused eligible-queue index buffer for the round driver.
    eligible: Vec<usize>,
    /// `decided_stamp[qi] == round_seq` marks a queue already decided in
    /// the current controller step (each queue is decided at most once
    /// per step, as in the classic single-pass scan).
    decided_stamp: Vec<u64>,
    /// `views_stamp[qi] == round_seq` marks a queue whose job views are
    /// already current for this step — views are time-invariant within a
    /// step (fixed `now`, and an undecided queue's jobs cannot change),
    /// so each queue is refilled at most once per step even though the
    /// default replay runs one round per decision.
    views_stamp: Vec<u64>,
    round_seq: u64,
    /// The sharded control plane (`cfg.shards > 1` or `force_sharded`);
    /// `None` runs the classic single round driver untouched.
    shard_ctl: Option<ShardedController>,
    /// `shard_retry_stamp[qi] == round_seq` marks a queue whose conflict
    /// retry counter is current for this controller step.
    shard_retry_stamp: Vec<u64>,
    /// Conflict retries consumed by queue `qi` within the stamped step;
    /// past [`SHARD_RETRY_LIMIT`] the decision falls back to the classic
    /// recheck park instead of re-staging.
    shard_retry_count: Vec<u32>,
    noise: NoiseModel,
    rng: StdRng,
    metrics: ExperimentResult,
    slo_ms: Vec<f64>,
    base_ms: Vec<f64>,
    /// The trace-recording sink (`cfg.record_trace`); fed alongside the
    /// scheduler by [`notify`](Self::notify) and written in `finish`.
    recorder: Option<TraceRecorder>,
    /// The contended data plane (`cfg.data_plane`); `None` keeps the
    /// classic scalar transfer model.
    dataplane: Option<DataPlane>,
    /// The node→server map (`Some` only when `cfg.cluster` declares a
    /// `ServerTopology`); joined nodes stay unassigned.
    servers: Option<crate::pinning::ServerMap>,
}

impl<'a> Simulation<'a> {
    /// Prepares a run over a materialised workload.
    pub fn new(
        env: &'a SimEnv,
        cfg: SimConfig,
        sched: &'a mut dyn Scheduler,
        workload: &'a Workload,
    ) -> Simulation<'a> {
        Simulation::new_with_source(
            env,
            cfg,
            sched,
            ArrivalSource::Materialised(workload.arrivals.iter()),
        )
    }

    /// Prepares a run pulling arrivals lazily from `stream` as simulated
    /// time advances — constant memory in the arrival count. The stream
    /// must yield time-ordered arrivals (every [`ArrivalStream`] does).
    /// Unbounded streams need `cfg.max_sim_ms > 0` to terminate.
    pub fn from_stream(
        env: &'a SimEnv,
        cfg: SimConfig,
        sched: &'a mut dyn Scheduler,
        stream: ArrivalStream,
    ) -> Simulation<'a> {
        Simulation::new_with_source(env, cfg, sched, ArrivalSource::Streamed(Box::new(stream)))
    }

    fn new_with_source(
        env: &'a SimEnv,
        cfg: SimConfig,
        sched: &'a mut dyn Scheduler,
        source: ArrivalSource<'a>,
    ) -> Simulation<'a> {
        let mut queue_keys = Vec::new();
        let mut queue_fn = Vec::new();
        for (ai, app) in env.apps.iter().enumerate() {
            for stage in 0..app.num_stages() {
                queue_keys.push(QueueKey {
                    app: AppId(ai as u32),
                    stage,
                });
                queue_fn.push(app.nodes[stage]);
            }
        }
        let queue_index = queue_keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i))
            .collect();
        let nq = queue_keys.len();
        let slo_ms: Vec<f64> = (0..env.apps.len())
            .map(|i| env.slo_ms(AppId(i as u32)))
            .collect();
        let base_ms: Vec<f64> = (0..env.apps.len())
            .map(|i| env.base_latency_ms(AppId(i as u32)))
            .collect();
        let mut metrics = ExperimentResult {
            scheduler: sched.name().to_string(),
            ..ExperimentResult::default()
        };
        metrics.apps = env
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| AppMetrics {
                name: a.name.to_string(),
                slo_ms: slo_ms[i],
                ..AppMetrics::default()
            })
            .collect();
        let cluster = match &cfg.cluster {
            Some(spec) => Cluster::from_spec(spec),
            None => Cluster::new(cfg.nodes, cfg.node_resources),
        };
        let state = ClusterState::from_cluster(&cluster, SimTime::ZERO);
        let initial_nodes = cluster.len();
        let prewarm_alpha = cfg.prewarm_alpha;
        let seed = cfg.seed;
        let shard_ctl = (cfg.shards > 1 || cfg.force_sharded).then(|| {
            // Each shard drives its own clone of the scheduler's policy
            // stack (taken after `adopt_policy`, so it reflects the
            // builder's spec); stackless schedulers run their own
            // `schedule_round` per shard unswapped.
            let proto = sched.round_policy().map(|p| p.clone());
            ShardedController::new(cfg.shards.max(1), &queue_keys, proto.as_ref())
        });
        let event_queue = cfg.event_queue;
        let recorder = cfg
            .record_trace
            .clone()
            .map(|path| TraceRecorder::begin(path, env, &cfg, sched.name()));
        let topology = cfg.cluster.as_ref().and_then(|s| s.topology);
        let dataplane = cfg
            .data_plane
            .map(|dp| DataPlane::new(dp, &cluster, topology));
        let servers = topology.map(|t| crate::pinning::ServerMap::from_topology(&t, cluster.len()));
        Simulation {
            env,
            cfg,
            sched,
            source,
            pending_arrival: None,
            next_arrival_idx: 0,
            now: SimTime::ZERO,
            events: EventQueue::with_kind(event_queue),
            cluster,
            state,
            queues: vec![AfwQueue::new(); nq],
            predictors: vec![ArrivalPredictor::new(prewarm_alpha); nq],
            queue_intervals: vec![esg_model::Ewma::new(0.3); nq],
            queue_last_arrival: vec![None; nq],
            last_node: vec![None; nq],
            queue_keys,
            queue_fn,
            queue_index,
            invocations: Arena::new(),
            next_invocation: 0,
            tasks: Arena::new(),
            queue_busy_until: vec![SimTime::ZERO; nq],
            recheck: Vec::new(),
            waiting_exec: vec![std::collections::VecDeque::new(); initial_nodes],
            job_views: vec![Vec::new(); nq],
            eligible: Vec::new(),
            decided_stamp: vec![0; nq],
            views_stamp: vec![0; nq],
            round_seq: 0,
            shard_ctl,
            shard_retry_stamp: vec![0; nq],
            shard_retry_count: vec![0; nq],
            noise: env.noise.clone(),
            rng: StdRng::seed_from_u64(seed),
            metrics,
            slo_ms,
            base_ms,
            recorder,
            dataplane,
            servers,
        }
    }

    /// Publishes one control-plane event to every tap: the trace
    /// recorder (when recording) and the scheduler's `on_event`. All
    /// event emission goes through here so a recorded stream can never
    /// diverge from what the scheduler observed.
    fn notify(&mut self, event: &SchedulerEvent<'_>) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.observe(event);
        }
        self.sched.on_event(event);
    }

    /// Pulls the next arrival from the source and schedules its event.
    /// The source is time-ordered, so the event is never in the past and
    /// at most one arrival is outstanding at a time.
    fn pump_arrival(&mut self) {
        debug_assert!(self.pending_arrival.is_none());
        if let Some(a) = self.source.next() {
            let idx = self.next_arrival_idx;
            self.next_arrival_idx += 1;
            self.pending_arrival = Some(a);
            self.events
                .push(SimTime::from_ms(a.at_ms), Event::Arrival(idx));
        }
    }

    /// Runs to completion and returns the metrics.
    pub fn run(self) -> ExperimentResult {
        self.run_with_footprint().0
    }

    /// Runs to completion, also reporting the run's peak-memory proxy
    /// (arena and event-queue high-water marks).
    pub fn run_with_footprint(mut self) -> (ExperimentResult, MemoryFootprint) {
        // Steady-state start: the pre-warm proxy has been serving traffic.
        if self.cfg.initial_warm_per_node > 0 {
            let keep = SimTime::from_ms(self.cfg.keep_alive_ms);
            let fns: Vec<FnId> = self.env.catalog.iter().map(|(id, _)| id).collect();
            for n in self.cluster.nodes_mut() {
                for &f in &fns {
                    for _ in 0..self.cfg.initial_warm_per_node {
                        n.prewarm(f, SimTime::ZERO, keep);
                    }
                }
            }
            for i in 0..self.cluster.len() {
                self.state.touch(NodeId(i as u32));
            }
        }
        // Arrival pull loop: exactly one undelivered arrival is scheduled
        // at a time; delivering it pulls the next from the source. With a
        // materialised workload this replays the historical preloaded
        // heap bit for bit (the queue ranks arrivals by index, not
        // insertion order); with a streamed source it is what makes the
        // run constant-memory.
        self.pump_arrival();
        for (i, ev) in self.cfg.churn.events.iter().enumerate() {
            self.events
                .push(SimTime::from_ms(ev.at_ms()), Event::Churn(i));
        }
        while let Some((t, ev)) = self.events.pop() {
            if self.cfg.max_sim_ms > 0.0 && t.as_ms() > self.cfg.max_sim_ms {
                break;
            }
            // All work is done: no arrivals left to deliver, no live
            // invocations, no running tasks. Remaining events (pre-warm
            // timers, scripted churn past the workload) cannot create
            // work, and letting them advance the clock would inflate the
            // makespan and dilute the utilisation denominators.
            if self.pending_arrival.is_none()
                && self.invocations.is_empty()
                && self.tasks.is_empty()
            {
                break;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            match ev {
                Event::Arrival(_) => {
                    let arrival = self
                        .pending_arrival
                        .take()
                        .expect("arrival event without a pending payload");
                    self.handle_arrival(arrival);
                    self.pump_arrival();
                    self.wake_controller();
                }
                Event::ControllerStep => {
                    if self.shard_ctl.is_some() {
                        self.controller_step_sharded();
                    } else {
                        self.controller_step();
                    }
                }
                Event::ExecReady(id) => self.exec_ready(id),
                Event::TransferDue(id, gen) => self.transfer_due(id, gen),
                Event::TaskComplete(id) => {
                    self.complete_task(id);
                    self.wake_controller();
                }
                Event::Prewarm(node, f) => self.handle_prewarm(NodeId(node), FnId(f)),
                Event::Churn(i) => {
                    self.handle_churn(i);
                    self.wake_controller();
                }
            }
        }
        let footprint = MemoryFootprint {
            peak_live_invocations: self.invocations.peak_live(),
            invocation_slots: self.invocations.slots(),
            peak_live_tasks: self.tasks.peak_live(),
            task_slots: self.tasks.slots(),
            peak_pending_events: self.events.peak_len(),
        };
        (self.finish(), footprint)
    }

    /// Applies the `i`-th scripted membership change: a drain takes the
    /// node out of placement rotation (admitted work completes), a join
    /// appends a fresh cold node.
    fn handle_churn(&mut self, i: usize) {
        match self.cfg.churn.events[i].clone() {
            ChurnEvent::Drain { node, .. } => {
                if node.index() < self.cluster.len() {
                    self.cluster.node_mut(node).drain(self.now);
                    self.state.touch(node);
                    self.notify(&SchedulerEvent::Churn {
                        node,
                        joined: false,
                        now_ms: self.now.as_ms(),
                    });
                }
            }
            ChurnEvent::Join { class, .. } => {
                if let Some(dp) = self.dataplane.as_mut() {
                    dp.note_join(&class);
                }
                if let Some(map) = self.servers.as_mut() {
                    map.note_join();
                }
                let joined = self.cluster.join(class, self.now);
                self.waiting_exec.push(std::collections::VecDeque::new());
                self.state.note_join(self.cluster.node(joined), self.now);
                self.notify(&SchedulerEvent::Churn {
                    node: joined,
                    joined: true,
                    now_ms: self.now.as_ms(),
                });
            }
        }
    }

    fn wake_controller(&mut self) {
        // Scans are idempotent; coalescing beyond same-instant duplicates
        // is unnecessary.
        self.events.push(self.now, Event::ControllerStep);
    }

    fn handle_arrival(&mut self, arrival: Arrival) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record_arrival(arrival);
        }
        let app_idx = arrival.app.index();
        let app = &self.env.apps[app_idx];
        let id = InvocationId(self.next_invocation);
        self.next_invocation += 1;
        let inst = WorkflowInstance::new(
            id,
            arrival.app,
            app,
            self.now,
            SimTime::from_ms(self.slo_ms[app_idx]),
        );
        let entries = inst.entry_stages();
        let slot = self.invocations.insert(inst);
        self.metrics.arrivals += 1;
        for stage in entries {
            self.enqueue_job(
                QueueKey {
                    app: arrival.app,
                    stage,
                },
                Job {
                    invocation: id,
                    slot,
                    stage,
                    ready_at: self.now,
                    pred_node: None,
                },
            );
        }
    }

    fn enqueue_job(&mut self, key: QueueKey, job: Job) {
        let qi = self.queue_index[&key];
        self.queues[qi].push(job);
        self.notify(&SchedulerEvent::JobArrived {
            key,
            invocation: job.invocation,
            now_ms: self.now.as_ms(),
        });
        if let Some(prev) = self.queue_last_arrival[qi] {
            self.queue_intervals[qi].update(self.now.saturating_since(prev).as_ms());
        }
        self.queue_last_arrival[qi] = Some(self.now);
        if self.cfg.prewarm {
            self.predictors[qi].observe(self.now.as_ms());
            let f = self.queue_fn[qi];
            let cold = self.env.catalog.get(f).cold_start_ms;
            if let Some(at) = self.predictors[qi].prewarm_at_ms(cold, self.now.as_ms()) {
                let node = self.last_node[qi].unwrap_or_else(|| home_node(key, self.cluster.len()));
                self.events
                    .push(SimTime::from_ms(at), Event::Prewarm(node.0, f.0));
            }
        }
    }

    fn handle_prewarm(&mut self, node: NodeId, f: FnId) {
        let keep = SimTime::from_ms(self.cfg.keep_alive_ms);
        let cold = SimTime::from_ms(self.env.catalog.get(f).cold_start_ms);
        let cap = self.cfg.prewarm_pool_cap;
        let now = self.now;
        let n = self.cluster.node_mut(node);
        // Drained nodes take no new containers; grow the pool when no idle
        // warm slot exists (concurrency pressure), bounded by the pool cap.
        if n.online && !n.has_warm(f, now) && n.slot_count(f, now) < cap {
            n.prewarm(f, now + cold, keep);
            self.state.touch(node);
        }
    }

    /// Re-syncs the scheduler-facing state with the cluster (cheap no-op
    /// when nothing changed). Under `validate_cluster_state`, also
    /// asserts equivalence with a from-scratch snapshot — the
    /// pre-redesign per-decision rebuild.
    fn refresh_state(&mut self) {
        self.state.refresh(&self.cluster, self.now);
        if self.cfg.validate_cluster_state {
            let fresh = ClusterState::from_cluster(&self.cluster, self.now);
            assert_eq!(
                fresh.nodes(),
                self.state.nodes(),
                "incremental ClusterState diverged from the snapshot rebuild at t={} ms",
                self.now.as_ms()
            );
        }
    }

    /// Rebuilds queue `qi`'s scheduler-facing job views in place.
    fn refill_queue_views(&mut self, qi: usize) {
        let now = self.now;
        let invocations = &self.invocations;
        fill_job_views(&mut self.job_views[qi], self.queues[qi].jobs(), now, |j| {
            let inst = invocations.get(j.slot).expect("queued job's invocation");
            debug_assert_eq!(inst.id, j.invocation, "stale job slot in a live queue");
            (inst.arrived_at, inst.deadline)
        });
    }

    /// One controller step: retry the recheck list, then run scheduling
    /// rounds until every eligible queue has been decided once. Each
    /// round presents all still-eligible queues; the default
    /// [`Scheduler::schedule_round`] decides the first and is re-invoked
    /// with the rest, so every decision observes the cluster state left
    /// by the previous dispatch (the classic one-queue-at-a-time
    /// contract). Queues are scheduled concurrently — a decision's
    /// search time delays that queue's dispatch, not the whole cluster
    /// (the paper's Fig. 9 charges Orion's search time to the affected
    /// jobs).
    fn controller_step(&mut self) {
        self.process_recheck();
        self.round_seq += 1;
        let nq = self.queue_keys.len();
        loop {
            self.refresh_state();
            self.eligible.clear();
            for qi in 0..nq {
                if self.decided_stamp[qi] == self.round_seq
                    || self.queues[qi].is_empty()
                    || self.queue_busy_until[qi] > self.now
                    || self.recheck.iter().any(|e| e.key == self.queue_keys[qi])
                {
                    continue;
                }
                self.eligible.push(qi);
            }
            if self.eligible.is_empty() {
                return;
            }
            for idx in 0..self.eligible.len() {
                let qi = self.eligible[idx];
                if self.views_stamp[qi] != self.round_seq {
                    self.refill_queue_views(qi);
                    self.views_stamp[qi] = self.round_seq;
                }
            }
            let (decisions, mut wall_ms) = {
                // The round's queue list is the one remaining per-round
                // allocation on this path: each `QueueView` borrows that
                // queue's job-view buffer, so the list cannot outlive the
                // iteration (the buffers are re-borrowed mutably next
                // round). It is a handful of fat pointers — the per-node
                // warm-set clones and job-view vectors the old snapshot
                // contract rebuilt per decision are gone.
                let mut queues: Vec<QueueView<'_>> = Vec::with_capacity(self.eligible.len());
                for &qi in &self.eligible {
                    let key = self.queue_keys[qi];
                    queues.push(QueueView {
                        key,
                        jobs: &self.job_views[qi],
                        function: self.queue_fn[qi],
                        slo_ms: self.slo_ms[key.app.index()],
                        base_latency_ms: self.base_ms[key.app.index()],
                        queue_interval_ms: self.queue_intervals[qi].value(),
                    });
                }
                let ctx = RoundCtx {
                    now_ms: self.now.as_ms(),
                    queues: &queues,
                    cluster: &self.state,
                    profiles: &self.env.profiles,
                    apps: &self.env.apps,
                    catalog: &self.env.catalog,
                    price: &self.env.price,
                    transfer: &self.env.transfer,
                    noise: &self.env.noise,
                    dataplane: self.dataplane.as_ref().map(|dp| dp.view()),
                    servers: self.servers.as_ref(),
                };
                let t0 = Instant::now();
                let decisions = self.sched.schedule_round(&ctx);
                (decisions, t0.elapsed().as_secs_f64() * 1000.0)
            };
            let mut applied = 0usize;
            for (key, outcome) in decisions {
                let Some(&qi) = self.queue_index.get(&key) else {
                    continue; // unknown queue: ignore
                };
                // Only queues presented this round are decidable, once.
                if self.decided_stamp[qi] == self.round_seq || !self.eligible.contains(&qi) {
                    continue;
                }
                self.decided_stamp[qi] = self.round_seq;
                applied += 1;
                if self.apply_decision(qi, key, outcome, wall_ms) {
                    wall_ms = 0.0; // the round's wall time is charged once
                }
            }
            if applied == 0 {
                // The scheduler declined the round (or returned only
                // already-decided queues): nothing further to do now.
                return;
            }
        }
    }

    /// One controller step under the sharded control plane: retry the
    /// recheck list, then alternate *staging* and *commit* phases until
    /// every eligible queue has been decided once. Each shard stages
    /// decisions for its own queue partition against the shared state,
    /// stamped with the state's [generation](ClusterState::generation)
    /// at staging time; staged rounds then commit in shard-index order.
    /// A commit that finds the generation moved past its stamp
    /// re-validates optimistically — placements usually still fit, but a
    /// decision whose every candidate now fails is a cross-shard
    /// *conflict* and is retried (bounded by [`SHARD_RETRY_LIMIT`], then
    /// parked on the recheck list like any placement failure).
    ///
    /// With one shard the partition is total and a staged round commits
    /// before anything else can move the state, so the driver replays
    /// the classic [`controller_step`](Self::controller_step) decision
    /// for decision (pinned by the shard-equivalence suite).
    fn controller_step_sharded(&mut self) {
        self.process_recheck();
        self.round_seq += 1;
        let nshards = self.shard_ctl.as_ref().expect("sharded driver").shards();
        loop {
            // Staging phase: every shard scans its own partition and
            // stages decisions against a generation-stamped snapshot.
            let mut staged: Vec<StagedRound> = Vec::new();
            for s in 0..nshards {
                self.refresh_state();
                let staged_gen = self.state.generation();
                let mut eligible: Vec<usize> = Vec::new();
                for &qi in self.shard_ctl.as_ref().expect("sharded driver").members(s) {
                    if self.decided_stamp[qi] == self.round_seq
                        || self.queues[qi].is_empty()
                        || self.queue_busy_until[qi] > self.now
                        || self.recheck.iter().any(|e| e.key == self.queue_keys[qi])
                    {
                        continue;
                    }
                    eligible.push(qi);
                }
                if eligible.is_empty() {
                    continue;
                }
                for &qi in &eligible {
                    if self.views_stamp[qi] != self.round_seq {
                        self.refill_queue_views(qi);
                        self.views_stamp[qi] = self.round_seq;
                    }
                }
                let (decisions, wall_ms) = {
                    let mut queues: Vec<QueueView<'_>> = Vec::with_capacity(eligible.len());
                    for &qi in &eligible {
                        let key = self.queue_keys[qi];
                        queues.push(QueueView {
                            key,
                            jobs: &self.job_views[qi],
                            function: self.queue_fn[qi],
                            slo_ms: self.slo_ms[key.app.index()],
                            base_latency_ms: self.base_ms[key.app.index()],
                            queue_interval_ms: self.queue_intervals[qi].value(),
                        });
                    }
                    let ctx = RoundCtx {
                        now_ms: self.now.as_ms(),
                        queues: &queues,
                        cluster: &self.state,
                        profiles: &self.env.profiles,
                        apps: &self.env.apps,
                        catalog: &self.env.catalog,
                        price: &self.env.price,
                        transfer: &self.env.transfer,
                        noise: &self.env.noise,
                        dataplane: self.dataplane.as_ref().map(|dp| dp.view()),
                        servers: self.servers.as_ref(),
                    };
                    let t0 = Instant::now();
                    let decisions = self.shard_ctl.as_mut().expect("sharded driver").stage(
                        s,
                        &mut *self.sched,
                        &ctx,
                    );
                    (decisions, t0.elapsed().as_secs_f64() * 1000.0)
                };
                staged.push(StagedRound {
                    shard: s,
                    staged_gen,
                    eligible,
                    decisions,
                    wall_ms,
                });
            }
            if staged.is_empty() {
                return;
            }
            // Commit phase, in shard-index order. Conflict detection is
            // per staged round: did the generation move past its stamp?
            let mut applied = 0usize;
            let mut commits = 0u64;
            let mut conflicts = 0u64;
            let mut retries = 0u64;
            let mut commit_wall_us = 0u64;
            for round in staged {
                let StagedRound {
                    shard,
                    staged_gen,
                    eligible,
                    decisions,
                    mut wall_ms,
                } = round;
                self.refresh_state();
                let cross_moved = self.state.moved_since(staged_gen);
                // Per-round deltas, emitted as one ShardCommit telemetry
                // event after the round's decisions settle.
                let (commits_before, conflicts_before, retries_before) =
                    (commits, conflicts, retries);
                let t0 = Instant::now();
                for (key, outcome) in decisions {
                    let Some(&qi) = self.queue_index.get(&key) else {
                        continue; // unknown queue: ignore
                    };
                    if self.decided_stamp[qi] == self.round_seq || !eligible.contains(&qi) {
                        continue;
                    }
                    match self.apply_decision_validated(qi, key, outcome, wall_ms, cross_moved) {
                        DecisionCommit::Settled { consumed_wall } => {
                            self.decided_stamp[qi] = self.round_seq;
                            applied += 1;
                            commits += 1;
                            if consumed_wall {
                                wall_ms = 0.0;
                            }
                        }
                        DecisionCommit::Conflicted { outcome } => {
                            conflicts += 1;
                            if self.shard_retry_stamp[qi] != self.round_seq {
                                self.shard_retry_stamp[qi] = self.round_seq;
                                self.shard_retry_count[qi] = 0;
                            }
                            self.shard_retry_count[qi] += 1;
                            if self.shard_retry_count[qi] > SHARD_RETRY_LIMIT {
                                // Retry budget exhausted: settle through
                                // the classic recheck park.
                                self.metrics.rechecks += 1;
                                self.recheck.push(RecheckEntry {
                                    key,
                                    candidates: outcome.candidates,
                                    planned_batch: outcome.planned_batch,
                                    rounds: 0,
                                    last_retry: self.now,
                                });
                                self.events.push(
                                    self.now + SimTime::from_ms(self.cfg.idle_backoff_ms),
                                    Event::ControllerStep,
                                );
                                self.decided_stamp[qi] = self.round_seq;
                                applied += 1;
                                commits += 1;
                            } else {
                                // Left undecided: the next staging pass
                                // re-presents the queue against fresh
                                // state.
                                retries += 1;
                            }
                        }
                    }
                }
                commit_wall_us += t0.elapsed().as_micros() as u64;
                self.notify(&SchedulerEvent::ShardCommit {
                    shard,
                    commits: commits - commits_before,
                    conflicts: conflicts - conflicts_before,
                    retries: retries - retries_before,
                    now_ms: self.now.as_ms(),
                });
            }
            let stats = self.shard_ctl.as_mut().expect("sharded driver").stats_mut();
            stats.commits += commits;
            stats.conflicts += conflicts;
            stats.retries += retries;
            stats.commit_wall_us += commit_wall_us;
            // A conflicted, still-retryable queue keeps the loop going
            // even when nothing landed; the retry cap bounds this.
            if applied == 0 && retries == 0 {
                return;
            }
        }
    }

    /// Applies one round decision: shed (admission verdict), charge
    /// simulated overhead, then dispatch (placing candidates in rank
    /// order against the live state), skip with back-off, or park on the
    /// recheck list. Returns whether the decision consumed the round's
    /// wall-clock sample (sheds and purged-empty no-ops do not).
    fn apply_decision(&mut self, qi: usize, key: QueueKey, outcome: Outcome, wall_ms: f64) -> bool {
        match self.apply_decision_validated(qi, key, outcome, wall_ms, false) {
            DecisionCommit::Settled { consumed_wall } => consumed_wall,
            DecisionCommit::Conflicted { .. } => {
                unreachable!("conflicts require conflict_on_failure")
            }
        }
    }

    /// [`apply_decision`](Self::apply_decision) with optimistic-commit
    /// validation: when `conflict_on_failure` is set (the committing
    /// shard observed the state generation move past its staging stamp)
    /// a total placement failure returns [`DecisionCommit::Conflicted`]
    /// — with the overhead samples undone, so the retried round's fresh
    /// search re-charges — instead of parking on the recheck list.
    fn apply_decision_validated(
        &mut self,
        qi: usize,
        key: QueueKey,
        outcome: Outcome,
        wall_ms: f64,
        conflict_on_failure: bool,
    ) -> DecisionCommit {
        if let Some(reason) = outcome.shed {
            // Admission verdict, not a search: no overhead is charged and
            // no wall sample recorded (the overhead series keeps its
            // one-entry-per-dispatch-or-recheck shape).
            self.shed_queue(qi, key, reason);
            return DecisionCommit::Settled {
                consumed_wall: false,
            };
        }
        // A shed applied earlier in this round may have purged this
        // queue's jobs (parallel DAG branches share invocations); the
        // decision is moot then.
        if self.queues[qi].is_empty() {
            return DecisionCommit::Settled {
                consumed_wall: false,
            };
        }
        let overhead = self.cfg.overhead.decision_time(outcome.expansions);
        self.metrics.overhead_ms.push(overhead.as_ms());
        self.metrics.wall_overhead_ms.push(wall_ms);
        let charged = if self.cfg.charge_overhead {
            overhead
        } else {
            SimTime::ZERO
        };

        if outcome.candidates.is_empty() {
            // Skip (e.g. holding for batch formation): re-check after the
            // decision time, the idle back-off, or an admission defer
            // horizon, whichever is furthest.
            let mut back = charged.max(SimTime::from_ms(self.cfg.idle_backoff_ms));
            if let Some(until) = outcome.defer_until_ms {
                back = back.max(SimTime::from_ms((until - self.now.as_ms()).max(0.0)));
            }
            self.queue_busy_until[qi] = self.now + back;
            self.events
                .push(self.queue_busy_until[qi], Event::ControllerStep);
            return DecisionCommit::Settled {
                consumed_wall: true,
            };
        }

        // Placement sees the state left by any earlier decision applied
        // this round (cheap no-op refresh otherwise).
        self.refresh_state();
        let placed = {
            let ctx = make_ctx(
                self.env,
                &self.slo_ms,
                &self.base_ms,
                self.now,
                key,
                &self.job_views[qi],
                &self.state,
                self.queue_intervals[qi].value(),
            );
            let mut placed = None;
            for &cand in &outcome.candidates {
                if let Some(node) = self.sched.place(&ctx, cand) {
                    placed = Some((cand, node));
                    break;
                }
            }
            placed
        };

        if let Some((config, node)) = placed {
            self.dispatch(key, config, node, outcome.planned_batch, charged);
            self.queue_busy_until[qi] = self.now + charged;
            self.events
                .push(self.queue_busy_until[qi], Event::ControllerStep);
        } else if conflict_on_failure {
            // Optimistic-concurrency loser: staged against state another
            // shard has since mutated. Undo the overhead samples — the
            // retried round re-stages a fresh search, which re-charges.
            self.metrics.overhead_ms.pop();
            self.metrics.wall_overhead_ms.pop();
            return DecisionCommit::Conflicted { outcome };
        } else {
            self.metrics.rechecks += 1;
            self.recheck.push(RecheckEntry {
                key,
                candidates: outcome.candidates,
                planned_batch: outcome.planned_batch,
                rounds: 0,
                last_retry: self.now,
            });
            // Retried by process_recheck on future wakes; completions that
            // free capacity wake the controller.
            self.events.push(
                self.now + SimTime::from_ms(self.cfg.idle_backoff_ms),
                Event::ControllerStep,
            );
        }
        DecisionCommit::Settled {
            consumed_wall: true,
        }
    }

    /// Applies a shed verdict: drops every job of queue `qi`, kills the
    /// owning invocations, and purges their sibling-stage jobs from
    /// every other queue (a killed invocation can never complete, and a
    /// stale sibling job would panic the job-view refill). Emits one
    /// [`SchedulerEvent::QueueShed`] for the shed queue and one per
    /// purged sibling queue.
    fn shed_queue(&mut self, qi: usize, key: QueueKey, reason: ShedReason) {
        let jobs = self.queues[qi].take_all();
        if jobs.is_empty() {
            return;
        }
        self.metrics.shed_jobs += jobs.len() as u64;
        let mut shed: Vec<InvocationId> = Vec::with_capacity(jobs.len());
        for j in &jobs {
            // Guard against slot reuse: only remove when the slot still
            // holds this job's invocation (parallel branches can queue
            // two jobs of one invocation; the first removal frees the
            // slot).
            if self
                .invocations
                .get(j.slot)
                .is_some_and(|inst| inst.id == j.invocation)
            {
                self.invocations.remove(j.slot);
                shed.push(j.invocation);
            }
        }
        self.metrics.shed_invocations += shed.len() as u64;
        // Purge siblings (parallel DAG branches) queue by queue.
        let mut purged: Vec<(usize, Vec<InvocationId>)> = Vec::new();
        for oq in 0..self.queues.len() {
            if oq == qi {
                continue;
            }
            let mut gone: Vec<InvocationId> = Vec::new();
            let invocations = &self.invocations;
            self.queues[oq].retain(|j| {
                let live = invocations
                    .get(j.slot)
                    .is_some_and(|inst| inst.id == j.invocation);
                if !live {
                    gone.push(j.invocation);
                }
                live
            });
            if !gone.is_empty() {
                self.metrics.shed_jobs += gone.len() as u64;
                purged.push((oq, gone));
            }
        }
        // Re-sync any job views already built for this controller step.
        for &(oq, _) in &purged {
            if self.views_stamp[oq] == self.round_seq {
                self.refill_queue_views(oq);
            }
        }
        if self.views_stamp[qi] == self.round_seq {
            self.refill_queue_views(qi);
        }
        self.notify(&SchedulerEvent::QueueShed {
            key,
            invocations: &shed,
            reason,
            now_ms: self.now.as_ms(),
        });
        for (oq, gone) in &purged {
            self.notify(&SchedulerEvent::QueueShed {
                key: self.queue_keys[*oq],
                invocations: gone,
                reason,
                now_ms: self.now.as_ms(),
            });
        }
    }

    /// Retries parked queues; forces minimum-configuration dispatch after
    /// `recheck_limit` rounds (§3.1: "dispatched with the minimum
    /// configuration to ensure progress").
    fn process_recheck(&mut self) {
        if self.recheck.is_empty() {
            return;
        }
        self.notify(&SchedulerEvent::RecheckTick {
            now_ms: self.now.as_ms(),
        });
        let min_gap = SimTime::from_ms(self.cfg.idle_backoff_ms);
        let entries = std::mem::take(&mut self.recheck);
        for mut entry in entries {
            let qi = self.queue_index[&entry.key];
            if self.queues[qi].is_empty() {
                continue; // queue drained by a forced dispatch already
            }
            if self.now.saturating_since(entry.last_retry) < min_gap && entry.rounds > 0 {
                self.recheck.push(entry);
                continue;
            }
            entry.last_retry = self.now;
            self.refresh_state();
            self.refill_queue_views(qi);
            let placed = {
                let ctx = make_ctx(
                    self.env,
                    &self.slo_ms,
                    &self.base_ms,
                    self.now,
                    entry.key,
                    &self.job_views[qi],
                    &self.state,
                    self.queue_intervals[qi].value(),
                );
                let mut placed = None;
                for &cand in &entry.candidates {
                    if let Some(node) = self.sched.place(&ctx, cand) {
                        placed = Some((cand, node));
                        break;
                    }
                }
                placed
            };
            if let Some((config, node)) = placed {
                self.dispatch(entry.key, config, node, entry.planned_batch, SimTime::ZERO);
                continue;
            }
            entry.rounds += 1;
            if entry.rounds >= self.cfg.recheck_limit {
                // Forced minimum configuration on the freest node.
                if let Some(node) = self.state.most_free(Config::MIN.resources()) {
                    self.metrics.forced_min_dispatches += 1;
                    self.dispatch(entry.key, Config::MIN, node, None, SimTime::ZERO);
                    continue;
                }
                // Not even (1,1,1) fits; keep parked at the cap.
                entry.rounds = self.cfg.recheck_limit;
            }
            self.recheck.push(entry);
        }
    }

    fn dispatch(
        &mut self,
        key: QueueKey,
        config: Config,
        node: NodeId,
        planned_batch: Option<u32>,
        delay: SimTime,
    ) {
        let qi = self.queue_index[&key];
        let avail = self.queues[qi].len() as u32;
        debug_assert!(avail > 0, "dispatch on empty queue {key:?}");
        if planned_batch.is_some_and(|b| b > avail) {
            self.metrics.config_misses += 1;
        }
        let config = config.clamp_batch(avail);
        let f = self.queue_fn[qi];
        let spec = self.env.catalog.get(f);
        let jobs = self.queues[qi].take(config.batch as usize);

        let start = self.now + delay;
        let was_warm = self.cluster.node_mut(node).claim_warm(f, start);
        let committed = if was_warm {
            let ok = self.cluster.node_mut(node).commit(config.resources());
            assert!(ok, "placement promised uncommitted capacity on node {node}");
            true
        } else {
            // Cold task: the container provisions for seconds; capacity is
            // claimed when it is actually ready to execute.
            false
        };
        self.state.touch(node);
        let cold_ms = if was_warm { 0.0 } else { spec.cold_start_ms };
        if was_warm {
            self.metrics.warm_starts += 1;
        } else {
            self.metrics.cold_starts += 1;
        }

        // Data transfer: one input per job; local when the producing node is
        // this node. Entry-stage inputs come from the gateway (remote).
        // Remote hand-offs respect per-class topology: the slower of the
        // two endpoints' links scales the cost (§3.4; FaaSTube's
        // cross-node-transfer argument).
        let dst_link = self.cluster.node(node).class.link_scale;
        let mut rate_ms = 0.0;
        let mut base_ms = 0.0f64;
        // Data-plane aggregates (one aggregated flow per dispatched
        // batch): same-node MB, remote/gateway MB, and the distinct
        // remote producers with their same-edge job counts.
        let with_dataplane = self.dataplane.is_some();
        let mut local_jobs = 0u32;
        let mut remote_jobs = 0u32;
        // Jobs whose producer sits in a different server than `node`
        // (ToR traffic; 0 on flat clusters and for gateway inputs).
        let mut cross_jobs = 0u32;
        let mut src_counts: Vec<(usize, u32)> = Vec::new();
        for j in &jobs {
            let local = j.pred_node == Some(node);
            if local {
                self.metrics.local_transfers += 1;
                rate_ms += self.env.transfer.local_ms_per_mb * spec.input_mb;
                base_ms = base_ms.max(self.env.transfer.local_base_ms);
                local_jobs += 1;
            } else {
                let link = match j.pred_node {
                    Some(src) if src.index() < self.cluster.len() => {
                        dst_link.max(self.cluster.node(src).class.link_scale)
                    }
                    _ => dst_link, // gateway: only the destination link counts
                };
                self.metrics.remote_transfers += 1;
                rate_ms += self.env.transfer.remote_ms_per_mb * spec.input_mb * link;
                base_ms = base_ms.max(self.env.transfer.remote_base_ms * link);
                remote_jobs += 1;
                if with_dataplane {
                    if let Some(src) = j.pred_node.filter(|s| s.index() < self.cluster.len()) {
                        match src_counts.iter_mut().find(|(s, _)| *s == src.index()) {
                            Some((_, c)) => *c += 1,
                            None => src_counts.push((src.index(), 1)),
                        }
                        if let Some(map) = &self.servers {
                            if !map.same_server(src, node) {
                                cross_jobs += 1;
                            }
                        }
                    }
                }
            }
        }
        let transfer_ms = base_ms + rate_ms;
        // Profiles are measured on the baseline class; this node runs at
        // its class's latency scale factor.
        let node_speed = self.cluster.node(node).class.speed;
        let exec_ms = self
            .noise
            .noisy_ms(latency_ms(spec, config) * node_speed, &mut self.rng);

        self.metrics.dispatches += 1;
        if let Some(oldest) = jobs.first() {
            self.metrics
                .batch_wait_ms
                .add(self.now.saturating_since(oldest.ready_at).as_ms());
        }
        for j in &jobs {
            self.metrics
                .phase_queue_wait_ms
                .add(self.now.saturating_since(j.ready_at).as_ms());
        }
        self.metrics.batch_size.add(config.batch as f64);
        self.last_node[qi] = Some(node);

        let dispatched: Vec<InvocationId> = jobs.iter().map(|j| j.invocation).collect();
        self.notify(&SchedulerEvent::Dispatched {
            key,
            invocations: &dispatched,
            config,
            node,
            now_ms: self.now.as_ms(),
        });

        // The task's arena slot is its event id: a completed task's slot
        // (and id) is recycled, which is safe because each id has exactly
        // one `ExecReady` and one `TaskComplete` in flight and both are
        // consumed before the slot is freed.
        let id = self.tasks.insert(RunningTask {
            key,
            config,
            node,
            jobs,
            was_warm,
            exec_ms,
            init_ready_at: SimTime::ZERO,
            committed,
        }) as u64;
        // Init phase (cold start + transfer) holds no compute resources: a
        // container being provisioned has not attached its vCPUs/MIG slice
        // yet. Resources attach at ExecReady.
        if let Some(dp) = self.dataplane.as_mut() {
            // Contended data plane: the batch's movement becomes one
            // aggregated flow through the endpoint bandwidth pools. The
            // uncontended plan lands at the *same instant* the scalar
            // `ExecReady` would (`scalar_total_ms` is the identical f64
            // expression), under the same class-2 event rank.
            let batchable = spec.input_mb <= dp.config().batch_max_mb;
            let batched_small = if batchable {
                let edges = src_counts.len() as u32
                    + u32::from(local_jobs > 0)
                    + u32::from(remote_jobs > src_counts.iter().map(|&(_, c)| c).sum::<u32>());
                (local_jobs + remote_jobs).saturating_sub(edges.max(1))
            } else {
                0
            };
            let mb = spec.input_mb;
            let req = TransferReq {
                task: id,
                dst: node.index(),
                remote_srcs: src_counts.iter().map(|&(s, _)| s).collect(),
                remote_mb: remote_jobs as f64 * mb,
                local_mb: local_jobs as f64 * mb,
                base_ms: cold_ms + base_ms,
                work_ms: rate_ms,
                scalar_total_ms: cold_ms + transfer_ms,
                batched_small,
                cross_mb: cross_jobs as f64 * mb,
            };
            let total_mb = req.remote_mb + req.local_mb;
            match dp.begin(req, start) {
                Admission::Active {
                    gen,
                    finish,
                    replans,
                } => {
                    self.events.push(finish, Event::TransferDue(id, gen));
                    for (t, g, at) in replans {
                        self.events.push(at, Event::TransferDue(t, g));
                    }
                    self.notify(&SchedulerEvent::TransferStarted {
                        node,
                        mb: total_mb,
                        now_ms: self.now.as_ms(),
                    });
                }
                Admission::Queued => {
                    self.notify(&SchedulerEvent::TransferQueued {
                        node,
                        mb: total_mb,
                        now_ms: self.now.as_ms(),
                    });
                }
            }
        } else {
            self.metrics.phase_init_ms.add(cold_ms + transfer_ms);
            let ready = start + SimTime::from_ms(cold_ms + transfer_ms);
            self.events.push(ready, Event::ExecReady(id));
        }
    }

    /// A data-plane transfer's planned finish fired. Stale generations
    /// (the flow was re-planned after this event was queued) are
    /// skipped; a current one completes the flow, re-plans squeezed
    /// neighbours, activates staged flows on the freed buffer space, and
    /// runs the task's exec-ready path at this very instant — exactly
    /// where the scalar model's `ExecReady` would have run.
    fn transfer_due(&mut self, id: u64, gen: u64) {
        let Some(dp) = self.dataplane.as_mut() else {
            return;
        };
        let now = self.now;
        let Some(out) = dp.on_due(id, gen, now) else {
            return; // stale generation
        };
        self.metrics.phase_init_ms.add(out.elapsed_ms);
        self.notify(&SchedulerEvent::TransferCompleted {
            node: NodeId(out.node as u32),
            mb: out.mb,
            now_ms: now.as_ms(),
        });
        for (t, g, at) in out.replans {
            self.events.push(at, Event::TransferDue(t, g));
        }
        for act in out.activated {
            self.events
                .push(act.finish, Event::TransferDue(act.task, act.gen));
            self.notify(&SchedulerEvent::TransferStarted {
                node: NodeId(act.node as u32),
                mb: act.mb,
                now_ms: now.as_ms(),
            });
        }
        self.exec_ready(id);
    }

    /// A task's init phase finished: attach resources and run, or queue on
    /// the node until capacity frees.
    fn exec_ready(&mut self, id: u64) {
        let (node, demand, committed) = {
            let t = self.tasks.get_mut(id as u32).expect("live task");
            t.init_ready_at = self.now;
            (t.node, t.config.resources(), t.committed)
        };
        if self.try_attach(id, node, demand, committed) {
            self.begin_exec(id);
        } else {
            self.waiting_exec[node.index()].push_back(id);
        }
    }

    /// Attaches a task's resources: uncommitted (cold) tasks must first win
    /// a commitment; physical attachment then always fits (used ≤
    /// committed is an invariant).
    fn try_attach(&mut self, id: u64, node: NodeId, demand: Resources, committed: bool) -> bool {
        let n = self.cluster.node_mut(node);
        if !committed {
            if !n.commit(demand) {
                return false;
            }
            self.tasks.get_mut(id as u32).expect("live task").committed = true;
            self.state.touch(node);
        }
        let ok = self.cluster.node_mut(node).allocate(demand, self.now);
        assert!(
            ok,
            "physical capacity must cover commitments on node {node}"
        );
        true
    }

    fn begin_exec(&mut self, id: u64) {
        let (key, config, exec_ms, price_scale) = {
            let t = self.tasks.get(id as u32).expect("live task");
            self.metrics
                .phase_exec_queue_ms
                .add(self.now.saturating_since(t.init_ready_at).as_ms());
            self.metrics.phase_exec_ms.add(t.exec_ms);
            (
                t.key,
                t.config,
                t.exec_ms,
                self.cluster.node(t.node).class.price_scale,
            )
        };
        // Billing covers the span resources are actually attached, at the
        // hosting class's per-flavor price.
        let cost = self.env.price.task_cost_cents(config, exec_ms) * price_scale;
        self.metrics.apps[key.app.index()].cost_cents += cost;
        self.events.push(
            self.now + SimTime::from_ms(exec_ms),
            Event::TaskComplete(id),
        );
    }

    fn complete_task(&mut self, id: u64) {
        let task = self.tasks.remove(id as u32).expect("unknown task");
        let keep = SimTime::from_ms(self.cfg.keep_alive_ms);
        let f = self.env.apps[task.key.app.index()].nodes[task.key.stage];
        {
            let n = self.cluster.node_mut(task.node);
            n.release(task.config.resources(), self.now);
            n.uncommit(task.config.resources());
            n.return_slot(f, self.now, keep, task.was_warm);
        }
        self.state.touch(task.node);
        // Freed capacity may admit init-complete tasks waiting on this node.
        self.drain_waiting(task.node);
        self.notify(&SchedulerEvent::TaskCompleted {
            key: task.key,
            node: task.node,
            config: task.config,
            now_ms: self.now.as_ms(),
        });
        let app_spec = &self.env.apps[task.key.app.index()];
        for job in &task.jobs {
            // The invocation may have been shed while this task ran; its
            // slot may even hold a newer invocation by now — match on id.
            let Some(inst) = self
                .invocations
                .get_mut(job.slot)
                .filter(|inst| inst.id == job.invocation)
            else {
                continue;
            };
            let ready = inst.complete_stage(job.stage, task.node, app_spec);
            let complete = inst.is_complete();
            let pred_nodes: Vec<(usize, Option<NodeId>)> = ready
                .iter()
                .map(|&s| (s, inst.pred_node(s, app_spec)))
                .collect();
            if complete {
                let inst = self.invocations.remove(job.slot).expect("present");
                // Invocations inside the warm-up window are excluded from
                // the reported metrics (§4-style steady-state measurement).
                if inst.arrived_at.as_ms() >= self.cfg.warmup_exclude_ms {
                    let m = &mut self.metrics.apps[task.key.app.index()];
                    m.completed += 1;
                    if self.now <= inst.deadline {
                        m.slo_hits += 1;
                    }
                    m.latencies_ms
                        .push(self.now.saturating_since(inst.arrived_at).as_ms());
                }
            }
            for (stage, pred_node) in pred_nodes {
                self.enqueue_job(
                    QueueKey {
                        app: task.key.app,
                        stage,
                    },
                    Job {
                        invocation: job.invocation,
                        slot: job.slot,
                        stage,
                        ready_at: self.now,
                        pred_node,
                    },
                );
            }
        }
    }

    /// Starts as many waiting tasks on `node` as now fit, in FIFO order
    /// (head-of-line blocking preserved: a big task is not overtaken).
    fn drain_waiting(&mut self, node: NodeId) {
        while let Some(&id) = self.waiting_exec[node.index()].front() {
            let (demand, committed) = {
                let t = self.tasks.get(id as u32).expect("live task");
                (t.config.resources(), t.committed)
            };
            if self.try_attach(id, node, demand, committed) {
                self.waiting_exec[node.index()].pop_front();
                self.begin_exec(id);
            } else {
                break;
            }
        }
    }

    fn finish(mut self) -> ExperimentResult {
        let mut cpu_area = 0.0;
        let mut gpu_area = 0.0;
        let mut cpu_cap_area = 0.0;
        let mut gpu_cap_area = 0.0;
        let now = self.now;
        for n in self.cluster.nodes_mut() {
            let (c, g) = n.finish(now);
            cpu_area += c;
            gpu_area += g;
            let (cc, gc) = n.capacity_areas();
            cpu_cap_area += cc;
            gpu_cap_area += gc;
            self.metrics.nodes.push(NodeSummary {
                class: n.class.name.clone(),
                total: n.total,
                peak_used: n.peak_used(),
                online: n.online,
            });
        }
        // Capacity-time denominators: on a static cluster this equals
        // `total × span`; on a churning one, joins only count from their
        // join time.
        self.metrics.vcpu_utilisation = if cpu_cap_area > 0.0 {
            cpu_area / cpu_cap_area
        } else {
            0.0
        };
        self.metrics.vgpu_utilisation = if gpu_cap_area > 0.0 {
            gpu_area / gpu_cap_area
        } else {
            0.0
        };
        self.metrics.makespan_ms = self.now.as_ms();
        if let Some(dp) = &self.dataplane {
            self.metrics.transfers = dp.summary();
        }
        self.metrics.scheduler_stats = match &self.shard_ctl {
            Some(ctl) => {
                let mut stats = self.sched.stats();
                // Policy work ran on the per-shard stack clones, not the
                // scheduler's own (swapped-out) stack; merge their
                // counters in. Stackless schedulers keep their own.
                if let Some(p) = ctl.merged_policy_stats() {
                    stats = stats.with_policy(p);
                }
                stats.with_shards(ctl.stats())
            }
            None => self.sched.stats(),
        };
        // Best-effort trace write: a full ExperimentResult is still the
        // run's product; a broken disk degrades to a stderr report, not
        // a panic after minutes of simulation.
        if let Some(rec) = self.recorder.take() {
            if let Err(e) = rec.finish() {
                eprintln!("warning: trace not recorded: {e}");
            }
        }
        self.metrics
    }
}

/// Builds a scheduling context without borrowing the whole simulation
/// (keeps the scheduler's `&mut self` disjoint from the context data).
#[allow(clippy::too_many_arguments)]
fn make_ctx<'b>(
    env: &'b SimEnv,
    slo_ms: &'b [f64],
    base_ms: &'b [f64],
    now: SimTime,
    key: QueueKey,
    jobs: &'b [JobView],
    cluster: &'b ClusterState,
    queue_interval_ms: Option<f64>,
) -> SchedCtx<'b> {
    let app_idx = key.app.index();
    SchedCtx {
        now_ms: now.as_ms(),
        key,
        jobs,
        function: env.apps[app_idx].nodes[key.stage],
        slo_ms: slo_ms[app_idx],
        base_latency_ms: base_ms[app_idx],
        queue_interval_ms,
        cluster,
        profiles: &env.profiles,
        apps: &env.apps,
        catalog: &env.catalog,
        price: &env.price,
        transfer: &env.transfer,
        noise: &env.noise,
    }
}

/// A reference scheduler that always proposes the minimum configuration and
/// places it on the freest node. Useful as a floor in tests and examples.
#[derive(Debug, Default)]
pub struct MinScheduler;

impl Scheduler for MinScheduler {
    fn name(&self) -> &'static str {
        "min"
    }

    fn capabilities(&self) -> crate::sched::Capabilities {
        crate::sched::Capabilities {
            gpu_sharing: true,
            inter_function_relation: false,
            adaptive: false,
            data_locality: false,
            pre_warming: true,
        }
    }

    fn schedule(&mut self, _ctx: &SchedCtx<'_>) -> Outcome {
        Outcome::single(Config::MIN, 1)
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        ctx.cluster.most_free(config.resources())
    }
}

/// Convenience: build and run a simulation in one call.
pub fn run_simulation(
    env: &SimEnv,
    cfg: SimConfig,
    sched: &mut dyn Scheduler,
    workload: &Workload,
    scenario: &str,
) -> ExperimentResult {
    let mut result = Simulation::new(env, cfg, sched, workload).run();
    result.scenario = scenario.to_string();
    result
}

/// Convenience: run a simulation pulling arrivals lazily from `stream`.
/// Bit-identical to [`run_simulation`] over the materialised form of the
/// same stream; memory stays constant in the arrival count. Unbounded
/// streams need `cfg.max_sim_ms > 0` to terminate.
pub fn run_streamed(
    env: &SimEnv,
    cfg: SimConfig,
    sched: &mut dyn Scheduler,
    stream: ArrivalStream,
    scenario: &str,
) -> ExperimentResult {
    let mut result = Simulation::from_stream(env, cfg, sched, stream).run();
    result.scenario = scenario.to_string();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::WorkloadClass;
    use esg_workload::WorkloadGen;

    fn small_workload(n: usize) -> Workload {
        WorkloadGen::new(WorkloadClass::Light, (0..4u32).map(AppId).collect(), 7).generate(n)
    }

    #[test]
    fn min_scheduler_completes_everything() {
        let env = SimEnv::standard(SloClass::Relaxed);
        let w = small_workload(50);
        let mut s = MinScheduler;
        let r = run_simulation(&env, SimConfig::default(), &mut s, &w, "test");
        assert_eq!(r.arrivals, 50);
        assert_eq!(r.total_completed(), 50);
        assert!(r.dispatches >= 50 * 3, "each stage needs a task");
        assert!(r.total_cost_cents() > 0.0);
        assert!(r.makespan_ms > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let env = SimEnv::standard(SloClass::Moderate);
        let w = small_workload(30);
        let run = || {
            let mut s = MinScheduler;
            run_simulation(&env, SimConfig::default(), &mut s, &w, "det")
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_completed(), b.total_completed());
        assert_eq!(a.dispatches, b.dispatches);
        assert!((a.total_cost_cents() - b.total_cost_cents()).abs() < 1e-9);
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.latencies_ms, y.latencies_ms);
        }
    }

    #[test]
    fn validated_state_run_is_bit_identical_to_unvalidated() {
        // The oracle is read-only: turning it on must not perturb the run
        // (and the run must survive every per-refresh equivalence
        // assertion, including across churn).
        use esg_model::{ChurnPlan, NodeClass, NodeId};
        let env = SimEnv::standard(SloClass::Moderate);
        let w = small_workload(30);
        let run = |validate: bool| {
            let mut s = MinScheduler;
            run_simulation(
                &env,
                SimConfig {
                    churn: ChurnPlan::none()
                        .drain(100.0, NodeId(1))
                        .join(300.0, NodeClass::t4()),
                    validate_cluster_state: validate,
                    ..SimConfig::default()
                },
                &mut s,
                &w,
                "oracle",
            )
        };
        let mut a = run(true);
        let mut b = run(false);
        a.wall_overhead_ms.clear();
        b.wall_overhead_ms.clear();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn slo_hits_scale_with_class() {
        // The same workload under relaxed SLO should hit at least as often
        // as under strict.
        let w = small_workload(40);
        let hit = |slo| {
            let env = SimEnv::standard(slo);
            let mut s = MinScheduler;
            run_simulation(&env, SimConfig::default(), &mut s, &w, "x").overall_hit_rate()
        };
        assert!(hit(SloClass::Relaxed) >= hit(SloClass::Strict));
    }

    #[test]
    fn cold_starts_then_warm_starts() {
        let env = SimEnv::standard(SloClass::Relaxed);
        let w = small_workload(60);
        let mut s = MinScheduler;
        let r = run_simulation(&env, SimConfig::default(), &mut s, &w, "warm");
        assert!(r.cold_starts > 0);
        // MinScheduler scatters tasks over the freest nodes, so warm reuse
        // is limited — but keep-alive must still produce some warm starts.
        assert!(
            r.warm_starts > 0,
            "keep-alive should give some warm starts: warm={} cold={}",
            r.warm_starts,
            r.cold_starts
        );
        assert_eq!(r.warm_starts + r.cold_starts, r.dispatches);
    }

    #[test]
    fn prewarming_reduces_cold_starts() {
        let env = SimEnv::standard(SloClass::Relaxed);
        let w = small_workload(80);
        let mut on = MinScheduler;
        let mut off = MinScheduler;
        let r_on = run_simulation(&env, SimConfig::default(), &mut on, &w, "p");
        let r_off = run_simulation(
            &env,
            SimConfig {
                prewarm: false,
                ..SimConfig::default()
            },
            &mut off,
            &w,
            "np",
        );
        assert!(
            r_on.cold_starts <= r_off.cold_starts,
            "prewarm {} vs no-prewarm {}",
            r_on.cold_starts,
            r_off.cold_starts
        );
    }

    #[test]
    fn overhead_recorded() {
        let env = SimEnv::standard(SloClass::Moderate);
        let w = small_workload(20);
        let mut s = MinScheduler;
        let r = run_simulation(&env, SimConfig::default(), &mut s, &w, "o");
        assert_eq!(r.overhead_ms.len() as u64, r.dispatches + r.rechecks);
        assert!(r.overhead_ms.iter().all(|&o| o >= 0.0));
        assert_eq!(r.wall_overhead_ms.len(), r.overhead_ms.len());
    }

    #[test]
    fn utilisation_bounded() {
        let env = SimEnv::standard(SloClass::Moderate);
        let w = small_workload(40);
        let mut s = MinScheduler;
        let r = run_simulation(&env, SimConfig::default(), &mut s, &w, "u");
        assert!(r.vcpu_utilisation >= 0.0 && r.vcpu_utilisation <= 1.0);
        assert!(r.vgpu_utilisation >= 0.0 && r.vgpu_utilisation <= 1.0);
        assert!(r.vgpu_utilisation > 0.0);
    }

    #[test]
    fn hetero_cluster_from_spec_slows_and_reprices_execution() {
        use esg_model::{ClusterSpec, NodeClass};
        let env = SimEnv::standard(SloClass::Relaxed);
        let w = small_workload(30);
        let run = |spec: ClusterSpec| {
            let mut s = MinScheduler;
            run_simulation(
                &env,
                SimConfig {
                    cluster: Some(spec),
                    ..SimConfig::default()
                },
                &mut s,
                &w,
                "spec",
            )
        };
        // 16 "T4-speed" nodes at paper capacity vs the paper baseline:
        // identical placement decisions, scaled latency and price.
        let slow_class = NodeClass::a100().with_speed(2.0).named("a100-half");
        let base = run(ClusterSpec::paper());
        let slow = run(ClusterSpec::new("slow").with(slow_class, 16));
        assert_eq!(base.total_completed(), 30);
        assert_eq!(slow.total_completed(), 30);
        let mean = |r: &ExperimentResult| {
            r.apps.iter().map(AppMetrics::mean_latency_ms).sum::<f64>() / r.apps.len() as f64
        };
        assert!(
            mean(&slow) > 1.3 * mean(&base),
            "slow {} vs base {}",
            mean(&slow),
            mean(&base)
        );
        // Same spec, cheaper flavor: identical latency, scaled cost.
        let cheap_class = NodeClass::a100().named("a100-cheap");
        let mut cheap_class = cheap_class;
        cheap_class.price_scale = 0.5;
        let cheap = run(ClusterSpec::new("cheap").with(cheap_class, 16));
        assert!((cheap.total_cost_cents() - 0.5 * base.total_cost_cents()).abs() < 1e-6);
        // Node summaries record the classes.
        assert_eq!(base.nodes.len(), 16);
        assert!(base.nodes.iter().all(|n| n.class == "a100"));
        assert!(base.nodes.iter().all(|n| n.total.contains(n.peak_used)));
    }

    #[test]
    fn drain_stops_new_placements_but_completes_admitted_work() {
        use esg_model::{ChurnPlan, NodeId};
        let env = SimEnv::standard(SloClass::Relaxed);
        let w = small_workload(40);
        // Drain half the cluster early: everything must still complete on
        // the remaining nodes.
        let mut plan = ChurnPlan::none();
        for i in 0..8u32 {
            plan = plan.drain(50.0, NodeId(i));
        }
        let mut s = MinScheduler;
        let r = run_simulation(
            &env,
            SimConfig {
                churn: plan,
                ..SimConfig::default()
            },
            &mut s,
            &w,
            "drain",
        );
        assert_eq!(r.total_completed(), 40);
        assert_eq!(r.nodes.iter().filter(|n| !n.online).count(), 8);
    }

    #[test]
    fn join_mid_run_adds_capacity_and_summary() {
        use esg_model::{ChurnPlan, NodeClass};
        let env = SimEnv::standard(SloClass::Relaxed);
        let w = small_workload(30);
        let plan = ChurnPlan::none()
            .join(100.0, NodeClass::a100().named("late-a100"))
            .join(200.0, NodeClass::t4());
        let mut s = MinScheduler;
        let r = run_simulation(
            &env,
            SimConfig {
                churn: plan,
                ..SimConfig::default()
            },
            &mut s,
            &w,
            "join",
        );
        assert_eq!(r.total_completed(), 30);
        assert_eq!(r.nodes.len(), 18);
        assert_eq!(r.nodes[16].class, "late-a100");
        assert_eq!(r.nodes[17].class, "t4");
        assert!(r.vgpu_utilisation > 0.0 && r.vgpu_utilisation <= 1.0);
    }

    #[test]
    fn trailing_churn_does_not_inflate_makespan_or_dilute_utilisation() {
        use esg_model::{ChurnPlan, NodeClass, NodeId};
        let env = SimEnv::standard(SloClass::Relaxed);
        let w = small_workload(20);
        let base = {
            let mut s = MinScheduler;
            run_simulation(&env, SimConfig::default(), &mut s, &w, "b")
        };
        // Churn scripted long after the last completion must not advance
        // the simulation clock.
        let mut s = MinScheduler;
        let late = run_simulation(
            &env,
            SimConfig {
                churn: ChurnPlan::none()
                    .drain(10_000_000.0, NodeId(0))
                    .join(20_000_000.0, NodeClass::t4()),
                ..SimConfig::default()
            },
            &mut s,
            &w,
            "late-churn",
        );
        assert_eq!(late.total_completed(), 20);
        assert!(
            late.makespan_ms <= base.makespan_ms + 1.0,
            "trailing churn inflated makespan: {} vs {}",
            late.makespan_ms,
            base.makespan_ms
        );
        assert!((late.vgpu_utilisation - base.vgpu_utilisation).abs() < 1e-9);
    }

    #[test]
    fn churn_runs_are_deterministic() {
        use esg_model::{ChurnPlan, NodeClass, NodeId};
        let env = SimEnv::standard(SloClass::Moderate);
        let w = small_workload(25);
        let run = || {
            let mut s = MinScheduler;
            run_simulation(
                &env,
                SimConfig {
                    cluster: Some(esg_model::ClusterSpec::mixed_mig()),
                    churn: ChurnPlan::rolling_replace(80.0, 120.0, NodeId(2), NodeClass::v100()),
                    ..SimConfig::default()
                },
                &mut s,
                &w,
                "churn-det",
            )
        };
        let a = run();
        let b = run();
        assert_eq!(format!("{:?}", a.nodes), format!("{:?}", b.nodes));
        assert_eq!(a.dispatches, b.dispatches);
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.latencies_ms, y.latencies_ms);
        }
    }

    #[test]
    fn max_sim_cap_stops_early() {
        let env = SimEnv::standard(SloClass::Moderate);
        let w = small_workload(100);
        let mut s = MinScheduler;
        let r = run_simulation(
            &env,
            SimConfig {
                max_sim_ms: 500.0,
                ..SimConfig::default()
            },
            &mut s,
            &w,
            "cap",
        );
        assert!(r.total_completed() < 100);
        assert!(r.makespan_ms <= 500.0 + 1.0);
    }

    /// A cross-queue scheduler exercising the multi-decision round path:
    /// it decides *every* eligible queue in one `schedule_round` call
    /// (shortest-queue-first), rather than relying on the default
    /// one-at-a-time replay.
    struct GreedyRoundScheduler;

    impl Scheduler for GreedyRoundScheduler {
        fn name(&self) -> &'static str {
            "greedy-round"
        }

        fn capabilities(&self) -> crate::sched::Capabilities {
            MinScheduler.capabilities()
        }

        fn schedule(&mut self, _ctx: &SchedCtx<'_>) -> Outcome {
            Outcome::single(Config::MIN, 1)
        }

        fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
            ctx.cluster.most_free(config.resources())
        }

        fn schedule_round(&mut self, ctx: &RoundCtx<'_>) -> Vec<(QueueKey, Outcome)> {
            let mut order: Vec<usize> = (0..ctx.queues.len()).collect();
            order.sort_by_key(|&i| (ctx.queues[i].jobs.len(), i));
            order
                .into_iter()
                .map(|i| (ctx.queues[i].key, self.schedule(&ctx.sched_ctx(i))))
                .collect()
        }
    }

    #[test]
    fn cross_queue_rounds_complete_all_work() {
        let env = SimEnv::standard(SloClass::Relaxed);
        let w = small_workload(40);
        let mut s = GreedyRoundScheduler;
        let r = run_simulation(
            &env,
            SimConfig {
                validate_cluster_state: true,
                ..SimConfig::default()
            },
            &mut s,
            &w,
            "round",
        );
        assert_eq!(r.total_completed(), 40);
        assert_eq!(r.warm_starts + r.cold_starts, r.dispatches);
        assert_eq!(r.overhead_ms.len() as u64, r.dispatches + r.rechecks);
    }
}
