//! The validating front door for simulation runs: [`SimBuilder`] →
//! [`Sim`] → [`ExperimentResult`].
//!
//! `SimEnv`/`SimConfig` are plain knob records: a struct literal accepts
//! an empty cluster, a zero keep-alive, or a churn script draining a
//! node that never exists, and the mistake surfaces as a panic deep
//! inside the event loop (or as a silently ignored churn event). The
//! builder checks every cross-field invariant up front and returns a
//! typed [`SimError`] instead, then bundles the validated environment
//! and configuration as a reusable [`Sim`].
//!
//! ```
//! use esg_sim::{MinScheduler, SimBuilder};
//! use esg_model::{SloClass, WorkloadClass};
//! use esg_workload::WorkloadGen;
//!
//! let sim = SimBuilder::new(SloClass::Moderate)
//!     .warmup_exclude_ms(1_000.0)
//!     .seed(7)
//!     .build()
//!     .expect("valid configuration");
//! let workload = WorkloadGen::new(
//!     WorkloadClass::Light,
//!     esg_model::standard_app_ids(),
//!     7,
//! )
//! .generate(10);
//! let mut sched = MinScheduler;
//! let result = sim.run(&mut sched, &workload, "doc");
//! assert_eq!(result.arrivals, 10);
//! ```

use crate::dataplane::DataPlaneConfig;
use crate::event::EventQueueKind;
use crate::metrics::ExperimentResult;
use crate::platform::{run_simulation, run_streamed, SimConfig, SimEnv};
use crate::policy::{PackingConfig, PolicySpec, SloAdmissionConfig};
use crate::sched::{OverheadModel, Scheduler};
use esg_model::{
    AppSpec, ChurnEvent, ChurnPlan, ClusterSpec, ConfigGrid, NodeClass, Resources, SloClass,
};
use esg_profile::TransferModel;
use esg_workload::{ArrivalStream, Workload};

/// A configuration rejected by [`SimBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The cluster would have no usable node (zero nodes, or a node with
    /// no resources at all).
    EmptyCluster,
    /// The environment would have no applications (or an app without
    /// stages), so no queue could ever form.
    NoApplications,
    /// A scalar knob is out of its valid range.
    InvalidKnob {
        /// Which knob.
        knob: &'static str,
        /// The offending value.
        value: f64,
        /// What the knob requires.
        requirement: &'static str,
    },
    /// A churn event is inconsistent with cluster membership at its
    /// scripted time (e.g. draining a node that will not exist).
    InvalidChurn {
        /// Index into the churn plan's event list.
        index: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A custom application references a function outside the catalog.
    UnknownFunction {
        /// The offending application's name.
        app: String,
        /// The out-of-catalog function id.
        function: esg_model::FnId,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::EmptyCluster => write!(f, "cluster has no usable node"),
            SimError::NoApplications => write!(f, "environment has no runnable application"),
            SimError::InvalidKnob {
                knob,
                value,
                requirement,
            } => write!(f, "knob {knob} = {value} violates: {requirement}"),
            SimError::InvalidChurn { index, reason } => {
                write!(f, "churn event #{index}: {reason}")
            }
            SimError::UnknownFunction { app, function } => {
                write!(f, "app {app} references {function:?}, not in the catalog")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Fluent, validating constructor for simulation runs.
///
/// Every setter mirrors a [`SimConfig`]/[`SimEnv`] knob;
/// [`build`](Self::build) validates the whole bundle and returns a
/// [`Sim`] or a typed [`SimError`]. Defaults are the paper's Table-2
/// platform on the standard environment.
#[derive(Clone, Debug)]
pub struct SimBuilder {
    slo: SloClass,
    grid: ConfigGrid,
    apps: Option<Vec<AppSpec>>,
    transfer: Option<TransferModel>,
    cfg: SimConfig,
    policy: PolicySpec,
}

impl SimBuilder {
    /// A builder for the standard environment under `slo`.
    pub fn new(slo: SloClass) -> SimBuilder {
        SimBuilder {
            slo,
            grid: ConfigGrid::default(),
            apps: None,
            transfer: None,
            cfg: SimConfig::default(),
            policy: PolicySpec::Classic,
        }
    }

    /// Selects the round-policy stack schedulers run under (default:
    /// the classic one-queue-at-a-time contract). The spec's scalar
    /// knobs are validated at [`build`](Self::build); a scheduler that
    /// cannot honour the spec makes [`Sim::try_run`] return
    /// [`SimError::InvalidKnob`].
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the configuration grid (ablations restrict it, overhead
    /// sweeps enlarge it).
    pub fn grid(mut self, grid: ConfigGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Replaces the §4.1 standard applications with custom specs.
    pub fn apps(mut self, apps: Vec<AppSpec>) -> Self {
        self.apps = Some(apps);
        self
    }

    /// A homogeneous cluster of `n` nodes (Table-2 resources unless
    /// [`node_resources`](Self::node_resources) overrides them).
    pub fn nodes(mut self, n: usize) -> Self {
        self.cfg.nodes = n;
        self.cfg.cluster = None;
        self
    }

    /// Per-node resources for the homogeneous path.
    pub fn node_resources(mut self, r: Resources) -> Self {
        self.cfg.node_resources = r;
        self
    }

    /// A declarative heterogeneous cluster (overrides
    /// [`nodes`](Self::nodes)).
    pub fn cluster(mut self, spec: ClusterSpec) -> Self {
        self.cfg.cluster = Some(spec);
        self
    }

    /// Scripted node drains/joins applied mid-run.
    pub fn churn(mut self, plan: ChurnPlan) -> Self {
        self.cfg.churn = plan;
        self
    }

    /// Replaces the environment's per-job transfer tariffs (§3.4
    /// defaults otherwise). Every `*_ms_per_mb`/`*_base_ms` must be
    /// finite and >= 0; [`build`](Self::build) rejects the rest as
    /// [`SimError::InvalidKnob`].
    pub fn transfer(mut self, model: TransferModel) -> Self {
        self.transfer = Some(model);
        self
    }

    /// Enables the contended-bandwidth data plane: per-node PCIe/NVLink
    /// pools, bounded staging buffers, and transfer batching replace
    /// the scalar per-dispatch transfer charge. Off by default — the
    /// classic scalar model stays bit-identical to the pinned golden
    /// digests; at `bandwidth_scale` high enough that no pool ever
    /// saturates, the data plane reproduces the scalar timings exactly
    /// (pinned by `tests/dataplane_equivalence.rs`).
    pub fn data_plane(mut self, dp: DataPlaneConfig) -> Self {
        self.cfg.data_plane = Some(dp);
        self
    }

    /// Enables the static-pinning tier's knobs (consumed by the hybrid
    /// scheduler in `esg-core` through [`Sim::config`]). The pin budget
    /// is checked against the cluster's total vGPU capacity at
    /// [`build`](Self::build); an over-committed budget is an
    /// [`SimError::InvalidKnob`], not a stranded plan at runtime.
    pub fn pinning(mut self, p: crate::pinning::PinningConfig) -> Self {
        self.cfg.pinning = Some(p);
        self
    }

    /// Warm-container keep-alive, ms.
    pub fn keep_alive_ms(mut self, ms: f64) -> Self {
        self.cfg.keep_alive_ms = ms;
        self
    }

    /// Search-effort → controller-time conversion.
    pub fn overhead(mut self, model: OverheadModel) -> Self {
        self.cfg.overhead = model;
        self
    }

    /// Whether decision time occupies the controller ("w/o searching
    /// overhead" variants disable it).
    pub fn charge_overhead(mut self, on: bool) -> Self {
        self.cfg.charge_overhead = on;
        self
    }

    /// Enables/disables the EWMA pre-warming proxy.
    pub fn prewarm(mut self, on: bool) -> Self {
        self.cfg.prewarm = on;
        self
    }

    /// EWMA smoothing factor for the pre-warmer, in `(0, 1]`.
    pub fn prewarm_alpha(mut self, alpha: f64) -> Self {
        self.cfg.prewarm_alpha = alpha;
        self
    }

    /// Warm containers per (node, function) installed at t = 0.
    pub fn initial_warm_per_node(mut self, n: u32) -> Self {
        self.cfg.initial_warm_per_node = n;
        self
    }

    /// Pool cap the pre-warm proxy grows towards per (node, function).
    pub fn prewarm_pool_cap(mut self, cap: usize) -> Self {
        self.cfg.prewarm_pool_cap = cap;
        self
    }

    /// Warm-up window excluded from SLO/latency metrics, ms.
    pub fn warmup_exclude_ms(mut self, ms: f64) -> Self {
        self.cfg.warmup_exclude_ms = ms;
        self
    }

    /// RNG seed (noise and stochastic scheduler choices).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Recheck rounds before a forced minimum-configuration dispatch.
    pub fn recheck_limit(mut self, rounds: u32) -> Self {
        self.cfg.recheck_limit = rounds;
        self
    }

    /// Controller back-off when a scan found only skips, ms.
    pub fn idle_backoff_ms(mut self, ms: f64) -> Self {
        self.cfg.idle_backoff_ms = ms;
        self
    }

    /// Controller shards: partitions the queues across `n` round
    /// drivers staging against the shared generation-stamped state,
    /// with ordered optimistic commits (conflicts retry). `1` keeps the
    /// classic single driver; must be at least 1.
    pub fn shards(mut self, n: usize) -> Self {
        self.cfg.shards = n;
        self
    }

    /// Routes even a one-shard run through the sharded staging/commit
    /// driver (equivalence tests and benches; the classic driver is the
    /// default at `shards == 1`).
    pub fn force_sharded(mut self, on: bool) -> Self {
        self.cfg.force_sharded = on;
        self
    }

    /// Event-queue backend: the default binary [`EventQueueKind::Heap`]
    /// or the O(1) hierarchical timer [`EventQueueKind::Wheel`]. Both
    /// produce bit-identical dispatch traces (pinned by the replay
    /// equivalence battery); the wheel wins on deep pending-event
    /// populations.
    pub fn event_queue(mut self, kind: EventQueueKind) -> Self {
        self.cfg.event_queue = kind;
        self
    }

    /// Records every run's full control-plane event stream (arrivals,
    /// dispatches, completions, churn, sheds, shard commits) to `path`,
    /// replayable via [`TraceReplay`](crate::TraceReplay). The write
    /// happens at the end of each run and is best-effort (a failure is
    /// reported on stderr); loading is fully typed through
    /// [`TraceError`](crate::TraceError).
    pub fn record_trace(mut self, path: impl AsRef<std::path::Path>) -> Self {
        self.cfg.record_trace = Some(path.as_ref().to_path_buf());
        self
    }

    /// Safety cap on simulated time, ms (0 = none).
    pub fn max_sim_ms(mut self, ms: f64) -> Self {
        self.cfg.max_sim_ms = ms;
        self
    }

    /// Turns on the incremental-vs-snapshot `ClusterState` equivalence
    /// oracle (test runs only; costs a rebuild per refresh).
    pub fn validate_cluster_state(mut self, on: bool) -> Self {
        self.cfg.validate_cluster_state = on;
        self
    }

    /// Validates the bundle and materialises the environment.
    pub fn build(self) -> Result<Sim, SimError> {
        let SimBuilder {
            slo,
            grid,
            apps,
            transfer,
            cfg,
            policy,
        } = self;

        validate_policy(&policy)?;

        // Cluster shape.
        match &cfg.cluster {
            Some(spec) => {
                if spec.nodes.is_empty() {
                    return Err(SimError::EmptyCluster);
                }
                if spec.nodes.iter().any(|c| c.resources() == Resources::ZERO) {
                    return Err(SimError::EmptyCluster);
                }
                for class in &spec.nodes {
                    validate_class_bandwidth(class)?;
                }
                if let Some(t) = spec.topology {
                    if t.gpus_per_server == 0 {
                        return Err(SimError::InvalidKnob {
                            knob: "topology.gpus_per_server",
                            value: 0.0,
                            requirement: "at least 1 node per server",
                        });
                    }
                    if !(t.tor_gbps > 0.0 && t.tor_gbps.is_finite()) {
                        return Err(SimError::InvalidKnob {
                            knob: "topology.tor_gbps",
                            value: t.tor_gbps,
                            requirement: "finite and > 0",
                        });
                    }
                }
            }
            None => {
                if cfg.nodes == 0 || cfg.node_resources == Resources::ZERO {
                    return Err(SimError::EmptyCluster);
                }
            }
        }
        // Joined classes feed the same bandwidth pools.
        for ev in &cfg.churn.events {
            if let ChurnEvent::Join { class, .. } = ev {
                validate_class_bandwidth(class)?;
            }
        }

        // Transfer tariffs (scalar and data-plane modes both read them).
        if let Some(t) = &transfer {
            let tariffs: [(&'static str, f64); 4] = [
                ("transfer.local_base_ms", t.local_base_ms),
                ("transfer.local_ms_per_mb", t.local_ms_per_mb),
                ("transfer.remote_base_ms", t.remote_base_ms),
                ("transfer.remote_ms_per_mb", t.remote_ms_per_mb),
            ];
            for (knob, value) in tariffs {
                if !(value >= 0.0 && value.is_finite()) {
                    return Err(SimError::InvalidKnob {
                        knob,
                        value,
                        requirement: "finite and >= 0",
                    });
                }
            }
        }

        // Data-plane knobs.
        if let Some(dp) = &cfg.data_plane {
            let scales: [(&'static str, f64); 2] = [
                ("data_plane.bandwidth_scale", dp.bandwidth_scale),
                ("data_plane.staging_scale", dp.staging_scale),
            ];
            for (knob, value) in scales {
                if !(value > 0.0 && value.is_finite()) {
                    return Err(SimError::InvalidKnob {
                        knob,
                        value,
                        requirement: "finite and > 0",
                    });
                }
            }
            if !(dp.batch_max_mb >= 0.0 && dp.batch_max_mb.is_finite()) {
                return Err(SimError::InvalidKnob {
                    knob: "data_plane.batch_max_mb",
                    value: dp.batch_max_mb,
                    requirement: "finite and >= 0",
                });
            }
        }

        // Static-pinning knobs: the tier must have real capacity behind
        // it (the empty-cluster case already failed above, so a vGPU
        // budget within capacity is dispatchable by construction).
        if let Some(p) = &cfg.pinning {
            if !(p.min_share_factor > 0.0 && p.min_share_factor.is_finite()) {
                return Err(SimError::InvalidKnob {
                    knob: "pinning.min_share_factor",
                    value: p.min_share_factor,
                    requirement: "finite and > 0",
                });
            }
            if p.max_pinned_apps == 0 {
                return Err(SimError::InvalidKnob {
                    knob: "pinning.max_pinned_apps",
                    value: 0.0,
                    requirement: "at least 1 pinnable application",
                });
            }
            let capacity: u64 = match &cfg.cluster {
                Some(spec) => spec
                    .nodes
                    .iter()
                    .map(|c| u64::from(c.resources().vgpus))
                    .sum(),
                None => cfg.nodes as u64 * u64::from(cfg.node_resources.vgpus),
            };
            if p.budget_vgpus > capacity {
                return Err(SimError::InvalidKnob {
                    knob: "pinning.budget_vgpus",
                    value: p.budget_vgpus as f64,
                    requirement: "within the cluster's total vGPU capacity",
                });
            }
        }

        // Scalar knobs.
        let positive: [(&str, f64); 3] = [
            ("keep_alive_ms", cfg.keep_alive_ms),
            ("prewarm_alpha", cfg.prewarm_alpha),
            ("idle_backoff_ms", cfg.idle_backoff_ms),
        ];
        for (knob, value) in positive {
            if !(value > 0.0 && value.is_finite()) {
                return Err(SimError::InvalidKnob {
                    knob,
                    value,
                    requirement: "finite and > 0",
                });
            }
        }
        if cfg.prewarm_alpha > 1.0 {
            return Err(SimError::InvalidKnob {
                knob: "prewarm_alpha",
                value: cfg.prewarm_alpha,
                requirement: "within (0, 1]",
            });
        }
        let non_negative: [(&str, f64); 2] = [
            ("warmup_exclude_ms", cfg.warmup_exclude_ms),
            ("max_sim_ms", cfg.max_sim_ms),
        ];
        for (knob, value) in non_negative {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(SimError::InvalidKnob {
                    knob,
                    value,
                    requirement: "finite and >= 0",
                });
            }
        }
        if cfg.recheck_limit == 0 {
            return Err(SimError::InvalidKnob {
                knob: "recheck_limit",
                value: 0.0,
                requirement: "at least 1 round before the forced minimum",
            });
        }
        if cfg.shards == 0 {
            return Err(SimError::InvalidKnob {
                knob: "shards",
                value: 0.0,
                requirement: "at least 1 controller shard",
            });
        }

        // Churn script vs cluster membership: replay the plan in time
        // order and check that every drain names a node that exists by
        // then (the platform would otherwise skip it silently).
        validate_churn(&cfg)?;

        let mut env = SimEnv::with_grid(slo, grid);
        if let Some(t) = transfer {
            env.transfer = t;
        }
        if let Some(apps) = apps {
            if apps.is_empty() || apps.iter().any(|a| a.num_stages() == 0) {
                return Err(SimError::NoApplications);
            }
            // Every stage must name a catalog function — an out-of-range
            // id would otherwise surface as an index panic at the first
            // dispatch touching it.
            let known = env.catalog.iter().count();
            for a in &apps {
                if let Some(&f) = a.nodes.iter().find(|f| f.index() >= known) {
                    return Err(SimError::UnknownFunction {
                        app: a.name.to_string(),
                        function: f,
                    });
                }
            }
            env.apps = apps;
        }
        Ok(Sim { env, cfg, policy })
    }
}

/// Scalar validation of a policy spec's knobs (the scheduler-combo check
/// happens at [`Sim::try_run`], where the scheduler exists).
fn validate_policy(policy: &PolicySpec) -> Result<(), SimError> {
    fn admission(cfg: &SloAdmissionConfig) -> Result<(), SimError> {
        if !(cfg.defer_ms > 0.0 && cfg.defer_ms.is_finite()) {
            return Err(SimError::InvalidKnob {
                knob: "policy.defer_ms",
                value: cfg.defer_ms,
                requirement: "finite and > 0",
            });
        }
        Ok(())
    }
    fn packing(cfg: &PackingConfig) -> Result<(), SimError> {
        if cfg.round_budget == 0 {
            return Err(SimError::InvalidKnob {
                knob: "policy.round_budget",
                value: 0.0,
                requirement: "at least 1 expanded configuration per round",
            });
        }
        if !(cfg.defer_ms > 0.0 && cfg.defer_ms.is_finite()) {
            return Err(SimError::InvalidKnob {
                knob: "policy.defer_ms",
                value: cfg.defer_ms,
                requirement: "finite and > 0",
            });
        }
        if !(cfg.warm_bias >= 0.0 && cfg.warm_bias.is_finite()) {
            return Err(SimError::InvalidKnob {
                knob: "policy.warm_bias",
                value: cfg.warm_bias,
                requirement: "finite and >= 0",
            });
        }
        Ok(())
    }
    match policy {
        PolicySpec::Classic => Ok(()),
        PolicySpec::SloAdmission(a) => admission(a),
        PolicySpec::CrossQueuePacking(p) => packing(p),
        PolicySpec::PackingWithAdmission(a, p) => {
            admission(a)?;
            packing(p)
        }
        PolicySpec::BandwidthPacking(b) => {
            packing(&b.packing)?;
            if !(b.contention_bias >= 0.0 && b.contention_bias.is_finite()) {
                return Err(SimError::InvalidKnob {
                    knob: "policy.contention_bias",
                    value: b.contention_bias,
                    requirement: "finite and >= 0",
                });
            }
            Ok(())
        }
    }
}

/// Per-class bandwidth/staging invariants: a zero or non-finite value
/// would make a pool's fair share degenerate (division by the member
/// count of a zero-capacity pool, or a NaN finish time).
fn validate_class_bandwidth(class: &NodeClass) -> Result<(), SimError> {
    let fields: [(&'static str, f64); 4] = [
        ("class.pcie_in_gbps", class.pcie_in_gbps),
        ("class.pcie_out_gbps", class.pcie_out_gbps),
        ("class.nvlink_gbps", class.nvlink_gbps),
        ("class.staging_mb", class.staging_mb),
    ];
    for (knob, value) in fields {
        if !(value > 0.0 && value.is_finite()) {
            return Err(SimError::InvalidKnob {
                knob,
                value,
                requirement: "finite and > 0",
            });
        }
    }
    Ok(())
}

fn validate_churn(cfg: &SimConfig) -> Result<(), SimError> {
    let initial = match &cfg.cluster {
        Some(spec) => spec.nodes.len(),
        None => cfg.nodes,
    };
    // Stable sort by time replays the event queue's (time, push-order)
    // delivery.
    let mut order: Vec<usize> = (0..cfg.churn.events.len()).collect();
    order.sort_by(|&a, &b| {
        cfg.churn.events[a]
            .at_ms()
            .total_cmp(&cfg.churn.events[b].at_ms())
    });
    let mut members = initial;
    for index in order {
        let ev = &cfg.churn.events[index];
        let at = ev.at_ms();
        if !(at >= 0.0 && at.is_finite()) {
            return Err(SimError::InvalidChurn {
                index,
                reason: format!("scripted at t = {at} ms (must be finite and >= 0)"),
            });
        }
        match ev {
            ChurnEvent::Drain { node, .. } => {
                if node.index() >= members {
                    return Err(SimError::InvalidChurn {
                        index,
                        reason: format!(
                            "drains {node:?} but only {members} nodes exist at t = {at} ms"
                        ),
                    });
                }
            }
            ChurnEvent::Join { .. } => members += 1,
        }
    }
    Ok(())
}

/// A validated environment + configuration bundle, ready to run any
/// number of schedulers/workloads over the same setting.
#[derive(Clone, Debug)]
pub struct Sim {
    env: SimEnv,
    cfg: SimConfig,
    policy: PolicySpec,
}

impl Sim {
    /// The validated environment.
    pub fn env(&self) -> &SimEnv {
        &self.env
    }

    /// The validated platform configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The round policy every run installs via
    /// [`Scheduler::adopt_policy`].
    pub fn policy(&self) -> PolicySpec {
        self.policy
    }

    /// Runs `sched` over `workload`, labelling the result `scenario`.
    ///
    /// Panics when `sched` rejects the configured round policy (only
    /// possible for non-classic [`SimBuilder::policy`] selections);
    /// [`try_run`](Self::try_run) returns the typed error instead.
    pub fn run(
        &self,
        sched: &mut dyn Scheduler,
        workload: &Workload,
        scenario: &str,
    ) -> ExperimentResult {
        self.try_run(sched, workload, scenario)
            .expect("scheduler rejected the configured round policy (use Sim::try_run)")
    }

    /// Runs `sched` over `workload`, surfacing an incompatible
    /// scheduler/policy combo as [`SimError::InvalidKnob`] instead of
    /// panicking.
    ///
    /// The default `PolicySpec::Classic` imposes nothing — a scheduler
    /// already carrying a hand-composed stack (`with_policy`) keeps it;
    /// any other spec is installed via [`Scheduler::adopt_policy`].
    pub fn try_run(
        &self,
        sched: &mut dyn Scheduler,
        workload: &Workload,
        scenario: &str,
    ) -> Result<ExperimentResult, SimError> {
        if !matches!(self.policy, PolicySpec::Classic) && !sched.adopt_policy(&self.policy) {
            return Err(SimError::InvalidKnob {
                knob: "policy",
                value: 0.0,
                requirement: "a round-policy stack this scheduler supports \
(ESG packing needs EsgScheduler; MinScheduler is classic-only)",
            });
        }
        Ok(run_simulation(
            &self.env,
            self.cfg.clone(),
            sched,
            workload,
            scenario,
        ))
    }

    /// Runs `sched` over a lazily generated [`ArrivalStream`], labelling
    /// the result `scenario`. Arrivals are pulled one at a time as
    /// simulated time advances, so memory stays constant in the stream
    /// length; the dispatch trace is bit-identical to materialising the
    /// same stream and calling [`run`](Self::run).
    ///
    /// Panics when `sched` rejects the configured round policy;
    /// [`try_run_streamed`](Self::try_run_streamed) returns the typed
    /// error instead.
    pub fn run_streamed(
        &self,
        sched: &mut dyn Scheduler,
        stream: ArrivalStream,
        scenario: &str,
    ) -> ExperimentResult {
        self.try_run_streamed(sched, stream, scenario)
            .expect("scheduler rejected the configured round policy (use Sim::try_run_streamed)")
    }

    /// Streamed counterpart of [`try_run`](Self::try_run): surfaces an
    /// incompatible scheduler/policy combo as [`SimError::InvalidKnob`].
    pub fn try_run_streamed(
        &self,
        sched: &mut dyn Scheduler,
        stream: ArrivalStream,
        scenario: &str,
    ) -> Result<ExperimentResult, SimError> {
        if !matches!(self.policy, PolicySpec::Classic) && !sched.adopt_policy(&self.policy) {
            return Err(SimError::InvalidKnob {
                knob: "policy",
                value: 0.0,
                requirement: "a round-policy stack this scheduler supports \
(ESG packing needs EsgScheduler; MinScheduler is classic-only)",
            });
        }
        Ok(run_streamed(
            &self.env,
            self.cfg.clone(),
            sched,
            stream,
            scenario,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::MinScheduler;
    use esg_model::{NodeClass, NodeId, SloClass, WorkloadClass};
    use esg_workload::WorkloadGen;

    #[test]
    fn default_builder_runs() {
        let sim = SimBuilder::new(SloClass::Relaxed).build().expect("valid");
        let w =
            WorkloadGen::new(WorkloadClass::Light, esg_model::standard_app_ids(), 3).generate(12);
        let mut s = MinScheduler;
        let r = sim.run(&mut s, &w, "builder");
        assert_eq!(r.total_completed(), 12);
        assert_eq!(r.scenario, "builder");
    }

    #[test]
    fn builder_matches_struct_literal_bit_for_bit() {
        let w =
            WorkloadGen::new(WorkloadClass::Light, esg_model::standard_app_ids(), 9).generate(15);
        let sim = SimBuilder::new(SloClass::Moderate)
            .warmup_exclude_ms(500.0)
            .seed(11)
            .build()
            .expect("valid");
        let mut a = MinScheduler;
        let ra = sim.run(&mut a, &w, "x");
        let env = SimEnv::standard(SloClass::Moderate);
        let mut b = MinScheduler;
        let rb = run_simulation(
            &env,
            SimConfig {
                warmup_exclude_ms: 500.0,
                seed: 11,
                ..SimConfig::default()
            },
            &mut b,
            &w,
            "x",
        );
        let canon = |mut r: ExperimentResult| {
            r.wall_overhead_ms.clear();
            format!("{r:?}")
        };
        assert_eq!(canon(ra), canon(rb));
    }

    #[test]
    fn event_queue_knob_and_streamed_run_match_the_materialised_path() {
        let canon = |mut r: ExperimentResult| {
            r.wall_overhead_ms.clear();
            format!("{r:?}")
        };
        let apps = esg_model::standard_app_ids();
        let gen = WorkloadGen::new(WorkloadClass::Normal, apps, 21);
        let w = gen.generate(200);
        let heap = SimBuilder::new(SloClass::Moderate)
            .seed(21)
            .build()
            .expect("valid");
        let wheel = SimBuilder::new(SloClass::Moderate)
            .seed(21)
            .event_queue(EventQueueKind::Wheel)
            .build()
            .expect("valid");
        let r_heap = heap.run(&mut MinScheduler, &w, "eq");
        let r_wheel = wheel.run(&mut MinScheduler, &w, "eq");
        assert_eq!(canon(r_heap), canon(r_wheel));
        // Streamed vs materialised over a shared horizon: cap both runs at
        // `H` and materialise past `H` so both paths always hold a pending
        // arrival and stop at the first event beyond the cap — the traces
        // must then be bit-identical.
        let horizon = 30_000.0;
        let beyond = gen.stream().until_ms(horizon + 60_000.0);
        let capped = SimBuilder::new(SloClass::Moderate)
            .seed(21)
            .max_sim_ms(horizon)
            .build()
            .expect("valid");
        let r_mat = capped.run(&mut MinScheduler, &beyond, "eq");
        let r_str = capped.run_streamed(&mut MinScheduler, gen.stream(), "eq");
        assert_eq!(canon(r_mat), canon(r_str));
    }

    #[test]
    fn empty_cluster_is_rejected() {
        assert_eq!(
            SimBuilder::new(SloClass::Strict).nodes(0).build().err(),
            Some(SimError::EmptyCluster)
        );
        assert_eq!(
            SimBuilder::new(SloClass::Strict)
                .cluster(ClusterSpec::new("none"))
                .build()
                .err(),
            Some(SimError::EmptyCluster)
        );
    }

    #[test]
    fn bad_knobs_are_rejected() {
        let err = SimBuilder::new(SloClass::Moderate)
            .keep_alive_ms(0.0)
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "keep_alive_ms",
                ..
            }
        ));
        assert!(SimBuilder::new(SloClass::Moderate)
            .prewarm_alpha(1.5)
            .build()
            .is_err());
        assert!(SimBuilder::new(SloClass::Moderate)
            .recheck_limit(0)
            .build()
            .is_err());
        assert!(SimBuilder::new(SloClass::Moderate)
            .max_sim_ms(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn churn_script_membership_is_checked() {
        // Draining node 16 on a 16-node cluster: out of range…
        let err = SimBuilder::new(SloClass::Moderate)
            .churn(ChurnPlan::none().drain(100.0, NodeId(16)))
            .build()
            .expect_err("rejected");
        assert!(matches!(err, SimError::InvalidChurn { index: 0, .. }));
        // …unless a join earlier in time has created it.
        assert!(SimBuilder::new(SloClass::Moderate)
            .churn(
                ChurnPlan::none()
                    .join(50.0, NodeClass::t4())
                    .drain(100.0, NodeId(16))
            )
            .build()
            .is_ok());
        // Negative timestamps are rejected.
        assert!(SimBuilder::new(SloClass::Moderate)
            .churn(ChurnPlan::none().drain(-1.0, NodeId(0)))
            .build()
            .is_err());
    }

    #[test]
    fn custom_apps_are_validated() {
        assert_eq!(
            SimBuilder::new(SloClass::Moderate)
                .apps(Vec::new())
                .build()
                .err(),
            Some(SimError::NoApplications)
        );
        let app = AppSpec::pipeline("one", vec![esg_model::FnId(0)]);
        let sim = SimBuilder::new(SloClass::Moderate)
            .apps(vec![app])
            .build()
            .expect("valid");
        assert_eq!(sim.env().apps.len(), 1);
        // A stage naming a function outside the Table-3 catalog is a
        // typed error, not a later index panic.
        let bogus = AppSpec::pipeline("bogus", vec![esg_model::FnId(99)]);
        let err = SimBuilder::new(SloClass::Moderate)
            .apps(vec![bogus])
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::UnknownFunction {
                function: esg_model::FnId(99),
                ..
            }
        ));
    }

    #[test]
    fn policy_knob_scalars_are_validated() {
        use crate::policy::{PackingConfig, SloAdmissionConfig};
        // Defaults pass.
        assert!(SimBuilder::new(SloClass::Moderate)
            .policy(PolicySpec::packing_with_admission())
            .build()
            .is_ok());
        // Bad admission back-off.
        let err = SimBuilder::new(SloClass::Moderate)
            .policy(PolicySpec::SloAdmission(SloAdmissionConfig {
                defer_ms: 0.0,
                ..SloAdmissionConfig::default()
            }))
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "policy.defer_ms",
                ..
            }
        ));
        // Zero search budget.
        let err = SimBuilder::new(SloClass::Moderate)
            .policy(PolicySpec::CrossQueuePacking(PackingConfig {
                round_budget: 0,
                ..PackingConfig::default()
            }))
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "policy.round_budget",
                ..
            }
        ));
        // Non-finite warm bias.
        assert!(SimBuilder::new(SloClass::Moderate)
            .policy(PolicySpec::CrossQueuePacking(PackingConfig {
                warm_bias: f64::NAN,
                ..PackingConfig::default()
            }))
            .build()
            .is_err());
    }

    #[test]
    fn transfer_tariffs_are_validated() {
        use esg_profile::TransferModel;
        // Valid tariffs land in the environment.
        let sim = SimBuilder::new(SloClass::Moderate)
            .transfer(TransferModel {
                remote_ms_per_mb: 40.0,
                ..TransferModel::default()
            })
            .build()
            .expect("valid");
        assert_eq!(sim.env().transfer.remote_ms_per_mb, 40.0);
        // Negative and non-finite tariffs are typed errors.
        for bad in [
            TransferModel {
                remote_ms_per_mb: -1.0,
                ..TransferModel::default()
            },
            TransferModel {
                local_base_ms: f64::NAN,
                ..TransferModel::default()
            },
            TransferModel {
                remote_base_ms: f64::INFINITY,
                ..TransferModel::default()
            },
        ] {
            let err = SimBuilder::new(SloClass::Moderate)
                .transfer(bad)
                .build()
                .expect_err("rejected");
            assert!(matches!(err, SimError::InvalidKnob { knob, .. }
                if knob.starts_with("transfer.")));
        }
    }

    #[test]
    fn data_plane_knobs_are_validated() {
        use crate::dataplane::DataPlaneConfig;
        assert!(SimBuilder::new(SloClass::Moderate)
            .data_plane(DataPlaneConfig::default())
            .build()
            .is_ok());
        let err = SimBuilder::new(SloClass::Moderate)
            .data_plane(DataPlaneConfig {
                bandwidth_scale: 0.0,
                ..DataPlaneConfig::default()
            })
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "data_plane.bandwidth_scale",
                ..
            }
        ));
        assert!(SimBuilder::new(SloClass::Moderate)
            .data_plane(DataPlaneConfig {
                staging_scale: f64::NAN,
                ..DataPlaneConfig::default()
            })
            .build()
            .is_err());
        assert!(SimBuilder::new(SloClass::Moderate)
            .data_plane(DataPlaneConfig {
                batch_max_mb: -4.0,
                ..DataPlaneConfig::default()
            })
            .build()
            .is_err());
    }

    #[test]
    fn topology_and_pinning_knobs_are_validated() {
        use crate::pinning::PinningConfig;
        use esg_model::ServerTopology;
        // A sane topology + pinning bundle builds.
        assert!(SimBuilder::new(SloClass::Moderate)
            .cluster(ClusterSpec::paper().with_topology(4, 10.0))
            .pinning(PinningConfig::default())
            .build()
            .is_ok());
        // Zero-width servers are a typed error, not a division hazard.
        let mut spec = ClusterSpec::paper();
        spec.topology = Some(ServerTopology::new(0, 10.0));
        let err = SimBuilder::new(SloClass::Moderate)
            .cluster(spec)
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "topology.gpus_per_server",
                ..
            }
        ));
        // The shared uplink must have real bandwidth.
        let err = SimBuilder::new(SloClass::Moderate)
            .cluster(ClusterSpec::paper().with_topology(4, 0.0))
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "topology.tor_gbps",
                ..
            }
        ));
        // A pin budget beyond the cluster's total vGPU capacity (paper
        // cluster: 16 nodes x 7 slices = 112) can never be dispatched.
        let err = SimBuilder::new(SloClass::Moderate)
            .cluster(ClusterSpec::paper().with_topology(4, 10.0))
            .pinning(PinningConfig {
                budget_vgpus: 113,
                ..PinningConfig::default()
            })
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "pinning.budget_vgpus",
                ..
            }
        ));
        // The homogeneous path checks capacity too (16 x 7 = 112).
        assert!(SimBuilder::new(SloClass::Moderate)
            .pinning(PinningConfig {
                budget_vgpus: 112,
                ..PinningConfig::default()
            })
            .build()
            .is_ok());
        // Pinning on an empty cluster is rejected before the budget
        // check ever runs.
        let err = SimBuilder::new(SloClass::Moderate)
            .nodes(0)
            .pinning(PinningConfig::default())
            .build()
            .expect_err("rejected");
        assert_eq!(err, SimError::EmptyCluster);
        // Scalar planner knobs.
        let err = SimBuilder::new(SloClass::Moderate)
            .pinning(PinningConfig {
                min_share_factor: f64::NAN,
                ..PinningConfig::default()
            })
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "pinning.min_share_factor",
                ..
            }
        ));
        let err = SimBuilder::new(SloClass::Moderate)
            .pinning(PinningConfig {
                max_pinned_apps: 0,
                ..PinningConfig::default()
            })
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "pinning.max_pinned_apps",
                ..
            }
        ));
    }

    #[test]
    fn cluster_class_bandwidths_are_validated() {
        let mut broken = NodeClass::a100();
        broken.pcie_in_gbps = 0.0;
        let err = SimBuilder::new(SloClass::Moderate)
            .cluster(ClusterSpec::new("bw").with(broken.clone(), 1))
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "class.pcie_in_gbps",
                ..
            }
        ));
        // Churn joins feed the same pools, so their classes are checked
        // too.
        let err = SimBuilder::new(SloClass::Moderate)
            .churn(ChurnPlan::none().join(10.0, broken))
            .build()
            .expect_err("rejected");
        assert!(matches!(
            err,
            SimError::InvalidKnob {
                knob: "class.pcie_in_gbps",
                ..
            }
        ));
    }

    #[test]
    fn incompatible_scheduler_policy_combo_is_a_typed_error() {
        // MinScheduler carries no policy stack: any non-classic spec must
        // surface as InvalidKnob through try_run, and the classic default
        // must keep working.
        let w =
            WorkloadGen::new(WorkloadClass::Light, esg_model::standard_app_ids(), 5).generate(6);
        let sim = SimBuilder::new(SloClass::Relaxed)
            .policy(PolicySpec::slo_admission())
            .build()
            .expect("valid spec");
        let mut s = MinScheduler;
        let err = sim.try_run(&mut s, &w, "combo").expect_err("rejected");
        assert!(matches!(err, SimError::InvalidKnob { knob: "policy", .. }));
        let classic = SimBuilder::new(SloClass::Relaxed).build().expect("valid");
        assert_eq!(classic.policy(), PolicySpec::Classic);
        let r = classic.try_run(&mut s, &w, "combo").expect("classic runs");
        assert_eq!(r.total_completed(), 6);
    }

    #[test]
    fn errors_render_useful_messages() {
        let msgs = [
            SimError::EmptyCluster.to_string(),
            SimError::NoApplications.to_string(),
            SimError::InvalidKnob {
                knob: "keep_alive_ms",
                value: -1.0,
                requirement: "finite and > 0",
            }
            .to_string(),
            SimError::InvalidChurn {
                index: 2,
                reason: "x".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
