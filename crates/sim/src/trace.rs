//! Event-sourced trace record/replay: serialise a run's full
//! [`EventRecord`] stream to a versioned on-disk format, load it back,
//! and re-drive any scheduler against the recorded arrival/churn stream.
//!
//! Three layers:
//!
//! * [`TraceRecorder`] — the recording sink. Selected through
//!   [`SimBuilder::record_trace`](crate::SimBuilder::record_trace), it
//!   captures every control-plane event (arrivals, dispatches,
//!   completions, churn, sheds, shard commits) plus the run's
//!   environment header (SLO class, configuration grid, full
//!   [`SimConfig`]) and writes one compact JSON document at the end of
//!   the run via the vendored `serde_json`.
//! * [`TraceFile`] — the loaded, validated form of that document, with
//!   typed [`TraceError`]s for anything short of a well-formed
//!   supported-version trace (truncated file, corrupt JSON, unknown
//!   version, schema drift).
//! * [`TraceReplay`] — re-drives a scheduler against the recorded
//!   arrivals and churn under the recorded configuration (optionally
//!   overriding the shard count or event-queue backend), producing an
//!   [`ExperimentResult`] and a dispatch-trace digest comparable with
//!   the recorded stream's own [`TraceFile::dispatch_digest`].
//!
//! The module is also the single owner of the canonical dispatch-trace
//! rendering ([`dispatch_trace`]) and its [`fnv64`] digest that the
//! golden equivalence suites pin: a run replayed under the same
//! scheduler and seed must reproduce the recorded digest bit for bit.
//!
//! ```
//! use esg_model::{SloClass, WorkloadClass};
//! use esg_sim::{MinScheduler, SimBuilder, TraceReplay};
//! use esg_workload::WorkloadGen;
//!
//! let path = std::env::temp_dir().join(format!("esg-trace-doc-{}.json", std::process::id()));
//! let sim = SimBuilder::new(SloClass::Moderate)
//!     .record_trace(&path)
//!     .build()
//!     .expect("valid configuration");
//! let w = WorkloadGen::new(WorkloadClass::Light, esg_model::standard_app_ids(), 7).generate(8);
//! let recorded = sim.run(&mut MinScheduler, &w, "record");
//!
//! let replay = TraceReplay::load(&path).expect("well-formed trace");
//! let replayed = replay.run(&mut MinScheduler, "replay");
//! assert_eq!(replayed.arrivals, recorded.arrivals);
//! std::fs::remove_file(&path).ok();
//! ```

use crate::event::EventQueueKind;
use crate::eventlog::{EventKind, EventLog, EventRecord};
use crate::metrics::ExperimentResult;
use crate::platform::{run_simulation, SimConfig, SimEnv};
use crate::policy::ShedReason;
use crate::sched::{
    Capabilities, Outcome, OverheadModel, QueueKey, RoundCtx, SchedCtx, Scheduler, SchedulerEvent,
    SchedulerStats,
};
use esg_model::{
    standard_apps, AppId, ChurnEvent, ChurnPlan, ClusterSpec, Config, ConfigGrid, GpuFlavor,
    InvocationId, NodeClass, NodeId, Resources, SloClass,
};
use esg_workload::{Arrival, Workload};
use serde_json::{Map, Value};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Format marker written into every trace header.
pub const TRACE_FORMAT: &str = "esg-trace";

/// Current trace schema version; [`TraceFile::load`] rejects others with
/// [`TraceError::Version`].
pub const TRACE_VERSION: u32 = 1;

/// Current minor revision within [`TRACE_VERSION`]. Minor bumps are
/// strictly additive (optional header fields, new event tags), so a
/// v1.0 reader's documents still load here and a v1.0 document loads as
/// minor 0. Minor 1 added the data-plane family: per-class bandwidth
/// fields, the `data_plane` config knob, and the transfer event tags.
/// Minor 2 added the server-topology family: the optional
/// `cluster.topology` object and the `pinning` config knob.
pub const TRACE_VERSION_MINOR: u32 = 2;

/// A typed failure while writing or loading a trace. Corrupt or
/// truncated files surface here — never as a panic.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// The file could not be read or written.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error, rendered.
        message: String,
    },
    /// The document is not well-formed JSON (truncation lands here).
    Parse {
        /// Byte offset where parsing failed.
        offset: usize,
        /// What was expected or found.
        message: String,
    },
    /// The document is JSON but not a supported trace version.
    Version {
        /// The version the file claims.
        found: i64,
        /// The version this build reads.
        supported: u32,
    },
    /// The document is missing a field or holds one of the wrong shape.
    Schema {
        /// Which field, and what was wrong with it.
        context: String,
    },
    /// The run cannot be recorded/replayed faithfully (e.g. custom
    /// application specs, which the standard-environment loader cannot
    /// reconstruct).
    Unsupported {
        /// What was unsupported.
        what: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io { path, message } => {
                write!(f, "trace i/o on {}: {message}", path.display())
            }
            TraceError::Parse { offset, message } => {
                write!(f, "trace parse error at byte {offset}: {message}")
            }
            TraceError::Version { found, supported } => {
                write!(f, "trace version {found} (this build reads {supported})")
            }
            TraceError::Schema { context } => write!(f, "trace schema: {context}"),
            TraceError::Unsupported { what } => write!(f, "unsupported trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// FNV-1a over `s` — the digest primitive of the golden equivalence
/// harness and of [`TraceFile::dispatch_digest`].
///
/// ```
/// assert_eq!(esg_sim::trace::fnv64(""), 0xcbf29ce484222325);
/// ```
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Renders the canonical dispatch/churn/shed trace the golden digests
/// hash: `D {app}.{stage} {config} n{node} x{jobs};` per dispatch,
/// `C n{node} join|drain;` per churn event, `S {app}.{stage} x{jobs}
/// {reason};` per shed. Arrivals, completions, recheck ticks, and shard
/// commits are deliberately not rendered, so new telemetry event kinds
/// cannot move existing digests.
pub fn dispatch_trace<'a, I>(records: I) -> String
where
    I: IntoIterator<Item = &'a EventRecord>,
{
    let mut out = String::new();
    for r in records {
        match r.kind {
            EventKind::Dispatched {
                key,
                config,
                node,
                jobs,
            } => {
                let _ = write!(
                    out,
                    "D {}.{} {} n{} x{};",
                    key.app.0, key.stage, config, node.0, jobs
                );
            }
            EventKind::Churn { node, joined } => {
                let _ = write!(
                    out,
                    "C n{} {};",
                    node.0,
                    if joined { "join" } else { "drain" }
                );
            }
            EventKind::QueueShed { key, jobs, reason } => {
                let _ = write!(out, "S {}.{} x{} {};", key.app.0, key.stage, jobs, reason);
            }
            _ => {}
        }
    }
    out
}

/// Wraps a scheduler and taps every control-plane event into an
/// unbounded-enough [`EventLog`] ring — the externally observable trace
/// of a run. [`trace`](Traced::trace) renders the canonical digest
/// string; the golden equivalence suites and [`TraceReplay::run_digest`]
/// both go through this wrapper, so there is exactly one fingerprint of
/// "what did this run dispatch".
pub struct Traced {
    /// The wrapped scheduler.
    pub inner: Box<dyn Scheduler>,
    /// The tap every event lands in.
    pub log: EventLog,
}

impl Traced {
    /// Wraps `inner` with a ring large enough to retain every event of
    /// the runs the harnesses drive ([`trace`](Self::trace) asserts
    /// nothing was evicted).
    pub fn new(inner: Box<dyn Scheduler>) -> Traced {
        Traced {
            inner,
            // The whole run must stay replayable: counters are exact at
            // any capacity, but the trace digest needs every record.
            log: EventLog::with_capacity(1 << 22),
        }
    }

    /// The canonical dispatch/churn/shed rendering of the tapped run
    /// (see [`dispatch_trace`]).
    pub fn trace(&self) -> String {
        assert_eq!(self.log.dropped(), 0, "trace ring must hold every event");
        dispatch_trace(self.log.records())
    }

    /// FNV digest of [`trace`](Self::trace).
    pub fn trace_digest(&self) -> u64 {
        fnv64(&self.trace())
    }
}

impl Scheduler for Traced {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn schedule(&mut self, ctx: &SchedCtx<'_>) -> Outcome {
        self.inner.schedule(ctx)
    }

    fn place(&mut self, ctx: &SchedCtx<'_>, config: Config) -> Option<NodeId> {
        self.inner.place(ctx, config)
    }

    fn schedule_round(&mut self, ctx: &RoundCtx<'_>) -> Vec<(QueueKey, Outcome)> {
        // Forwarded so a wrapped scheduler's round-policy stack (if any)
        // is exercised rather than silently replaced by the default
        // one-queue replay.
        self.inner.schedule_round(ctx)
    }

    fn on_event(&mut self, event: &SchedulerEvent<'_>) {
        self.log.observe(event);
        self.inner.on_event(event);
    }

    fn stats(&self) -> SchedulerStats {
        self.inner.stats()
    }
}

/// The recording sink behind
/// [`SimBuilder::record_trace`](crate::SimBuilder::record_trace): the
/// platform feeds it every arrival and control-plane event, and
/// [`finish`](Self::finish) writes the versioned document.
pub struct TraceRecorder {
    path: PathBuf,
    scheduler: String,
    slo: SloClass,
    grid: ConfigGrid,
    apps_standard: bool,
    cfg: SimConfig,
    arrivals: Vec<Arrival>,
    events: Vec<EventRecord>,
}

impl TraceRecorder {
    /// Starts recording a run of `scheduler` under `env`/`cfg`; events
    /// accumulate in memory until [`finish`](Self::finish).
    pub fn begin(path: PathBuf, env: &SimEnv, cfg: &SimConfig, scheduler: &str) -> TraceRecorder {
        TraceRecorder {
            path,
            scheduler: scheduler.to_string(),
            slo: env.slo,
            grid: env.profiles.grid().clone(),
            apps_standard: env.apps == standard_apps(),
            cfg: cfg.clone(),
            arrivals: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Records one workload arrival (the replay's input stream).
    pub fn record_arrival(&mut self, arrival: Arrival) {
        self.arrivals.push(arrival);
    }

    /// Records one control-plane event (via the shared
    /// [`EventRecord::capture`] conversion).
    pub fn observe(&mut self, event: &SchedulerEvent<'_>) {
        self.events.push(EventRecord::capture(event));
    }

    /// Events captured so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialises and writes the trace, returning the path written.
    ///
    /// Runs over custom application specs are refused with
    /// [`TraceError::Unsupported`]: `AppSpec`s carry static names and
    /// DAG shapes the standard-environment loader cannot reconstruct,
    /// so such a trace could never replay faithfully.
    pub fn finish(self) -> Result<PathBuf, TraceError> {
        if !self.apps_standard {
            return Err(TraceError::Unsupported {
                what: "runs over custom application specs cannot be replayed \
from the standard environment"
                    .to_string(),
            });
        }
        let mut doc = Map::new();
        doc.insert("format", TRACE_FORMAT);
        doc.insert("version", TRACE_VERSION);
        doc.insert("version_minor", TRACE_VERSION_MINOR);
        doc.insert("scheduler", self.scheduler.clone());
        doc.insert("slo", self.slo.to_string());
        doc.insert("apps", "standard");
        doc.insert("grid", grid_to_json(&self.grid));
        doc.insert("config", config_to_json(&self.cfg));
        doc.insert(
            "arrivals",
            Value::Array(
                self.arrivals
                    .iter()
                    .map(|a| Value::Array(vec![a.at_ms.into(), a.app.0.into()]))
                    .collect(),
            ),
        );
        doc.insert(
            "events",
            Value::Array(self.events.iter().map(encode_event).collect()),
        );
        let text = serde_json::to_string(&Value::Object(doc));
        std::fs::write(&self.path, text).map_err(|e| TraceError::Io {
            path: self.path.clone(),
            message: e.to_string(),
        })?;
        Ok(self.path)
    }
}

/// A loaded, validated trace document.
#[derive(Clone, Debug)]
pub struct TraceFile {
    /// Schema version the file was written at.
    pub version: u32,
    /// Minor revision within `version` (0 when the document predates
    /// minor versioning; see [`TRACE_VERSION_MINOR`]).
    pub version_minor: u32,
    /// Name of the scheduler that drove the recorded run.
    pub scheduler: String,
    /// SLO class of the recorded environment.
    pub slo: SloClass,
    /// Configuration grid of the recorded environment.
    pub grid: ConfigGrid,
    /// The recorded platform configuration (with `record_trace`
    /// cleared, so replaying never re-records by accident).
    pub config: SimConfig,
    /// The recorded arrival stream, in arrival order.
    pub arrivals: Vec<Arrival>,
    /// The recorded control-plane event stream, in emission order.
    pub events: Vec<EventRecord>,
}

impl TraceFile {
    /// Reads and validates the trace at `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<TraceFile, TraceError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        TraceFile::from_json(&text)
    }

    /// Parses and validates a trace document from its JSON text.
    pub fn from_json(text: &str) -> Result<TraceFile, TraceError> {
        let doc = serde_json::from_str(text).map_err(|e| TraceError::Parse {
            offset: e.offset,
            message: e.message,
        })?;
        let format = str_field(&doc, "format")?;
        if format != TRACE_FORMAT {
            return Err(TraceError::Schema {
                context: format!("format marker {format:?} is not {TRACE_FORMAT:?}"),
            });
        }
        let found = int_field(&doc, "version")?;
        if found != TRACE_VERSION as i64 {
            return Err(TraceError::Version {
                found,
                supported: TRACE_VERSION,
            });
        }
        // Minor revisions are additive: absent (pre-minor v1 documents)
        // reads as 0, and any value loads — unknown minor features can
        // only be optional fields this reader defaults away.
        let version_minor = match doc.get("version_minor") {
            None => 0,
            Some(_) => u32::try_from(int_field(&doc, "version_minor")?)
                .map_err(|_| schema("version_minor is out of the u32 range"))?,
        };
        let apps = str_field(&doc, "apps")?;
        if apps != "standard" {
            return Err(TraceError::Unsupported {
                what: format!("application set {apps:?} (only \"standard\" replays)"),
            });
        }
        let slo = slo_from_str(str_field(&doc, "slo")?)?;
        let grid = grid_from_json(field(&doc, "grid")?)?;
        let config = config_from_json(field(&doc, "config")?)?;
        let arrivals = field(&doc, "arrivals")?
            .as_array()
            .ok_or_else(|| schema("arrivals is not an array"))?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let a = v
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| schema(&format!("arrival #{i} is not a [t, app] pair")))?;
                Ok(Arrival {
                    at_ms: f64_at(a, 0, "arrival time")?,
                    app: AppId(u32_at(a, 1, "arrival app")?),
                })
            })
            .collect::<Result<Vec<_>, TraceError>>()?;
        let events = field(&doc, "events")?
            .as_array()
            .ok_or_else(|| schema("events is not an array"))?
            .iter()
            .enumerate()
            .map(|(i, v)| decode_event(v, i))
            .collect::<Result<Vec<_>, TraceError>>()?;
        Ok(TraceFile {
            version: found as u32,
            version_minor,
            scheduler: str_field(&doc, "scheduler")?.to_string(),
            slo,
            grid,
            config,
            arrivals,
            events,
        })
    }

    /// The recorded arrivals as a runnable [`Workload`].
    pub fn workload(&self) -> Workload {
        Workload::from_arrivals(self.arrivals.clone())
    }

    /// The canonical dispatch/churn/shed rendering of the *recorded*
    /// event stream (see [`dispatch_trace`]).
    pub fn dispatch_trace(&self) -> String {
        dispatch_trace(&self.events)
    }

    /// FNV digest of [`dispatch_trace`](Self::dispatch_trace) — compare
    /// against [`TraceReplay::run_digest`] to check replay fidelity.
    pub fn dispatch_digest(&self) -> u64 {
        fnv64(&self.dispatch_trace())
    }
}

/// Re-drives schedulers against a recorded run: same arrivals, same
/// churn, same platform configuration (unless overridden), any policy.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    trace: TraceFile,
    shards: Option<usize>,
    event_queue: Option<EventQueueKind>,
}

impl TraceReplay {
    /// Loads the trace at `path` (see [`TraceFile::load`]).
    pub fn load(path: impl AsRef<Path>) -> Result<TraceReplay, TraceError> {
        Ok(TraceReplay::new(TraceFile::load(path)?))
    }

    /// Wraps an already-loaded trace.
    pub fn new(trace: TraceFile) -> TraceReplay {
        TraceReplay {
            trace,
            shards: None,
            event_queue: None,
        }
    }

    /// The underlying trace document.
    pub fn trace(&self) -> &TraceFile {
        &self.trace
    }

    /// Overrides the controller shard count for replays (the recorded
    /// value is the default) — the axis the replay bench sweeps.
    pub fn shards(mut self, n: usize) -> TraceReplay {
        self.shards = Some(n);
        self
    }

    /// Overrides the event-queue backend for replays.
    pub fn event_queue(mut self, kind: EventQueueKind) -> TraceReplay {
        self.event_queue = Some(kind);
        self
    }

    /// The effective replay configuration: the recorded one with
    /// `record_trace` cleared and any overrides applied.
    pub fn config(&self) -> SimConfig {
        let mut cfg = self.trace.config.clone();
        cfg.record_trace = None;
        if let Some(n) = self.shards {
            cfg.shards = n;
        }
        if let Some(k) = self.event_queue {
            cfg.event_queue = k;
        }
        cfg
    }

    /// Re-drives `sched` against the recorded arrivals, labelling the
    /// result `scenario`. A replay under the same scheduler and seed is
    /// bit-identical to the recorded run (pinned by the round-trip
    /// suite); a different scheduler sees the exact same offered load.
    pub fn run(&self, sched: &mut dyn Scheduler, scenario: &str) -> ExperimentResult {
        let env = SimEnv::with_grid(self.trace.slo, self.trace.grid.clone());
        let workload = self.trace.workload();
        run_simulation(&env, self.config(), sched, &workload, scenario)
    }

    /// Like [`run`](Self::run), but taps the replay through [`Traced`]
    /// and returns the dispatch-trace digest alongside the result, for
    /// comparison with [`TraceFile::dispatch_digest`].
    pub fn run_digest(&self, sched: Box<dyn Scheduler>, scenario: &str) -> (ExperimentResult, u64) {
        let mut traced = Traced::new(sched);
        let result = self.run(&mut traced, scenario);
        let digest = traced.trace_digest();
        (result, digest)
    }
}

// ---------------------------------------------------------------------
// JSON encoding/decoding (compact tagged arrays for the event stream,
// a plain object for the header).

fn schema(context: &str) -> TraceError {
    TraceError::Schema {
        context: context.to_string(),
    }
}

fn field<'a>(doc: &'a Value, key: &str) -> Result<&'a Value, TraceError> {
    doc.get(key)
        .ok_or_else(|| schema(&format!("missing field {key:?}")))
}

fn str_field<'a>(doc: &'a Value, key: &str) -> Result<&'a str, TraceError> {
    field(doc, key)?
        .as_str()
        .ok_or_else(|| schema(&format!("field {key:?} is not a string")))
}

fn int_field(doc: &Value, key: &str) -> Result<i64, TraceError> {
    match field(doc, key)? {
        Value::Int(n) => {
            i64::try_from(*n).map_err(|_| schema(&format!("field {key:?} is out of the i64 range")))
        }
        _ => Err(schema(&format!("field {key:?} is not an integer"))),
    }
}

fn f64_field(doc: &Value, key: &str) -> Result<f64, TraceError> {
    field(doc, key)?
        .as_f64()
        .ok_or_else(|| schema(&format!("field {key:?} is not a number")))
}

fn bool_field(doc: &Value, key: &str) -> Result<bool, TraceError> {
    match field(doc, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(schema(&format!("field {key:?} is not a boolean"))),
    }
}

fn u64_field(doc: &Value, key: &str) -> Result<u64, TraceError> {
    field(doc, key)?
        .as_u64()
        .ok_or_else(|| schema(&format!("field {key:?} is not an unsigned integer")))
}

fn u32_field(doc: &Value, key: &str) -> Result<u32, TraceError> {
    u32::try_from(u64_field(doc, key)?)
        .map_err(|_| schema(&format!("field {key:?} is out of the u32 range")))
}

fn usize_field(doc: &Value, key: &str) -> Result<usize, TraceError> {
    usize::try_from(u64_field(doc, key)?)
        .map_err(|_| schema(&format!("field {key:?} is out of the usize range")))
}

fn f64_at(a: &[Value], i: usize, what: &str) -> Result<f64, TraceError> {
    a.get(i)
        .and_then(Value::as_f64)
        .ok_or_else(|| schema(&format!("{what} (slot {i}) is not a number")))
}

fn u64_at(a: &[Value], i: usize, what: &str) -> Result<u64, TraceError> {
    a.get(i)
        .and_then(Value::as_u64)
        .ok_or_else(|| schema(&format!("{what} (slot {i}) is not an unsigned integer")))
}

fn u32_at(a: &[Value], i: usize, what: &str) -> Result<u32, TraceError> {
    u32::try_from(u64_at(a, i, what)?)
        .map_err(|_| schema(&format!("{what} (slot {i}) is out of the u32 range")))
}

fn usize_at(a: &[Value], i: usize, what: &str) -> Result<usize, TraceError> {
    usize::try_from(u64_at(a, i, what)?)
        .map_err(|_| schema(&format!("{what} (slot {i}) is out of the usize range")))
}

fn str_at<'a>(a: &'a [Value], i: usize, what: &str) -> Result<&'a str, TraceError> {
    a.get(i)
        .and_then(Value::as_str)
        .ok_or_else(|| schema(&format!("{what} (slot {i}) is not a string")))
}

fn bool_at(a: &[Value], i: usize, what: &str) -> Result<bool, TraceError> {
    match a.get(i) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(schema(&format!("{what} (slot {i}) is not a boolean"))),
    }
}

fn slo_from_str(s: &str) -> Result<SloClass, TraceError> {
    match s {
        "strict" => Ok(SloClass::Strict),
        "moderate" => Ok(SloClass::Moderate),
        "relaxed" => Ok(SloClass::Relaxed),
        other => Err(schema(&format!("unknown SLO class {other:?}"))),
    }
}

fn reason_from_str(s: &str) -> Result<ShedReason, TraceError> {
    match s {
        "gslo-unattainable" => Ok(ShedReason::GsloUnattainable),
        "overload" => Ok(ShedReason::Overload),
        other => Err(schema(&format!("unknown shed reason {other:?}"))),
    }
}

fn flavor_from_str(s: &str) -> Result<GpuFlavor, TraceError> {
    match s {
        "a100" => Ok(GpuFlavor::A100),
        "v100" => Ok(GpuFlavor::V100),
        "t4" => Ok(GpuFlavor::T4),
        other => Err(schema(&format!("unknown GPU flavor {other:?}"))),
    }
}

fn queue_kind_from_str(s: &str) -> Result<EventQueueKind, TraceError> {
    match s {
        "heap" => Ok(EventQueueKind::Heap),
        "wheel" => Ok(EventQueueKind::Wheel),
        other => Err(schema(&format!("unknown event-queue backend {other:?}"))),
    }
}

fn grid_to_json(grid: &ConfigGrid) -> Value {
    let mut m = Map::new();
    m.insert("batches", grid.batches.clone());
    m.insert("vcpus", grid.vcpus.clone());
    m.insert("vgpus", grid.vgpus.clone());
    Value::Object(m)
}

fn u32_list(doc: &Value, key: &str) -> Result<Vec<u32>, TraceError> {
    field(doc, key)?
        .as_array()
        .ok_or_else(|| schema(&format!("field {key:?} is not an array")))?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| schema(&format!("{key}[{i}] is not a u32")))
        })
        .collect()
}

fn grid_from_json(doc: &Value) -> Result<ConfigGrid, TraceError> {
    let (batches, vcpus, vgpus) = (
        u32_list(doc, "batches")?,
        u32_list(doc, "vcpus")?,
        u32_list(doc, "vgpus")?,
    );
    if [&batches, &vcpus, &vgpus]
        .iter()
        .any(|l| l.is_empty() || l.contains(&0))
    {
        return Err(schema("grid dimensions must be non-empty lists of >= 1"));
    }
    Ok(ConfigGrid::new(batches, vcpus, vgpus))
}

fn class_to_json(c: &NodeClass) -> Value {
    let mut m = Map::new();
    m.insert("name", c.name.clone());
    m.insert("gpu", c.gpu.to_string());
    m.insert("vgpu_slices", c.vgpu_slices);
    m.insert("vcpus", c.vcpus);
    m.insert("speed", c.speed);
    m.insert("link_scale", c.link_scale);
    m.insert("price_scale", c.price_scale);
    m.insert("pcie_in_gbps", c.pcie_in_gbps);
    m.insert("pcie_out_gbps", c.pcie_out_gbps);
    m.insert("nvlink_gbps", c.nvlink_gbps);
    m.insert("staging_mb", c.staging_mb);
    Value::Object(m)
}

/// Optional f64 field — absent falls back to `default` (how v1.0
/// documents, which predate the bandwidth fields, keep loading).
fn f64_field_or(doc: &Value, key: &str, default: f64) -> Result<f64, TraceError> {
    match doc.get(key) {
        None => Ok(default),
        Some(_) => f64_field(doc, key),
    }
}

fn class_from_json(doc: &Value) -> Result<NodeClass, TraceError> {
    let gpu = flavor_from_str(str_field(doc, "gpu")?)?;
    // Bandwidth fields arrived in v1.1; older documents fall back to
    // the flavor's stock values.
    let stock = match gpu {
        GpuFlavor::A100 => NodeClass::a100(),
        GpuFlavor::V100 => NodeClass::v100(),
        GpuFlavor::T4 => NodeClass::t4(),
    };
    Ok(NodeClass {
        name: str_field(doc, "name")?.to_string(),
        gpu,
        vgpu_slices: u32_field(doc, "vgpu_slices")?,
        vcpus: u32_field(doc, "vcpus")?,
        speed: f64_field(doc, "speed")?,
        link_scale: f64_field(doc, "link_scale")?,
        price_scale: f64_field(doc, "price_scale")?,
        pcie_in_gbps: f64_field_or(doc, "pcie_in_gbps", stock.pcie_in_gbps)?,
        pcie_out_gbps: f64_field_or(doc, "pcie_out_gbps", stock.pcie_out_gbps)?,
        nvlink_gbps: f64_field_or(doc, "nvlink_gbps", stock.nvlink_gbps)?,
        staging_mb: f64_field_or(doc, "staging_mb", stock.staging_mb)?,
    })
}

fn churn_to_json(plan: &ChurnPlan) -> Value {
    Value::Array(
        plan.events
            .iter()
            .map(|ev| match ev {
                ChurnEvent::Drain { at_ms, node } => {
                    Value::Array(vec!["drain".into(), (*at_ms).into(), node.0.into()])
                }
                ChurnEvent::Join { at_ms, class } => {
                    Value::Array(vec!["join".into(), (*at_ms).into(), class_to_json(class)])
                }
            })
            .collect(),
    )
}

fn churn_from_json(doc: &Value) -> Result<ChurnPlan, TraceError> {
    let events = doc
        .as_array()
        .ok_or_else(|| schema("churn is not an array"))?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let a = v
                .as_array()
                .filter(|a| a.len() == 3)
                .ok_or_else(|| schema(&format!("churn event #{i} is not a 3-slot array")))?;
            match str_at(a, 0, "churn tag")? {
                "drain" => Ok(ChurnEvent::Drain {
                    at_ms: f64_at(a, 1, "churn time")?,
                    node: NodeId(u32_at(a, 2, "churn node")?),
                }),
                "join" => Ok(ChurnEvent::Join {
                    at_ms: f64_at(a, 1, "churn time")?,
                    class: class_from_json(&a[2])?,
                }),
                other => Err(schema(&format!("unknown churn tag {other:?}"))),
            }
        })
        .collect::<Result<Vec<_>, TraceError>>()?;
    Ok(ChurnPlan { events })
}

fn config_to_json(cfg: &SimConfig) -> Value {
    let mut m = Map::new();
    m.insert("nodes", cfg.nodes);
    m.insert(
        "node_resources",
        Value::Array(vec![
            cfg.node_resources.vcpus.into(),
            cfg.node_resources.vgpus.into(),
        ]),
    );
    m.insert(
        "cluster",
        match &cfg.cluster {
            None => Value::Null,
            Some(spec) => {
                let mut c = Map::new();
                c.insert("name", spec.name.clone());
                c.insert(
                    "nodes",
                    Value::Array(spec.nodes.iter().map(class_to_json).collect()),
                );
                // Optional key: absent on pre-topology recordings, which
                // must keep loading as flat clusters.
                if let Some(t) = spec.topology {
                    let mut topo = Map::new();
                    topo.insert("gpus_per_server", t.gpus_per_server);
                    topo.insert("tor_gbps", t.tor_gbps);
                    c.insert("topology", Value::Object(topo));
                }
                Value::Object(c)
            }
        },
    );
    m.insert("churn", churn_to_json(&cfg.churn));
    m.insert("keep_alive_ms", cfg.keep_alive_ms);
    m.insert(
        "overhead",
        Value::Array(vec![
            cfg.overhead.base_us.into(),
            cfg.overhead.us_per_expansion.into(),
        ]),
    );
    m.insert("charge_overhead", cfg.charge_overhead);
    m.insert("prewarm", cfg.prewarm);
    m.insert("prewarm_alpha", cfg.prewarm_alpha);
    m.insert("initial_warm_per_node", cfg.initial_warm_per_node);
    m.insert("prewarm_pool_cap", cfg.prewarm_pool_cap);
    m.insert("warmup_exclude_ms", cfg.warmup_exclude_ms);
    m.insert("seed", cfg.seed);
    m.insert("recheck_limit", cfg.recheck_limit);
    m.insert("idle_backoff_ms", cfg.idle_backoff_ms);
    m.insert("max_sim_ms", cfg.max_sim_ms);
    m.insert("validate_cluster_state", cfg.validate_cluster_state);
    m.insert("shards", cfg.shards);
    m.insert("force_sharded", cfg.force_sharded);
    m.insert(
        "event_queue",
        match cfg.event_queue {
            EventQueueKind::Heap => "heap",
            EventQueueKind::Wheel => "wheel",
        },
    );
    m.insert(
        "data_plane",
        match &cfg.data_plane {
            None => Value::Null,
            Some(dp) => {
                let mut d = Map::new();
                d.insert("bandwidth_scale", dp.bandwidth_scale);
                d.insert("staging_scale", dp.staging_scale);
                d.insert("batch_max_mb", dp.batch_max_mb);
                Value::Object(d)
            }
        },
    );
    m.insert(
        "pinning",
        match &cfg.pinning {
            None => Value::Null,
            Some(p) => {
                let mut d = Map::new();
                d.insert("budget_vgpus", p.budget_vgpus);
                d.insert("min_share_factor", p.min_share_factor);
                d.insert("max_pinned_apps", p.max_pinned_apps);
                Value::Object(d)
            }
        },
    );
    Value::Object(m)
}

fn config_from_json(doc: &Value) -> Result<SimConfig, TraceError> {
    let res = field(doc, "node_resources")?
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| schema("node_resources is not a [vcpus, vgpus] pair"))?;
    let overhead = field(doc, "overhead")?
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| schema("overhead is not a [base_us, us_per_expansion] pair"))?;
    let cluster = match field(doc, "cluster")? {
        Value::Null => None,
        spec => Some(ClusterSpec {
            name: str_field(spec, "name")?.to_string(),
            nodes: field(spec, "nodes")?
                .as_array()
                .ok_or_else(|| schema("cluster.nodes is not an array"))?
                .iter()
                .map(class_from_json)
                .collect::<Result<Vec<_>, TraceError>>()?,
            topology: match spec.get("topology") {
                None | Some(Value::Null) => None,
                Some(t) => Some(esg_model::ServerTopology::new(
                    usize_field(t, "gpus_per_server")?,
                    f64_field(t, "tor_gbps")?,
                )),
            },
        }),
    };
    Ok(SimConfig {
        nodes: usize_field(doc, "nodes")?,
        node_resources: Resources::new(
            u32_at(res, 0, "node_resources.vcpus")?,
            u32_at(res, 1, "node_resources.vgpus")?,
        ),
        cluster,
        churn: churn_from_json(field(doc, "churn")?)?,
        keep_alive_ms: f64_field(doc, "keep_alive_ms")?,
        overhead: OverheadModel {
            base_us: f64_at(overhead, 0, "overhead.base_us")?,
            us_per_expansion: f64_at(overhead, 1, "overhead.us_per_expansion")?,
        },
        charge_overhead: bool_field(doc, "charge_overhead")?,
        prewarm: bool_field(doc, "prewarm")?,
        prewarm_alpha: f64_field(doc, "prewarm_alpha")?,
        initial_warm_per_node: u32_field(doc, "initial_warm_per_node")?,
        prewarm_pool_cap: usize_field(doc, "prewarm_pool_cap")?,
        warmup_exclude_ms: f64_field(doc, "warmup_exclude_ms")?,
        seed: u64_field(doc, "seed")?,
        recheck_limit: u32_field(doc, "recheck_limit")?,
        idle_backoff_ms: f64_field(doc, "idle_backoff_ms")?,
        max_sim_ms: f64_field(doc, "max_sim_ms")?,
        validate_cluster_state: bool_field(doc, "validate_cluster_state")?,
        shards: usize_field(doc, "shards")?,
        force_sharded: bool_field(doc, "force_sharded")?,
        event_queue: queue_kind_from_str(str_field(doc, "event_queue")?)?,
        // Arrived in v1.1; absent (v1.0 documents) means the classic
        // scalar transfer model.
        data_plane: match doc.get("data_plane") {
            None | Some(Value::Null) => None,
            Some(dp) => Some(crate::dataplane::DataPlaneConfig {
                bandwidth_scale: f64_field(dp, "bandwidth_scale")?,
                staging_scale: f64_field(dp, "staging_scale")?,
                batch_max_mb: f64_field(dp, "batch_max_mb")?,
            }),
        },
        // Arrived in v1.2; absent documents disable the static tier.
        pinning: match doc.get("pinning") {
            None | Some(Value::Null) => None,
            Some(p) => Some(crate::pinning::PinningConfig {
                budget_vgpus: u64_field(p, "budget_vgpus")?,
                min_share_factor: f64_field(p, "min_share_factor")?,
                max_pinned_apps: usize_field(p, "max_pinned_apps")?,
            }),
        },
        record_trace: None,
    })
}

fn encode_event(r: &EventRecord) -> Value {
    let t: Value = r.now_ms.into();
    Value::Array(match r.kind {
        EventKind::JobArrived { key, invocation } => vec![
            "J".into(),
            t,
            key.app.0.into(),
            key.stage.into(),
            invocation.0.into(),
        ],
        EventKind::Dispatched {
            key,
            config,
            node,
            jobs,
        } => vec![
            "D".into(),
            t,
            key.app.0.into(),
            key.stage.into(),
            config.batch.into(),
            config.vcpus.into(),
            config.vgpus.into(),
            node.0.into(),
            jobs.into(),
        ],
        EventKind::TaskCompleted { key, node, config } => vec![
            "T".into(),
            t,
            key.app.0.into(),
            key.stage.into(),
            config.batch.into(),
            config.vcpus.into(),
            config.vgpus.into(),
            node.0.into(),
        ],
        EventKind::Churn { node, joined } => vec!["C".into(), t, node.0.into(), joined.into()],
        EventKind::QueueShed { key, jobs, reason } => vec![
            "S".into(),
            t,
            key.app.0.into(),
            key.stage.into(),
            jobs.into(),
            reason.to_string().into(),
        ],
        EventKind::RecheckTick => vec!["R".into(), t],
        EventKind::TransferStarted { node, mb } => {
            vec!["TS".into(), t, node.0.into(), mb.into()]
        }
        EventKind::TransferQueued { node, mb } => {
            vec!["TQ".into(), t, node.0.into(), mb.into()]
        }
        EventKind::TransferCompleted { node, mb } => {
            vec!["TC".into(), t, node.0.into(), mb.into()]
        }
        EventKind::ShardCommit {
            shard,
            commits,
            conflicts,
            retries,
        } => vec![
            "X".into(),
            t,
            shard.into(),
            commits.into(),
            conflicts.into(),
            retries.into(),
        ],
    })
}

fn decode_event(v: &Value, idx: usize) -> Result<EventRecord, TraceError> {
    let a = v
        .as_array()
        .ok_or_else(|| schema(&format!("event #{idx} is not an array")))?;
    let ctx = format!("event #{idx}");
    let tag = str_at(a, 0, &ctx)?;
    let now_ms = f64_at(a, 1, &ctx)?;
    let expect_len = |n: usize| {
        if a.len() == n {
            Ok(())
        } else {
            Err(schema(&format!(
                "{ctx} ({tag:?}) has {} slots, expected {n}",
                a.len()
            )))
        }
    };
    let key = |app_slot: usize| -> Result<QueueKey, TraceError> {
        Ok(QueueKey {
            app: AppId(u32_at(a, app_slot, &ctx)?),
            stage: usize_at(a, app_slot + 1, &ctx)?,
        })
    };
    let config = |slot: usize| -> Result<Config, TraceError> {
        let (b, c, g) = (
            u32_at(a, slot, &ctx)?,
            u32_at(a, slot + 1, &ctx)?,
            u32_at(a, slot + 2, &ctx)?,
        );
        if b == 0 || c == 0 || g == 0 {
            return Err(schema(&format!(
                "{ctx}: configuration dimensions must be >= 1"
            )));
        }
        Ok(Config::new(b, c, g))
    };
    let kind = match tag {
        "J" => {
            expect_len(5)?;
            EventKind::JobArrived {
                key: key(2)?,
                invocation: InvocationId(u64_at(a, 4, &ctx)?),
            }
        }
        "D" => {
            expect_len(9)?;
            EventKind::Dispatched {
                key: key(2)?,
                config: config(4)?,
                node: NodeId(u32_at(a, 7, &ctx)?),
                jobs: usize_at(a, 8, &ctx)?,
            }
        }
        "T" => {
            expect_len(8)?;
            EventKind::TaskCompleted {
                key: key(2)?,
                node: NodeId(u32_at(a, 7, &ctx)?),
                config: config(4)?,
            }
        }
        "C" => {
            expect_len(4)?;
            EventKind::Churn {
                node: NodeId(u32_at(a, 2, &ctx)?),
                joined: bool_at(a, 3, &ctx)?,
            }
        }
        "S" => {
            expect_len(6)?;
            EventKind::QueueShed {
                key: key(2)?,
                jobs: usize_at(a, 4, &ctx)?,
                reason: reason_from_str(str_at(a, 5, &ctx)?)?,
            }
        }
        "R" => {
            expect_len(2)?;
            EventKind::RecheckTick
        }
        "TS" => {
            expect_len(4)?;
            EventKind::TransferStarted {
                node: NodeId(u32_at(a, 2, &ctx)?),
                mb: f64_at(a, 3, &ctx)?,
            }
        }
        "TQ" => {
            expect_len(4)?;
            EventKind::TransferQueued {
                node: NodeId(u32_at(a, 2, &ctx)?),
                mb: f64_at(a, 3, &ctx)?,
            }
        }
        "TC" => {
            expect_len(4)?;
            EventKind::TransferCompleted {
                node: NodeId(u32_at(a, 2, &ctx)?),
                mb: f64_at(a, 3, &ctx)?,
            }
        }
        "X" => {
            expect_len(6)?;
            EventKind::ShardCommit {
                shard: usize_at(a, 2, &ctx)?,
                commits: u64_at(a, 3, &ctx)?,
                conflicts: u64_at(a, 4, &ctx)?,
                retries: u64_at(a, 5, &ctx)?,
            }
        }
        other => return Err(schema(&format!("{ctx}: unknown event tag {other:?}"))),
    };
    Ok(EventRecord { now_ms, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use esg_model::NodeClass;

    fn sample_records() -> Vec<EventRecord> {
        let k = QueueKey {
            app: AppId(2),
            stage: 1,
        };
        vec![
            EventRecord {
                now_ms: 0.5,
                kind: EventKind::JobArrived {
                    key: k,
                    invocation: InvocationId(7),
                },
            },
            EventRecord {
                now_ms: 3.25,
                kind: EventKind::Dispatched {
                    key: k,
                    config: Config::new(2, 3, 1),
                    node: NodeId(4),
                    jobs: 2,
                },
            },
            EventRecord {
                now_ms: 9.0,
                kind: EventKind::TaskCompleted {
                    key: k,
                    node: NodeId(4),
                    config: Config::new(2, 3, 1),
                },
            },
            EventRecord {
                now_ms: 10.0,
                kind: EventKind::Churn {
                    node: NodeId(1),
                    joined: false,
                },
            },
            EventRecord {
                now_ms: 11.0,
                kind: EventKind::QueueShed {
                    key: k,
                    jobs: 3,
                    reason: ShedReason::Overload,
                },
            },
            EventRecord {
                now_ms: 12.0,
                kind: EventKind::RecheckTick,
            },
            EventRecord {
                now_ms: 13.0,
                kind: EventKind::ShardCommit {
                    shard: 1,
                    commits: 4,
                    conflicts: 1,
                    retries: 1,
                },
            },
            EventRecord {
                now_ms: 14.0,
                kind: EventKind::TransferStarted {
                    node: NodeId(4),
                    mb: 96.5,
                },
            },
            EventRecord {
                now_ms: 15.0,
                kind: EventKind::TransferQueued {
                    node: NodeId(4),
                    mb: 1024.0,
                },
            },
            EventRecord {
                now_ms: 16.0,
                kind: EventKind::TransferCompleted {
                    node: NodeId(4),
                    mb: 96.5,
                },
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        for r in sample_records() {
            let text = serde_json::to_string(&encode_event(&r));
            let parsed = serde_json::from_str(&text).expect("own encoding parses");
            assert_eq!(decode_event(&parsed, 0).expect("decodes"), r, "{text}");
        }
    }

    #[test]
    fn config_round_trips_including_cluster_and_churn() {
        let cfg = SimConfig {
            cluster: Some(ClusterSpec::mixed_mig().with_topology(2, 25.0)),
            churn: ChurnPlan::none()
                .drain(1_000.0, NodeId(3))
                .join(2_000.0, NodeClass::t4()),
            seed: u64::MAX,
            shards: 4,
            force_sharded: true,
            event_queue: EventQueueKind::Wheel,
            warmup_exclude_ms: 123.5,
            data_plane: Some(crate::dataplane::DataPlaneConfig {
                bandwidth_scale: 0.5,
                staging_scale: 2.0,
                batch_max_mb: 16.0,
            }),
            pinning: Some(crate::pinning::PinningConfig {
                budget_vgpus: 12,
                min_share_factor: 1.25,
                max_pinned_apps: 3,
            }),
            ..SimConfig::default()
        };
        let text = serde_json::to_string(&config_to_json(&cfg));
        let parsed = serde_json::from_str(&text).expect("own encoding parses");
        let back = config_from_json(&parsed).expect("decodes");
        // `record_trace` is deliberately cleared; everything else must
        // survive exactly (f64 via the writer's shortest-roundtrip form,
        // u64 via the parser's exact integer lane).
        assert_eq!(format!("{back:?}"), format!("{:?}", cfg.clone()));
    }

    #[test]
    fn dispatch_trace_matches_the_golden_format() {
        // Transfer telemetry (last three sample records) must not move
        // the digest — only dispatch/churn/shed render.
        let s = dispatch_trace(&sample_records());
        assert_eq!(s, "D 2.1 (b=2,c=3,g=1) n4 x2;C n1 drain;S 2.1 x3 overload;");
        assert_eq!(fnv64(""), 0xcbf29ce484222325);
        assert_ne!(fnv64(&s), fnv64(""));
    }

    #[test]
    fn v1_0_documents_without_minor_fields_still_load() {
        // A pre-minor-versioning trace: no version_minor, no per-class
        // bandwidth fields, no data_plane knob. It must load as minor 0
        // with flavor-stock bandwidths and a scalar transfer model.
        let class = "{\"name\": \"t4\", \"gpu\": \"t4\", \"vgpu_slices\": 4, \
\"vcpus\": 8, \"speed\": 0.5, \"link_scale\": 1.5, \"price_scale\": 0.4}";
        let text = format!(
            "{{\"format\": \"esg-trace\", \"version\": 1, \"scheduler\": \"min\", \
\"slo\": \"moderate\", \"apps\": \"standard\", \
\"grid\": {{\"batches\": [1], \"vcpus\": [1], \"vgpus\": [1]}}, \
\"config\": {{\"nodes\": 2, \"node_resources\": [16, 7], \
\"cluster\": {{\"name\": \"old\", \"nodes\": [{class}]}}, \"churn\": [], \
\"keep_alive_ms\": 1.0, \"overhead\": [0.0, 0.43], \"charge_overhead\": true, \
\"prewarm\": false, \"prewarm_alpha\": 0.5, \"initial_warm_per_node\": 0, \
\"prewarm_pool_cap\": 4, \"warmup_exclude_ms\": 0.0, \"seed\": 42, \
\"recheck_limit\": 3, \"idle_backoff_ms\": 5.0, \"max_sim_ms\": 100.0, \
\"validate_cluster_state\": false, \"shards\": 1, \"force_sharded\": false, \
\"event_queue\": \"heap\"}}, \"arrivals\": [], \"events\": []}}"
        );
        let t = TraceFile::from_json(&text).expect("v1.0 document loads");
        assert_eq!(t.version, TRACE_VERSION);
        assert_eq!(t.version_minor, 0);
        assert_eq!(t.config.data_plane, None);
        let stock = NodeClass::t4();
        let loaded = &t.config.cluster.as_ref().expect("cluster").nodes[0];
        assert_eq!(loaded.pcie_in_gbps, stock.pcie_in_gbps);
        assert_eq!(loaded.nvlink_gbps, stock.nvlink_gbps);
        assert_eq!(loaded.staging_mb, stock.staging_mb);
    }

    #[test]
    fn loader_surfaces_typed_errors() {
        // Corrupt JSON (truncation) → Parse.
        assert!(matches!(
            TraceFile::from_json("{\"format\": \"esg-tr"),
            Err(TraceError::Parse { .. })
        ));
        // Wrong format marker → Schema.
        assert!(matches!(
            TraceFile::from_json("{\"format\": \"not-a-trace\"}"),
            Err(TraceError::Schema { .. })
        ));
        // Future version → Version.
        assert!(matches!(
            TraceFile::from_json("{\"format\": \"esg-trace\", \"version\": 99}"),
            Err(TraceError::Version {
                found: 99,
                supported: TRACE_VERSION
            })
        ));
        // Missing file → Io.
        assert!(matches!(
            TraceFile::load("/nonexistent/esg-trace.json"),
            Err(TraceError::Io { .. })
        ));
        // Errors render.
        for e in [
            TraceError::Parse {
                offset: 3,
                message: "x".into(),
            },
            TraceError::Unsupported { what: "y".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn recorder_refuses_custom_apps() {
        let env = {
            let mut env = SimEnv::standard(SloClass::Moderate);
            env.apps = vec![esg_model::AppSpec::pipeline(
                "one",
                vec![esg_model::FnId(0)],
            )];
            env
        };
        let rec = TraceRecorder::begin(
            std::env::temp_dir().join("esg-never-written.json"),
            &env,
            &SimConfig::default(),
            "min",
        );
        assert!(matches!(rec.finish(), Err(TraceError::Unsupported { .. })));
    }
}
